//! The paper's node-classification scenario (Table III): pre-train on the
//! MAG240M stand-in, transfer in-context to the arXiv stand-in, and
//! compare GraphPrompter against the NoPretrain / Prodigy baselines at
//! several way counts.
//!
//! ```text
//! cargo run --release --example node_classification
//! ```

use graphprompter::baselines::{IclBaseline, NoPretrain, Prodigy};
use graphprompter::eval::{MeanStd, Table};
use graphprompter::prelude::*;

fn main() {
    let suite_seed = 0;
    let source = presets::mag240m_like(suite_seed);
    let target = presets::arxiv_like(suite_seed);
    println!(
        "pre-train on {} ({} nodes, {} classes) → evaluate on {} ({} nodes, {} classes)\n",
        source.name,
        source.graph.num_nodes(),
        source.num_classes,
        target.name,
        target.graph.num_nodes(),
        target.num_classes
    );

    let model_cfg = ModelConfig::default();
    let pre_cfg = PretrainConfig::default();

    // GraphPrompter: node tasks run without the augmenter (§V-B).
    let mut gp = Engine::builder()
        .model_config(model_cfg.clone())
        .pretrain_config(pre_cfg.clone())
        .try_build()
        .expect("default configs are valid");
    gp.pretrain(&source);

    let prodigy = Prodigy::pretrain(&source, model_cfg.clone(), &pre_cfg);
    let no_pre = NoPretrain::new(model_cfg);

    let protocol = graphprompter::baselines::EvalProtocol::default();
    let episodes = 5;

    let mut table = Table::new(
        "arXiv-like in-context accuracy (%), 3-shot",
        &["Method", "5-way", "10-way", "20-way"],
    );
    let gp_eval = |ways: usize| {
        let cfg = InferenceConfig {
            stages: StageConfig::without_augmenter(),
            ..InferenceConfig::default()
        };
        MeanStd::of(&gp.evaluate_with(&target, ways, protocol.queries, episodes, &cfg)).to_string()
    };
    table.row(&[
        "NoPretrain".into(),
        MeanStd::of(&no_pre.evaluate(&target, 5, episodes, &protocol)).to_string(),
        MeanStd::of(&no_pre.evaluate(&target, 10, episodes, &protocol)).to_string(),
        MeanStd::of(&no_pre.evaluate(&target, 20, episodes, &protocol)).to_string(),
    ]);
    table.row(&[
        "Prodigy".into(),
        MeanStd::of(&prodigy.evaluate(&target, 5, episodes, &protocol)).to_string(),
        MeanStd::of(&prodigy.evaluate(&target, 10, episodes, &protocol)).to_string(),
        MeanStd::of(&prodigy.evaluate(&target, 20, episodes, &protocol)).to_string(),
    ]);
    table.row(&["GraphPrompter".into(), gp_eval(5), gp_eval(10), gp_eval(20)]);

    println!("{}", table.to_markdown());
    println!("chance levels: 20% / 10% / 5%");
}
