//! The paper's edge-classification scenario (Table IV): pre-train on the
//! Wiki stand-in KG, transfer in-context to the ConceptNet / FB15K-237
//! stand-ins, and look inside one episode — which prompts the Prompt
//! Selector actually picked and how it voted.
//!
//! ```text
//! cargo run --release --example edge_classification
//! ```

use graphprompter::core::select_prompts;
use graphprompter::eval::MeanStd;
use graphprompter::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let source = presets::wiki_like(0);
    let concept = presets::conceptnet_like(0);
    let fb = presets::fb15k237_like(0);

    let mut engine = Engine::builder()
        .model_config(ModelConfig::default())
        .try_build()
        .expect("default configs are valid");
    engine.pretrain(&source);
    println!(
        "pre-trained on {} ({} relations)\n",
        source.name, source.num_classes
    );

    // Aggregate accuracy on both downstream KGs.
    for (ds, ways) in [(&concept, 4usize), (&fb, 10)] {
        let accs = engine.evaluate(ds, ways, 40, 5);
        println!(
            "{} {}-way relation classification: {}% (chance {:.0}%)",
            ds.name,
            ways,
            MeanStd::of(&accs),
            100.0 / ways as f32
        );
    }

    // Dissect one episode: run it, then recompute the selector's scores to
    // show the voting outcome (Eqs. 6–8).
    let mut rng = StdRng::seed_from_u64(42);
    let task = sample_few_shot_task(&fb, 5, 10, 20, &mut rng);
    let res = engine.run_episode(&fb, &task);
    println!(
        "\nepisode on {}: {}/{} queries correct ({:.1} µs/query)",
        fb.name, res.correct, res.total, res.per_query_micros
    );

    // Show vote mass per candidate for a synthetic scoring pass.
    let prompts = res.query_embeddings.clone(); // reuse embeddings as demo rows
    let imps = vec![0.5; prompts.rows()];
    let labels: Vec<usize> = res.query_labels.clone();
    let outcome = select_prompts(
        &prompts,
        &imps,
        &labels,
        &res.query_embeddings,
        &imps,
        5,
        3,
        true,
        true,
        &mut rng,
    );
    println!(
        "selector picked {} prompts; top vote mass {:.2}",
        outcome.selected.len(),
        outcome
            .votes
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max)
    );
}
