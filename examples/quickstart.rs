//! Quickstart: pre-train GraphPrompter on a synthetic source graph, then
//! classify nodes of a *different* graph in-context — no gradient updates
//! on the target.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphprompter::datasets::CitationConfig;
use graphprompter::eval::MeanStd;
use graphprompter::prelude::*;

fn main() {
    // 1. Two citation graphs with unrelated class geometry (different
    //    seeds → different class centers, like pre-training on MAG240M and
    //    testing on arXiv).
    let source = CitationConfig::new("source", 1200, 12, 1).generate();
    let target = CitationConfig::new("target", 800, 8, 2).generate();
    println!(
        "source: {} nodes / {} classes; target: {} nodes / {} classes",
        source.graph.num_nodes(),
        source.num_classes,
        target.graph.num_nodes(),
        target.num_classes
    );

    // 2. Build the engine (configs are validated here) and pre-train the
    //    full method (reconstruction + selection layers and the task graph
    //    train jointly; Alg. 1).
    let mut engine = Engine::builder()
        .model_config(ModelConfig::default())
        .pretrain_config(PretrainConfig {
            steps: 200,
            ..PretrainConfig::default()
        })
        .try_build()
        .expect("default configs are valid");
    let curve = engine.pretrain(&source);
    println!(
        "pre-trained {} parameters; loss {:.2} → {:.2}",
        engine.model().num_parameters(),
        curve.loss.first().unwrap(),
        curve.loss.last().unwrap()
    );

    // 3. In-context evaluation on the unseen target graph (Alg. 2):
    //    5-way episodes, 3 prompts per class chosen by the Prompt
    //    Selector from N = 10 candidates. Candidate embeddings are
    //    memoized across episodes in the engine's embedding cache.
    let accs = engine.evaluate(&target, 5, 30, 5);
    println!(
        "5-way in-context accuracy: {}% (chance 20%)",
        MeanStd::of(&accs)
    );
    if let Some(stats) = engine.embed_cache_stats() {
        println!(
            "embedding cache: {} hits / {} misses",
            stats.hits, stats.misses
        );
    }

    // 4. The same model with every GraphPrompter stage disabled is the
    //    Prodigy baseline — compare.
    let prodigy = InferenceConfig {
        stages: StageConfig::prodigy(),
        ..InferenceConfig::default()
    };
    let base = engine.evaluate_with(&target, 5, 30, 5, &prodigy);
    println!("…with random prompt selection:  {}%", MeanStd::of(&base));
}
