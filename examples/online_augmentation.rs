//! The Prompt Augmenter in isolation: watch the per-class LFU cache admit
//! high-confidence pseudo-labelled queries, refresh entries on similarity
//! hits, and evict least-frequently-used victims (§IV-C, Eq. 9).
//!
//! ```text
//! cargo run --release --example online_augmentation
//! ```

use graphprompter::core::{LfuCache, PromptAugmenter};
use graphprompter::tensor::Tensor;

fn main() {
    // --- Plain LFU cache (reference [51]'s O(1) scheme) -----------------
    println!("== LFU cache ==");
    let mut cache: LfuCache<&str, &str> = LfuCache::new(2);
    cache.insert("paris", "capital_of fr");
    cache.insert("rome", "capital_of it");
    cache.touch(&"paris"); // a hit protects the entry
    let evicted = cache.insert("berlin", "capital_of de");
    println!(
        "inserted berlin → evicted {:?} (LFU, not FIFO)",
        evicted.map(|e| e.0)
    );

    // --- Prompt Augmenter over a toy episode -----------------------------
    println!("\n== Prompt Augmenter (3 classes, cache c = 2 per class) ==");
    let mut aug = PromptAugmenter::new(2, 3).with_min_confidence(0.6);

    // Batch 1: class-0 and class-1 queries, one of each confident enough.
    let batch1 = Tensor::from_vec(
        3,
        2,
        vec![
            1.0, 0.0, // class 0, confident
            0.0, 1.0, // class 1, confident
            0.6, 0.4, // class 0, below the gate
        ],
    );
    aug.observe(&batch1, &[0, 1, 0], &[0.9, 0.8, 0.4]);
    println!("after batch 1: {} cached samples", aug.len());

    // Batch 2: a near-duplicate of the class-0 entry arrives — the hit
    // bumps its use count; a confident class-2 query is admitted.
    let batch2 = Tensor::from_vec(2, 2, vec![0.98, 0.05, -0.7, 0.7]);
    aug.observe(&batch2, &[0, 2], &[0.95, 0.85]);
    println!("after batch 2: {} cached samples", aug.len());

    let (embs, labels) = aug.cached_prompts(2).expect("cache is non-empty");
    println!("cached prompt set Ŝ∪C rows:");
    for (r, label) in labels.iter().enumerate() {
        println!(
            "  label {label} ← [{:+.2}, {:+.2}]",
            embs.get(r, 0),
            embs.get(r, 1)
        );
    }

    // The augmented set is what Alg. 2 feeds to the task graph alongside
    // the Prompt Selector's Ŝ — see `Engine::run_episode` for the full
    // pipeline and `experiments fig5` for the cache-size sweep.
    println!("\n(see `cargo run -p gp-bench --release --bin experiments -- fig5`)");
}
