//! Bring your own graph: author a dataset in the three-file TSV format,
//! load it, pre-train, and run in-context inference on it.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```
//!
//! The same format is what `gp export --dataset <preset> --dir <dir>`
//! produces, so any external pipeline that can write TSV can feed this
//! library.

use graphprompter::datasets::{load_dataset, save_dataset, CitationConfig};
use graphprompter::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join("gp_custom_dataset_example");
    std::fs::create_dir_all(&dir).expect("create example dir");

    // 1. Produce a dataset in the interchange format. Here we export a
    //    generated one; in practice you would write meta.tsv / nodes.tsv /
    //    edges.tsv from your own data (see gp_datasets::io for the spec).
    let original = CitationConfig::new("my-graph", 600, 6, 42).generate();
    save_dataset(&original, &dir).expect("export");
    println!("wrote {}", dir.display());
    for f in ["meta.tsv", "nodes.tsv", "edges.tsv"] {
        let len = std::fs::metadata(dir.join(f)).map(|m| m.len()).unwrap_or(0);
        println!("  {f:<10} {len:>8} bytes");
    }

    // 2. Load it back — this path exercises exactly what a user-authored
    //    directory would go through (validation included).
    let ds = load_dataset(&dir).expect("import");
    println!(
        "\nloaded '{}': {} nodes, {} edges, {} classes, splits {}/{}/{}",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes,
        ds.train.len(),
        ds.valid.len(),
        ds.test.len()
    );

    // 3. Pre-train on it and evaluate in-context (here source == target;
    //    point `Engine::evaluate` at any other loaded dataset for the
    //    cross-domain setting).
    let mut engine = Engine::builder()
        .model_config(ModelConfig::default())
        .pretrain_config(PretrainConfig {
            steps: 150,
            ..PretrainConfig::default()
        })
        .try_build()
        .expect("default configs are valid");
    engine.pretrain(&ds);
    let accs = engine.evaluate(&ds, 4, 30, 3);
    let mean = accs.iter().sum::<f32>() / accs.len() as f32;
    println!("\n4-way in-context accuracy on the imported graph: {mean:.1}% (chance 25%)");

    std::fs::remove_dir_all(&dir).ok();
}
