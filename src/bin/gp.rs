//! `gp` — command-line interface to the GraphPrompter reproduction.
//!
//! ```text
//! gp datasets                               # preset statistics
//! gp pretrain  --source wiki --steps 400 --out model.gpck
//!              [--checkpoint-dir ./ckpts] [--checkpoint-every 100]
//!              [--keep-last 3] [--validate-every 100] [--resume]
//! gp evaluate  --model model.gpck --dataset fb15k237 --ways 10 [--episodes 5]
//!              [--prodigy]                  # random-selection baseline stages
//! gp episode   --model model.gpck --dataset conceptnet --ways 4 [--seed 7]
//!              # pretrain/evaluate/episode/serve also take
//!              # --backend {reference,fast} (default reference)
//! gp export    --dataset arxiv --dir ./my_arxiv       # dump to TSV
//! gp inspect   model.gpck                   # validate + describe a checkpoint
//! gp serve     --dataset wiki [--model model.gpck] [--addr 127.0.0.1:7431]
//!              [--workers 4] [--queue 64] [--deadline-ms 30000]
//!              [--max-sessions 64] [--threads 2]
//!              [--max-batch 1] [--batch-window-ms 2]
//!              # evaluate/episode/serve also take
//!              # --embed-store-dir <dir> [--embed-quant {f32,f16,i8}]
//! ```
//!
//! `serve` runs the overload-safe inference server (`gp-serve`):
//! `POST /v1/classify`, `GET /v1/metrics`, `GET /v1/health`. SIGTERM
//! or SIGINT drains gracefully — in-flight and queued requests finish,
//! then the process exits. See README § "Serving & overload behavior".
//!
//! `--max-batch N` (N > 1) turns on cross-request batching: concurrent
//! classify requests against the same dataset/revision/backend are
//! coalesced for up to `--batch-window-ms` and run as one fused
//! inference pass, amortizing the candidate-embedding stage. Results
//! are bit-identical to `--max-batch 1`; only throughput changes. See
//! README § "Request batching".
//!
//! `evaluate`/`episode` also accept `--dataset-path <dir>` to run on a
//! directory in the `gp export` TSV format (bring your own graph), and
//! `--threads <n>` as the engine's **thread budget**: at most `n` live
//! threads in total, shared by episode fan-out and tensor-kernel
//! row-blocks (`--threads 0` = one per core; `--threads 1` spawns no
//! worker threads at all; results are bit-identical either way).
//!
//! `--embed-store-dir <dir>` attaches a persistent disk tier to the
//! engine's embedding cache: embeddings demoted from RAM are written to
//! CRC-protected GPES shards and promoted back on use — including
//! across process restarts, so a rerun (or a restarted `gp serve`)
//! against the same directory and weights answers its first queries
//! warm. `--embed-quant` picks the on-disk encoding: `f32` (default) is
//! bit-exact, `f16`/`i8` shrink shards ~2×/~4× at a bounded error. See
//! README § "Embedding tiers & persistence".
//!
//! `--backend {reference,fast}` selects the tensor kernels: `reference`
//! (default) is the bit-exact ground truth, `fast` the tiled/SIMD
//! implementation with tolerance-equal results. For `serve` this sets
//! the default; a request's `"backend"` body field can pin a new
//! session to either.
//!
//! Every command accepts `--metrics` (human-readable report on stderr
//! when the command finishes) or `--metrics-json` (JSON on stdout):
//! process-wide counters, gauges and per-stage latency histograms from
//! the `gp-obs` registry. Collection is off unless one of the flags is
//! given, and enabling it never changes any result (asserted in tests).
//!
//! With `--checkpoint-dir`, `pretrain` runs crash-safe: full trainer state
//! is written atomically every `--checkpoint-every` steps and `--resume`
//! continues from the newest valid checkpoint (corrupt files are skipped
//! and reported).
//!
//! Dataset names: mag240m, wiki, arxiv, conceptnet, fb15k237, nell.

use graphprompter::core::{
    inspect_checkpoint, pretrain_resumable, CheckpointConfig, CheckpointKind, GraphPrompterModel,
    InferenceConfig, ModelConfig, PretrainConfig, StageConfig,
};
use graphprompter::datasets::{presets, sample_few_shot_task, Dataset, Task};
use graphprompter::eval::{ConfusionMatrix, MeanStd, Table};
use graphprompter::prelude::{Backend, Engine, Parallelism};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let metrics_text = has_flag(&args, "--metrics");
    let metrics_json = has_flag(&args, "--metrics-json");
    if metrics_text || metrics_json {
        graphprompter::obs::set_enabled(true);
    }
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let result = match cmd {
        "datasets" => datasets(has_flag(&args[1..], "--detail")),
        "pretrain" => pretrain_cmd(&args[1..]),
        "evaluate" => evaluate_cmd(&args[1..]),
        "episode" => episode_cmd(&args[1..]),
        "export" => export_cmd(&args[1..]),
        "inspect" => inspect_cmd(&args[1..]),
        "lint" => lint_cmd(&args[1..]),
        "serve" => serve_cmd(&args[1..]),
        _ => {
            eprintln!(
                "usage: gp <datasets|pretrain|evaluate|episode|export|inspect|lint|serve> [flags]\n\
                 common flags: --metrics | --metrics-json (print collected metrics on exit)\n\
                 see the module docs in src/bin/gp.rs for flag details"
            );
            std::process::exit(2);
        }
    };
    // Report even when the command failed: the counters collected up to
    // the failure are exactly what a post-mortem wants.
    if metrics_json {
        println!("{}", graphprompter::obs::snapshot().to_json());
    } else if metrics_text {
        eprintln!("{}", graphprompter::obs::snapshot().to_text());
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

type CliResult = Result<(), String>;

/// `gp lint [gp-lint flags]` — the determinism & robustness linter,
/// delegated to [`graphprompter::lint::run_cli`] (same engine as the
/// standalone `gp-lint` binary; see `gp lint --help` for its flags).
fn lint_cmd(args: &[String]) -> CliResult {
    let (report, code) = graphprompter::lint::run_cli(args);
    if code == 0 {
        print!("{report}");
        Ok(())
    } else {
        eprint!("{report}");
        std::process::exit(code);
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parse `--threads <n>` into the engine's thread budget. Absent → the
/// serial default; `0` → one worker per core. The budget bounds *total*
/// threads: episodes and kernels share one worker pool.
fn parallelism(args: &[String]) -> Result<Parallelism, String> {
    match flag(args, "--threads") {
        None => Ok(Parallelism::Serial),
        Some(s) => match s.parse::<usize>() {
            Ok(0) => Ok(Parallelism::Auto),
            Ok(n) => Ok(Parallelism::Threads(n)),
            Err(_) => Err("--threads must be an integer (0 = one per core)".into()),
        },
    }
}

/// Parse the persistent embedding-store flags shared by
/// `evaluate`/`episode`/`serve`: `--embed-store-dir <dir>` attaches a
/// disk tier to the engine's embedding cache (entries survive process
/// restarts — a rerun against the same directory and weights starts
/// warm), and `--embed-quant {f32,f16,i8}` picks the on-disk encoding
/// (default `f32`, bit-exact on roundtrip).
fn embed_store_flags(
    args: &[String],
) -> Result<(Option<String>, graphprompter::core::Quantization), String> {
    let dir = flag(args, "--embed-store-dir");
    let quant = match flag(args, "--embed-quant") {
        None => graphprompter::core::Quantization::F32,
        Some(s) => {
            if dir.is_none() {
                return Err("--embed-quant requires --embed-store-dir".into());
            }
            graphprompter::core::Quantization::parse(&s)
                .ok_or("--embed-quant must be one of f32, f16, i8")?
        }
    };
    Ok((dir, quant))
}

/// Parse `--backend <name>` into a compute backend. Absent →
/// `reference`, the bit-exact default; `fast` swaps every tensor kernel
/// for the tiled/SIMD implementation (tolerance-equal results, still
/// bit-identical across `--threads` values and across replays).
fn backend(args: &[String]) -> Result<Backend, String> {
    match flag(args, "--backend") {
        None => Ok(Backend::Reference),
        Some(s) => s.parse::<Backend>(),
    }
}

/// Resolve a dataset: a preset name, or a directory path previously
/// written by `gp export` (or hand-authored in the same TSV format).
fn resolve_dataset(args: &[String], seed: u64) -> Result<Dataset, String> {
    if let Some(path) = flag(args, "--dataset-path") {
        return graphprompter::datasets::load_dataset(&path)
            .map_err(|e| format!("loading {path}: {e}"));
    }
    let name = flag(args, "--dataset").ok_or("missing --dataset <name> or --dataset-path <dir>")?;
    dataset_by_name(&name, seed)
}

fn dataset_by_name(name: &str, seed: u64) -> Result<Dataset, String> {
    Ok(match name {
        "mag240m" => presets::mag240m_like(seed),
        "wiki" => presets::wiki_like(seed),
        "arxiv" => presets::arxiv_like(seed),
        "conceptnet" => presets::conceptnet_like(seed),
        "fb15k237" => presets::fb15k237_like(seed),
        "nell" => presets::nell_like(seed),
        other => return Err(format!("unknown dataset '{other}'")),
    })
}

fn datasets(detail: bool) -> CliResult {
    let mut table = Table::new(
        "Preset datasets (paper Table II stand-ins)",
        &[
            "Name",
            "Task",
            "Nodes",
            "Edges",
            "Classes",
            "Train/Valid/Test",
        ],
    );
    let mut details = Table::new(
        "Structure",
        &[
            "Name",
            "MeanDeg",
            "MaxDeg",
            "Isolated",
            "Components",
            "LargestCC",
            "Homophily",
        ],
    );
    for name in ["mag240m", "wiki", "arxiv", "conceptnet", "fb15k237", "nell"] {
        let ds = dataset_by_name(name, 0)?;
        table.row(&[
            ds.name.clone(),
            match ds.task {
                Task::NodeClassification => "node".into(),
                Task::EdgeClassification => "edge".into(),
            },
            ds.graph.num_nodes().to_string(),
            ds.graph.num_edges().to_string(),
            ds.num_classes.to_string(),
            format!("{}/{}/{}", ds.train.len(), ds.valid.len(), ds.test.len()),
        ]);
        if detail {
            let s = graphprompter::graph::graph_stats(&ds.graph);
            details.row(&[
                ds.name.clone(),
                format!("{:.2}", s.mean_degree),
                s.max_degree.to_string(),
                s.isolated.to_string(),
                s.components.to_string(),
                format!("{:.2}", s.largest_component_frac),
                s.homophily.map_or("-".into(), |h| format!("{h:.2}")),
            ]);
        }
    }
    println!("{}", table.to_markdown());
    if detail {
        println!("{}", details.to_markdown());
    }
    Ok(())
}

fn pretrain_cmd(args: &[String]) -> CliResult {
    let source = flag(args, "--source").ok_or("missing --source <dataset>")?;
    let out = flag(args, "--out").unwrap_or_else(|| "model.gpck".into());
    let steps: usize = flag(args, "--steps")
        .unwrap_or_else(|| "400".into())
        .parse()
        .map_err(|_| "--steps must be an integer")?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--seed must be an integer")?;

    let ds = dataset_by_name(&source, seed)?;
    let cfg = PretrainConfig {
        steps,
        seed,
        ..PretrainConfig::default()
    };
    let mut engine = Engine::builder()
        .model_config(ModelConfig {
            seed,
            ..ModelConfig::default()
        })
        .pretrain_config(cfg.clone())
        .parallelism(parallelism(args)?)
        .backend(backend(args)?)
        .try_build()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    eprintln!("pre-training on {} for {steps} steps...", ds.name);
    let started = std::time::Instant::now();

    let curve = if let Some(dir) = flag(args, "--checkpoint-dir") {
        let every: usize = flag(args, "--checkpoint-every")
            .unwrap_or_else(|| "100".into())
            .parse()
            .map_err(|_| "--checkpoint-every must be an integer")?;
        let keep_last: usize = flag(args, "--keep-last")
            .unwrap_or_else(|| "3".into())
            .parse()
            .map_err(|_| "--keep-last must be an integer")?;
        let validate_every: usize = flag(args, "--validate-every")
            .unwrap_or_else(|| every.to_string())
            .parse()
            .map_err(|_| "--validate-every must be an integer")?;
        let ckpt = CheckpointConfig {
            every: every.max(1),
            keep_last,
            resume: has_flag(args, "--resume"),
            ..CheckpointConfig::new(&dir)
        };
        let report = pretrain_resumable(
            engine.model_mut(),
            &ds,
            &cfg,
            StageConfig::full(),
            validate_every.max(1),
            4,
            Some(&ckpt),
        )
        .map_err(|e| e.to_string())?;
        for (path, why) in &report.skipped_checkpoints {
            eprintln!("skipped corrupt checkpoint {}: {why}", path.display());
        }
        if let Some(step) = report.resumed_from {
            eprintln!("resumed from checkpoint at step {step}");
        }
        eprintln!(
            "best validation accuracy {:.3} at step {} (snapshot restored)",
            report.best_acc, report.best_step
        );
        report.curve
    } else {
        engine.pretrain(&ds)
    };

    eprintln!(
        "done in {:?}; loss {:.3} → {:.3}, train acc {:.2}",
        started.elapsed(),
        curve.loss.first().copied().unwrap_or(f32::NAN),
        curve.loss.last().copied().unwrap_or(f32::NAN),
        curve.accuracy.last().copied().unwrap_or(f32::NAN),
    );
    engine.model().save(&out).map_err(|e| e.to_string())?;
    println!("checkpoint written to {out}");
    Ok(())
}

/// Drain request flag flipped by SIGTERM/SIGINT; polled by `serve_cmd`.
static SHUTDOWN_REQUESTED: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Route SIGTERM and SIGINT into [`SHUTDOWN_REQUESTED`] via raw
/// `signal(2)` — no libc crate in this workspace. Only the flag store
/// happens in the handler (async-signal-safe); all real work runs on
/// the main thread's poll loop.
#[cfg(unix)]
fn install_drain_signals() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN_REQUESTED.store(true, std::sync::atomic::Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal as *const () as usize);
        signal(SIGINT, on_signal as *const () as usize);
    }
}

#[cfg(not(unix))]
fn install_drain_signals() {}

fn serve_cmd(args: &[String]) -> CliResult {
    use graphprompter::serve::{ClassifyApp, Server, ServerConfig, SessionHost};
    use std::sync::Arc;

    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--seed must be an integer")?;
    let ds = resolve_dataset(args, seed)?;
    let model = if flag(args, "--model").is_some() {
        load_model(args)?
    } else {
        eprintln!("no --model given; serving an untrained model (seed {seed})");
        GraphPrompterModel::new(ModelConfig {
            seed,
            ..ModelConfig::default()
        })
    };

    let parse_or = |name: &str, default: u64| -> Result<u64, String> {
        flag(args, name)
            .map(|s| s.parse().map_err(|_| format!("{name} must be an integer")))
            .unwrap_or(Ok(default))
    };
    let budget = match parallelism(args)? {
        Parallelism::Serial => 2,
        Parallelism::Auto => std::thread::available_parallelism().map_or(2, |n| n.get()),
        Parallelism::Threads(n) => n.max(1),
    };
    let (store_dir, embed_quant) = embed_store_flags(args)?;
    let config = ServerConfig {
        addr: flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7431".into()),
        workers: parse_or("--workers", 4)? as usize,
        queue_capacity: parse_or("--queue", 64)? as usize,
        default_deadline_ms: parse_or("--deadline-ms", 30_000)?,
        embed_store_dir: store_dir.map(std::path::PathBuf::from),
        embed_quantization: embed_quant,
        ..ServerConfig::default()
    };

    let pool = Arc::new(graphprompter::prelude::WorkerPool::with_budget(budget));
    let infer = InferenceConfig {
        seed,
        ..InferenceConfig::default()
    };
    let host = SessionHost::with_embed_store(
        &model,
        ds,
        infer,
        pool,
        parse_or("--max-sessions", 64)? as usize,
        backend(args)?,
        config.embed_store(),
    )?;
    let revision = host.revision();
    let max_batch = parse_or("--max-batch", 1)? as usize;
    let batch_window_ms = parse_or("--batch-window-ms", 2)?;
    let app = Arc::new(ClassifyApp::new(host).with_batching(max_batch, batch_window_ms));
    if max_batch > 1 {
        println!("cross-request batching: up to {max_batch} fused per pass, {batch_window_ms}ms collect window");
    }
    if let Some(dir) = &config.embed_store_dir {
        println!(
            "persistent embedding store: {} ({} shards); warm-starts sessions across restarts",
            dir.display(),
            config.embed_quantization.name()
        );
    }
    let handle = Server::start(config, Arc::clone(&app)).map_err(|e| e.to_string())?;

    install_drain_signals();
    println!("gp-serve listening on {}", handle.addr());
    println!("  POST /v1/classify   {{\"ways\", \"queries\", \"seed\", \"deadline_ms\"?, \"session\"?, \"backend\"?}}");
    println!("  GET  /v1/metrics    gp-obs snapshot (enable with --metrics-json)");
    println!("  GET  /v1/health     liveness + queue depth + engine revision {revision}");
    println!("SIGTERM/SIGINT drains gracefully.");

    while !SHUTDOWN_REQUESTED.load(std::sync::atomic::Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("drain requested; finishing admitted requests...");
    let drain = handle.shutdown();
    let persisted = app.host().flush_embed_stores();
    if persisted > 0 {
        eprintln!("embedding store flushed: {persisted} entries will warm-start the next run");
    }
    if drain.join_failures > 0 {
        eprintln!(
            "drained with {} worker thread(s) lost to panics (see serve.join_failures_total).",
            drain.join_failures
        );
    } else {
        eprintln!("drained cleanly.");
    }
    Ok(())
}

fn inspect_cmd(args: &[String]) -> CliResult {
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("usage: gp inspect <checkpoint.gpck>")?;
    let summary = inspect_checkpoint(std::path::Path::new(path))
        .map_err(|e| format!("{path}: INVALID: {e}"))?;
    let kind = match summary.kind {
        CheckpointKind::ModelV1 => "model (legacy v1, no checksum)",
        CheckpointKind::ModelV2 => "model (GPCK v2)",
        CheckpointKind::TrainerV2 => "trainer state (GPCK v2)",
    };
    println!("{path}: VALID");
    println!("  kind        {kind}");
    println!("  file size   {} bytes", summary.file_len);
    let c = &summary.config;
    println!(
        "  config      feat={} rel={} embed={} hidden={} generator={:?} seed={}",
        c.feat_dim, c.rel_dim, c.embed_dim, c.hidden_dim, c.generator, c.seed
    );
    println!(
        "  parameters  {} tensors, {} scalars",
        summary.num_tensors, summary.num_scalars
    );
    if let Some((step, best_acc, best_step, curve_points)) = summary.trainer {
        println!("  trainer     step {step}, curve points {curve_points}");
        println!("  best        acc {best_acc:.3} at step {best_step}");
    }
    Ok(())
}

fn load_model(args: &[String]) -> Result<GraphPrompterModel, String> {
    let path = flag(args, "--model").ok_or("missing --model <checkpoint>")?;
    GraphPrompterModel::load(&path).map_err(|e| format!("loading {path}: {e}"))
}

fn evaluate_cmd(args: &[String]) -> CliResult {
    let model = load_model(args)?;
    let ways: usize = flag(args, "--ways")
        .ok_or("missing --ways <m>")?
        .parse()
        .map_err(|_| "--ways must be an integer")?;
    let episodes: usize = flag(args, "--episodes")
        .unwrap_or_else(|| "5".into())
        .parse()
        .map_err(|_| "--episodes must be an integer")?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--seed must be an integer")?;

    let ds = resolve_dataset(args, seed)?;
    let stages = if has_flag(args, "--prodigy") {
        StageConfig::prodigy()
    } else if ds.task == Task::NodeClassification {
        StageConfig::without_augmenter()
    } else {
        StageConfig::full()
    };
    let (store_dir, embed_quant) = embed_store_flags(args)?;
    let mut builder = Engine::builder()
        .model(model)
        .inference_config(InferenceConfig {
            stages,
            seed,
            ..InferenceConfig::default()
        })
        .parallelism(parallelism(args)?)
        .backend(backend(args)?);
    if let Some(dir) = store_dir {
        builder = builder.embed_store_dir(dir).embed_quantization(embed_quant);
    }
    let engine = builder
        .try_build()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    let accs = engine.evaluate(&ds, ways, 50, episodes);
    let persisted = engine.flush_embed_store();
    if persisted > 0 {
        eprintln!("embedding store: {persisted} entries persisted for the next run");
    }
    println!(
        "{} {}-way, {} episodes: {}% (chance {:.1}%)",
        ds.name,
        ways,
        episodes,
        MeanStd::of(&accs),
        100.0 / ways as f32
    );
    Ok(())
}

fn episode_cmd(args: &[String]) -> CliResult {
    let model = load_model(args)?;
    let ways: usize = flag(args, "--ways")
        .ok_or("missing --ways <m>")?
        .parse()
        .map_err(|_| "--ways must be an integer")?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--seed must be an integer")?;

    let ds = resolve_dataset(args, 0)?;
    let (store_dir, embed_quant) = embed_store_flags(args)?;
    let mut builder = Engine::builder()
        .model(model)
        .inference_config(InferenceConfig {
            seed,
            ..InferenceConfig::default()
        })
        .parallelism(parallelism(args)?)
        .backend(backend(args)?);
    if let Some(dir) = store_dir {
        builder = builder.embed_store_dir(dir).embed_quantization(embed_quant);
    }
    let engine = builder
        .try_build()
        .map_err(|e| format!("invalid configuration: {e}"))?;
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates = engine.inference_config().candidates_per_class;
    let task = sample_few_shot_task(&ds, ways, candidates, 50, &mut rng);
    let res = engine.run_episode(&ds, &task);
    let persisted = engine.flush_embed_store();
    if persisted > 0 {
        eprintln!("embedding store: {persisted} entries persisted for the next run");
    }
    println!(
        "{} {}-way episode: {}/{} correct ({:.1}%), {:.0} µs/query",
        ds.name,
        ways,
        res.correct,
        res.total,
        100.0 * res.accuracy(),
        res.per_query_micros
    );
    let cm = ConfusionMatrix::new(&res.query_labels, &res.predictions, ways);
    println!("macro-F1 {:.3}", cm.macro_f1());
    let mut table = Table::new(
        "Per-class recall/precision",
        &["Class", "Recall", "Precision"],
    );
    for c in 0..ways {
        table.row(&[
            task.classes[c].to_string(),
            format!("{:.2}", cm.recall(c)),
            format!("{:.2}", cm.precision(c)),
        ]);
    }
    println!("{}", table.to_markdown());
    Ok(())
}

fn export_cmd(args: &[String]) -> CliResult {
    let name = flag(args, "--dataset").ok_or("missing --dataset <name>")?;
    let dir = flag(args, "--dir").ok_or("missing --dir <path>")?;
    let seed: u64 = flag(args, "--seed")
        .unwrap_or_else(|| "0".into())
        .parse()
        .map_err(|_| "--seed must be an integer")?;
    let ds = dataset_by_name(&name, seed)?;
    graphprompter::datasets::save_dataset(&ds, &dir).map_err(|e| e.to_string())?;
    println!(
        "{} exported to {dir} (meta.tsv, nodes.tsv, edges.tsv)",
        ds.name
    );
    Ok(())
}
