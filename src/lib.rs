//! # graphprompter
//!
//! Facade crate for the GraphPrompter reproduction (Lv et al., *“GraphPrompter:
//! Multi-stage Adaptive Prompt Optimization for Graph In-Context Learning”*,
//! ICDE 2025). Re-exports the workspace crates under stable paths:
//!
//! * [`tensor`] — dense tensors + tape autodiff ([`gp_tensor`])
//! * [`graph`] — multi-relational graphs and sampling ([`gp_graph`])
//! * [`nn`] — layers, optimizers, GNNs ([`gp_nn`])
//! * [`datasets`] — synthetic benchmark generators ([`gp_datasets`])
//! * [`core`] — the GraphPrompter method ([`gp_core`])
//! * [`baselines`] — comparison methods ([`gp_baselines`])
//! * [`eval`] — metrics, t-SNE, tables ([`gp_eval`])
//! * [`obs`] — zero-dependency metrics registry ([`gp_obs`])
//! * [`lint`] — workspace determinism & robustness linter ([`gp_lint`])
//! * [`serve`] — overload-safe HTTP inference server ([`gp_serve`])
//!
//! The public entry point is [`Engine`] (built through the fallible
//! [`EngineBuilder`]); `use graphprompter::prelude::*;` pulls in
//! everything the pretrain → evaluate lifecycle needs.
//!
//! See `examples/quickstart.rs` for the end-to-end flow and DESIGN.md for
//! the system inventory.

pub use gp_baselines as baselines;
pub use gp_core as core;
pub use gp_datasets as datasets;
pub use gp_eval as eval;
pub use gp_graph as graph;
pub use gp_lint as lint;
pub use gp_nn as nn;
pub use gp_obs as obs;
pub use gp_serve as serve;
pub use gp_tensor as tensor;

pub use gp_core::{ConfigError, Engine, EngineBuilder};

/// Everything the typical pretrain → evaluate flow needs in one import.
pub mod prelude {
    pub use gp_core::{
        ConfigError, DiskTierConfig, EmbedCacheStats, Engine, EngineBuilder, EpisodeResult,
        InferenceConfig, ModelConfig, PretrainConfig, PseudoLabelPolicy, Quantization,
        StageConfig, TrainingCurve,
    };
    pub use gp_datasets::{presets, sample_few_shot_task, Dataset, FewShotTask};
    pub use gp_graph::SamplerConfig;
    pub use gp_obs::MetricsSnapshot;
    pub use gp_tensor::{
        Backend, BackendGuard, ComputeBackend, Parallelism, PoolStats, WorkerPool,
    };
}

/// Workspace version, from the facade crate.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        let _ = crate::tensor::Tensor::zeros(1, 1);
        let _ = crate::core::StageConfig::full();
        assert!(!crate::VERSION.is_empty());
    }

    #[test]
    fn prelude_builds_an_engine() {
        use crate::prelude::*;
        let engine = Engine::builder()
            .inference_config(InferenceConfig::default())
            .try_build()
            .expect("defaults are valid");
        assert!(engine.embed_cache_stats().is_some());
    }
}
