//! # gp-graph
//!
//! The graph substrate for the GraphPrompter reproduction: a compact
//! multi-relational graph in CSR form ([`Graph`]), the paper's random-walk
//! `l`-hop data-graph sampler ([`sampler`], Eq. 1), and local-index
//! [`Subgraph`] extraction with induced edges.
//!
//! The source graphs in the paper are either node-labelled citation
//! networks (MAG240M, arXiv) or knowledge graphs whose edge label *is* the
//! relation id (Wiki, ConceptNet, FB15K-237, NELL); [`Graph`] models both:
//! every edge carries a relation id, and nodes optionally carry labels.

pub mod analysis;
pub mod graph;
pub mod sampler;
pub mod subgraph;

pub use analysis::{connected_components, degree_histogram, graph_stats, GraphStats};
pub use graph::{Graph, GraphBuilder, Triple};
pub use sampler::{RandomWalkSampler, SamplerConfig};
pub use subgraph::Subgraph;
