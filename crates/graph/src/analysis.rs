//! Structural graph statistics — the numbers a dataset card reports
//! (degree distribution, connectivity, label homophily) and the
//! experiment harness uses to sanity-check generated graphs.

use crate::Graph;

/// Summary statistics of a graph's structure.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of directed triples.
    pub edges: usize,
    /// Number of relation types.
    pub relations: usize,
    /// Mean undirected degree.
    pub mean_degree: f32,
    /// Maximum undirected degree.
    pub max_degree: usize,
    /// Number of isolated (degree-0) nodes.
    pub isolated: usize,
    /// Number of connected components (undirected).
    pub components: usize,
    /// Fraction of nodes in the largest component.
    pub largest_component_frac: f32,
    /// Edge homophily: fraction of edges joining same-label endpoints
    /// (`None` when the graph carries no node labels).
    pub homophily: Option<f32>,
}

/// Compute [`GraphStats`] in one pass plus a union-find over edges.
pub fn graph_stats(graph: &Graph) -> GraphStats {
    let n = graph.num_nodes();
    let mut max_degree = 0usize;
    let mut isolated = 0usize;
    for v in 0..n as u32 {
        let d = graph.degree(v);
        max_degree = max_degree.max(d);
        if d == 0 {
            isolated += 1;
        }
    }

    let (components, largest) = connected_components(graph);

    let homophily = graph.node_labels().map(|labels| {
        if graph.num_edges() == 0 {
            return 0.0;
        }
        let same = graph
            .triples()
            .iter()
            .filter(|t| labels[t.head as usize] == labels[t.tail as usize])
            .count();
        same as f32 / graph.num_edges() as f32
    });

    GraphStats {
        nodes: n,
        edges: graph.num_edges(),
        relations: graph.num_relations(),
        mean_degree: graph.mean_degree(),
        max_degree,
        isolated,
        components,
        largest_component_frac: if n == 0 {
            0.0
        } else {
            largest as f32 / n as f32
        },
        homophily,
    }
}

/// Number of connected components and the size of the largest one
/// (union-find with path halving and union by size).
pub fn connected_components(graph: &Graph) -> (usize, usize) {
    let n = graph.num_nodes();
    if n == 0 {
        return (0, 0);
    }
    let mut parent: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }

    for t in graph.triples() {
        let (mut a, mut b) = (
            find(&mut parent, t.head as usize),
            find(&mut parent, t.tail as usize),
        );
        if a != b {
            if size[a] < size[b] {
                std::mem::swap(&mut a, &mut b);
            }
            parent[b] = a;
            size[a] += size[b];
        }
    }

    let mut components = 0usize;
    let mut largest = 0usize;
    #[allow(clippy::needless_range_loop)] // `find` needs &mut parent while v indexes `size`
    for v in 0..n {
        if find(&mut parent, v) == v {
            components += 1;
            largest = largest.max(size[v]);
        }
    }
    (components, largest)
}

/// Degree histogram up to `max_bucket` (the last bucket absorbs the tail).
pub fn degree_histogram(graph: &Graph, max_bucket: usize) -> Vec<usize> {
    assert!(max_bucket > 0, "need at least one bucket");
    let mut hist = vec![0usize; max_bucket + 1];
    for v in 0..graph.num_nodes() as u32 {
        let d = graph.degree(v).min(max_bucket);
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn two_triangles() -> Graph {
        let mut b = GraphBuilder::new(7, 1);
        // Triangle 0-1-2, triangle 3-4-5, node 6 isolated.
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_triple(u, 0, v);
        }
        b.node_labels(vec![0, 0, 0, 1, 1, 2, 0]);
        b.build()
    }

    #[test]
    fn components_counted_correctly() {
        let g = two_triangles();
        let (comps, largest) = connected_components(&g);
        assert_eq!(comps, 3); // two triangles + the isolate
        assert_eq!(largest, 3);
    }

    #[test]
    fn stats_cover_all_fields() {
        let g = two_triangles();
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 7);
        assert_eq!(s.edges, 6);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.components, 3);
        assert!((s.largest_component_frac - 3.0 / 7.0).abs() < 1e-6);
        assert_eq!(s.max_degree, 2);
        // Homophily: triangle 1 all label 0 (3 same), triangle 2 has labels
        // 1,1,2 → (3,4) same, (4,5) diff, (5,3) diff → 4/6.
        assert!((s.homophily.unwrap() - 4.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn histogram_absorbs_tail() {
        let g = two_triangles();
        let h = degree_histogram(&g, 1);
        assert_eq!(h[0], 1); // the isolate
        assert_eq!(h[1], 6); // all triangle nodes clamp into the tail bucket
    }

    #[test]
    fn empty_graph_is_handled() {
        let g = GraphBuilder::new(0, 1).build();
        assert_eq!(connected_components(&g), (0, 0));
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 0);
        assert_eq!(s.largest_component_frac, 0.0);
    }
}
