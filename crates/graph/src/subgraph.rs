//! Local-index subgraphs extracted around anchor nodes.

use std::collections::HashMap;

use gp_tensor::{EdgeList, Tensor};

use crate::Graph;

/// A subgraph with its own compact node index space.
///
/// `nodes[i]` is the original id of local node `i`. `edges` are the edges
/// *induced* by the node set, expressed in local indices and already
/// mirrored in both directions (ready for message passing). `anchors` are
/// the local positions of the datapoint's input node(s) `x_i` — one anchor
/// for node classification, two (head, tail) for edge classification.
#[derive(Clone, Debug)]
pub struct Subgraph {
    /// Original node ids; index = local id.
    pub nodes: Vec<u32>,
    /// Induced edges in local indices, both directions.
    pub edges: EdgeList,
    /// Relation id per local edge (parallel to `edges`).
    pub rels: Vec<u16>,
    /// Local indices of the anchor node(s).
    pub anchors: Vec<usize>,
}

impl Subgraph {
    /// Induce a subgraph from a set of original node ids plus anchors.
    ///
    /// Every edge of `graph` with both endpoints inside `nodes` is kept,
    /// mirrored in both directions; self-loops are added for isolated-in-
    /// subgraph nodes so message passing never produces empty rows.
    ///
    /// # Panics
    /// Panics if an anchor is not contained in `nodes`.
    pub fn induce(graph: &Graph, nodes: Vec<u32>, anchor_ids: &[u32]) -> Self {
        let local: HashMap<u32, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let anchors = anchor_ids
            .iter()
            .map(|a| *local.get(a).expect("anchor not in node set"))
            .collect();

        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut rels = Vec::new();
        let mut seen_edge = std::collections::HashSet::new();
        // Iterate nodes in their (deterministic) local order, NOT the hash
        // map: edge order fixes the floating-point accumulation order of
        // every aggregation downstream, so it must be reproducible across
        // runs for bit-identical inference.
        for (lu, &orig) in nodes.iter().enumerate() {
            for (v, r, eid) in graph.neighbors(orig) {
                if let Some(&lv) = local.get(&v) {
                    // Each triple appears in both endpoints' adjacency; dedupe
                    // by edge id, then mirror explicitly.
                    if seen_edge.insert(eid) {
                        src.push(lu as u32);
                        dst.push(lv as u32);
                        rels.push(r);
                        if lu != lv {
                            src.push(lv as u32);
                            dst.push(lu as u32);
                            rels.push(r);
                        }
                    }
                }
            }
        }
        // Self-loops keep every node reachable by aggregation.
        let mut has_in = vec![false; nodes.len()];
        for &d in &dst {
            has_in[d as usize] = true;
        }
        for (i, covered) in has_in.iter().enumerate() {
            if !covered {
                src.push(i as u32);
                dst.push(i as u32);
                rels.push(0);
            }
        }

        Self {
            nodes,
            edges: EdgeList::new(src, dst),
            rels,
            anchors,
        }
    }

    /// Number of local nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of local directed edges (mirrored + self-loops).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Gather this subgraph's node features from the parent graph into a
    /// dense `num_nodes×d` matrix (local order).
    pub fn features(&self, graph: &Graph) -> Tensor {
        let d = graph.feature_dim();
        let mut data = Vec::with_capacity(self.nodes.len() * d);
        for &n in &self.nodes {
            data.extend_from_slice(graph.feature_row(n));
        }
        Tensor::from_vec(self.nodes.len(), d, data)
    }

    /// Remove the direct edge(s) between the first two anchors.
    ///
    /// For edge-classification datapoints the label *is* the relation of
    /// the anchor pair's edge, so that edge must not appear in the data
    /// graph (Prodigy removes the target edge the same way). No-op when
    /// there are fewer than two anchors. Nodes left without in-edges get a
    /// self-loop, preserving the message-passing invariant.
    pub fn without_anchor_edges(mut self) -> Self {
        if self.anchors.len() < 2 {
            return self;
        }
        let (a, b) = (self.anchors[0] as u32, self.anchors[1] as u32);
        let mut src = Vec::with_capacity(self.edges.len());
        let mut dst = Vec::with_capacity(self.edges.len());
        let mut rels = Vec::with_capacity(self.rels.len());
        for (e, (s, d)) in self.edges.iter().enumerate() {
            let (s, d) = (s as u32, d as u32);
            if (s == a && d == b) || (s == b && d == a) {
                continue;
            }
            src.push(s);
            dst.push(d);
            rels.push(self.rels[e]);
        }
        let mut has_in = vec![false; self.nodes.len()];
        for &d in &dst {
            has_in[d as usize] = true;
        }
        for (i, covered) in has_in.iter().enumerate() {
            if !covered {
                src.push(i as u32);
                dst.push(i as u32);
                rels.push(0);
            }
        }
        self.edges = gp_tensor::EdgeList::new(src, dst);
        self.rels = rels;
        self
    }

    /// Mean-aggregation normalization weights (`1/in-degree(dst)`), one per
    /// local edge — the fixed part of GraphSAGE mean aggregation that the
    /// Prompt Generator's learned weights multiply into.
    pub fn mean_norm_weights(&self) -> Vec<f32> {
        let deg = self.edges.in_degrees(self.nodes.len());
        (0..self.edges.len())
            .map(|e| 1.0 / deg[self.edges.dst(e)].max(1) as f32)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn toy() -> Graph {
        let mut b = GraphBuilder::new(5, 2);
        b.add_triple(0, 0, 1)
            .add_triple(1, 1, 2)
            .add_triple(2, 0, 3)
            .add_triple(3, 1, 4)
            .add_triple(0, 1, 4);
        b.node_features(Tensor::from_vec(
            5,
            2,
            vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 2.0, 0.0, 0.0, 2.0],
        ));
        b.build()
    }

    #[test]
    fn induced_edges_stay_inside_node_set() {
        let g = toy();
        let sg = Subgraph::induce(&g, vec![0, 1, 2], &[0]);
        assert_eq!(sg.num_nodes(), 3);
        for (s, d) in sg.edges.iter() {
            assert!(s < 3 && d < 3);
        }
        // Edges 0-1 and 1-2 induced, both mirrored → 4 directed edges,
        // plus no self-loops needed (every node has an in-edge).
        assert_eq!(sg.num_edges(), 4);
    }

    #[test]
    fn anchors_map_to_local_indices() {
        let g = toy();
        let sg = Subgraph::induce(&g, vec![3, 0, 4], &[0, 4]);
        assert_eq!(sg.anchors, vec![1, 2]);
        assert_eq!(sg.nodes[sg.anchors[0]], 0);
    }

    #[test]
    fn isolated_node_gets_self_loop() {
        let g = toy();
        // Nodes 0 and 3 are not adjacent in the toy graph.
        let sg = Subgraph::induce(&g, vec![0, 3], &[0]);
        let self_loops = sg.edges.iter().filter(|(s, d)| s == d).count();
        assert_eq!(self_loops, 2);
    }

    #[test]
    fn features_follow_local_order() {
        let g = toy();
        let sg = Subgraph::induce(&g, vec![4, 0], &[4]);
        let f = sg.features(&g);
        assert_eq!(f.row(0), &[0.0, 2.0]); // node 4
        assert_eq!(f.row(1), &[1.0, 0.0]); // node 0
    }

    #[test]
    fn mean_norm_weights_sum_to_one_per_dst() {
        let g = toy();
        let sg = Subgraph::induce(&g, vec![0, 1, 2, 3, 4], &[2]);
        let w = sg.mean_norm_weights();
        let mut per_dst = vec![0.0f32; sg.num_nodes()];
        for e in 0..sg.num_edges() {
            per_dst[sg.edges.dst(e)] += w[e];
        }
        for (i, s) in per_dst.iter().enumerate() {
            assert!((s - 1.0).abs() < 1e-6, "dst {i} sums to {s}");
        }
    }

    #[test]
    fn without_anchor_edges_strips_target_edge() {
        let g = toy();
        // Anchors 0 and 1 share edge (0,0,1).
        let sg = Subgraph::induce(&g, vec![0, 1, 2], &[0, 1]).without_anchor_edges();
        for (e, (s, d)) in sg.edges.iter().enumerate() {
            let su = sg.nodes[s];
            let du = sg.nodes[d];
            assert!(
                !((su == 0 && du == 1) || (su == 1 && du == 0)),
                "anchor edge survived at local edge {e}"
            );
        }
        // Node 0 lost its only in-edge → must have a self-loop now.
        let local0 = sg.nodes.iter().position(|&n| n == 0).unwrap();
        assert!(sg.edges.iter().any(|(s, d)| s == local0 && d == local0));
    }

    #[test]
    fn without_anchor_edges_is_noop_for_single_anchor() {
        let g = toy();
        let sg = Subgraph::induce(&g, vec![0, 1, 2], &[1]);
        let before = sg.edges.len();
        let sg = sg.without_anchor_edges();
        assert_eq!(sg.edges.len(), before);
    }

    #[test]
    #[should_panic(expected = "anchor not in node set")]
    fn missing_anchor_panics() {
        let g = toy();
        let _ = Subgraph::induce(&g, vec![0, 1], &[4]);
    }
}
