//! Multi-relational graph storage in CSR form.

use gp_tensor::Tensor;

/// A directed, typed edge `(head, relation, tail)` — Definition 1 of the
/// paper: `e = (u, r, v)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Triple {
    /// Head/subject node.
    pub head: u32,
    /// Relation id; for KG datasets this is also the edge *label*.
    pub rel: u16,
    /// Tail/object node.
    pub tail: u32,
}

impl Triple {
    /// Convenience constructor.
    pub fn new(head: u32, rel: u16, tail: u32) -> Self {
        Self { head, rel, tail }
    }
}

/// Incremental builder for [`Graph`].
///
/// Collects triples and node metadata, then freezes into CSR.
pub struct GraphBuilder {
    num_nodes: usize,
    num_relations: usize,
    triples: Vec<Triple>,
    node_features: Option<Tensor>,
    node_labels: Option<Vec<u16>>,
    rel_features: Option<Tensor>,
}

impl GraphBuilder {
    /// Start a builder for `num_nodes` nodes and `num_relations` relation types.
    pub fn new(num_nodes: usize, num_relations: usize) -> Self {
        Self {
            num_nodes,
            num_relations,
            triples: Vec::new(),
            node_features: None,
            node_labels: None,
            rel_features: None,
        }
    }

    /// Add one directed typed edge.
    ///
    /// # Panics
    /// Panics if an endpoint or the relation id is out of range.
    pub fn add_triple(&mut self, head: u32, rel: u16, tail: u32) -> &mut Self {
        assert!((head as usize) < self.num_nodes, "head {head} out of range");
        assert!((tail as usize) < self.num_nodes, "tail {tail} out of range");
        assert!(
            (rel as usize) < self.num_relations,
            "relation {rel} out of range"
        );
        self.triples.push(Triple::new(head, rel, tail));
        self
    }

    /// Attach an `n×d` node feature matrix.
    ///
    /// # Panics
    /// Panics if the row count differs from the node count.
    pub fn node_features(&mut self, features: Tensor) -> &mut Self {
        assert_eq!(features.rows(), self.num_nodes, "feature rows != num_nodes");
        self.node_features = Some(features);
        self
    }

    /// Attach an `|R|×d_r` relation feature matrix (the “specific initial
    /// embedding” of each edge type, §IV-A2). Using *fixed* per-dataset
    /// random features rather than a learned relation vocabulary keeps the
    /// model applicable to downstream graphs with unseen relations.
    pub fn rel_features(&mut self, features: Tensor) -> &mut Self {
        assert_eq!(
            features.rows(),
            self.num_relations,
            "rel-feature rows != num_relations"
        );
        self.rel_features = Some(features);
        self
    }

    /// Attach per-node class labels (for node-classification datasets).
    pub fn node_labels(&mut self, labels: Vec<u16>) -> &mut Self {
        assert_eq!(labels.len(), self.num_nodes, "label count != num_nodes");
        self.node_labels = Some(labels);
        self
    }

    /// Freeze into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let n = self.num_nodes;
        // Undirected CSR adjacency: each triple contributes both directions
        // (message passing and random walks treat edges as traversable both
        // ways, as in Prodigy's neighborhood sampler).
        let mut degree = vec![0usize; n];
        for t in &self.triples {
            degree[t.head as usize] += 1;
            degree[t.tail as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let total = *offsets.last().unwrap();
        let mut neighbors = vec![0u32; total];
        let mut adj_rel = vec![0u16; total];
        let mut adj_edge = vec![0u32; total];
        let mut cursor = offsets[..n].to_vec();
        for (eid, t) in self.triples.iter().enumerate() {
            let (h, ta) = (t.head as usize, t.tail as usize);
            neighbors[cursor[h]] = t.tail;
            adj_rel[cursor[h]] = t.rel;
            adj_edge[cursor[h]] = eid as u32;
            cursor[h] += 1;
            neighbors[cursor[ta]] = t.head;
            adj_rel[cursor[ta]] = t.rel;
            adj_edge[cursor[ta]] = eid as u32;
            cursor[ta] += 1;
        }
        let node_features = self.node_features.unwrap_or_else(|| Tensor::zeros(n, 1));
        let rel_features = self.rel_features;
        Graph {
            num_nodes: n,
            num_relations: self.num_relations,
            offsets,
            neighbors,
            adj_rel,
            adj_edge,
            triples: self.triples,
            node_features,
            node_labels: self.node_labels,
            rel_features,
        }
    }
}

/// Immutable multi-relational graph: `G = (V, E, R)` with node features and
/// optional node labels, stored as an undirected CSR plus the original
/// directed triple list.
pub struct Graph {
    num_nodes: usize,
    num_relations: usize,
    /// CSR row offsets, length `num_nodes + 1`.
    offsets: Vec<usize>,
    /// Flattened neighbor lists.
    neighbors: Vec<u32>,
    /// Relation id of each adjacency entry.
    adj_rel: Vec<u16>,
    /// Original triple index of each adjacency entry.
    adj_edge: Vec<u32>,
    /// The directed triples as inserted.
    triples: Vec<Triple>,
    node_features: Tensor,
    node_labels: Option<Vec<u16>>,
    rel_features: Option<Tensor>,
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Graph")
            .field("num_nodes", &self.num_nodes)
            .field("num_edges", &self.triples.len())
            .field("num_relations", &self.num_relations)
            .field("feature_dim", &self.node_features.cols())
            .finish_non_exhaustive()
    }
}

impl Graph {
    /// Number of nodes `|V|`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of directed triples `|E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.triples.len()
    }

    /// Number of relation types `|R|`.
    #[inline]
    pub fn num_relations(&self) -> usize {
        self.num_relations
    }

    /// Node feature dimensionality.
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.node_features.cols()
    }

    /// The `n×d` node feature matrix.
    #[inline]
    pub fn features(&self) -> &Tensor {
        &self.node_features
    }

    /// Feature row of one node.
    #[inline]
    pub fn feature_row(&self, node: u32) -> &[f32] {
        self.node_features.row(node as usize)
    }

    /// The `|R|×d_r` relation feature matrix, when present.
    #[inline]
    pub fn rel_features(&self) -> Option<&Tensor> {
        self.rel_features.as_ref()
    }

    /// Feature row of one relation.
    ///
    /// # Panics
    /// Panics if the graph carries no relation features.
    pub fn rel_feature_row(&self, rel: u16) -> &[f32] {
        self.rel_features
            .as_ref()
            .expect("graph has no relation features")
            .row(rel as usize)
    }

    /// Per-node labels, when the dataset is node-labelled.
    #[inline]
    pub fn node_labels(&self) -> Option<&[u16]> {
        self.node_labels.as_deref()
    }

    /// Label of one node.
    ///
    /// # Panics
    /// Panics if the graph carries no node labels.
    pub fn node_label(&self, node: u32) -> u16 {
        self.node_labels.as_ref().expect("graph has no node labels")[node as usize]
    }

    /// All directed triples.
    #[inline]
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// Triple by edge id.
    #[inline]
    pub fn triple(&self, eid: u32) -> Triple {
        self.triples[eid as usize]
    }

    /// Undirected degree of a node.
    #[inline]
    pub fn degree(&self, node: u32) -> usize {
        let n = node as usize;
        self.offsets[n + 1] - self.offsets[n]
    }

    /// Iterate `(neighbor, relation, edge_id)` over a node's undirected
    /// adjacency (each triple appears from both endpoints).
    pub fn neighbors(&self, node: u32) -> impl Iterator<Item = (u32, u16, u32)> + '_ {
        let n = node as usize;
        let range = self.offsets[n]..self.offsets[n + 1];
        range.map(move |i| (self.neighbors[i], self.adj_rel[i], self.adj_edge[i]))
    }

    /// The `i`-th adjacency entry of a node (for O(1) random neighbor picks).
    #[inline]
    pub fn neighbor_at(&self, node: u32, i: usize) -> (u32, u16, u32) {
        let base = self.offsets[node as usize];
        (
            self.neighbors[base + i],
            self.adj_rel[base + i],
            self.adj_edge[base + i],
        )
    }

    /// Mean undirected degree.
    pub fn mean_degree(&self) -> f32 {
        if self.num_nodes == 0 {
            return 0.0;
        }
        self.neighbors.len() as f32 / self.num_nodes as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Graph {
        // 0 -r0- 1 -r1- 2, 0 -r1- 2
        let mut b = GraphBuilder::new(3, 2);
        b.add_triple(0, 0, 1)
            .add_triple(1, 1, 2)
            .add_triple(0, 1, 2);
        b.node_labels(vec![7, 8, 9]);
        b.node_features(Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]));
        b.build()
    }

    #[test]
    fn csr_roundtrip() {
        let g = toy();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        let n0: Vec<_> = g.neighbors(0).collect();
        assert!(n0.contains(&(1, 0, 0)));
        assert!(n0.contains(&(2, 1, 2)));
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = toy();
        for u in 0..g.num_nodes() as u32 {
            for (v, r, e) in g.neighbors(u) {
                assert!(
                    g.neighbors(v)
                        .any(|(w, r2, e2)| w == u && r2 == r && e2 == e),
                    "edge {u}->{v} not mirrored"
                );
            }
        }
    }

    #[test]
    fn labels_and_features() {
        let g = toy();
        assert_eq!(g.node_label(2), 9);
        assert_eq!(g.feature_row(1), &[0.0, 1.0]);
        assert_eq!(g.feature_dim(), 2);
    }

    #[test]
    fn triple_lookup() {
        let g = toy();
        assert_eq!(g.triple(1), Triple::new(1, 1, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_rejects_bad_endpoint() {
        let mut b = GraphBuilder::new(2, 1);
        b.add_triple(0, 0, 5);
    }

    #[test]
    fn isolated_nodes_have_zero_degree() {
        let b = GraphBuilder::new(4, 1);
        let g = b.build();
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.neighbors(3).count(), 0);
    }
}
