//! The paper's data-graph sampler (Eq. 1).
//!
//! > “The random walk algorithm starts from the selected node, adds its
//! > neighboring nodes to the subgraph. Then, randomly chooses a direction
//! > to move to the next node. The neighbors of this node are added to the
//! > subgraph, with duplicates removed. This process is repeated `l` times,
//! > and the algorithm terminates if the number of nodes in the subgraph
//! > reaches the preset limit.”
//!
//! [`RandomWalkSampler`] implements exactly that, with a per-hop neighbor
//! cap so dense hubs (MAG-style graphs) cannot blow up the subgraph.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::{Graph, Subgraph};

/// Knobs for [`RandomWalkSampler`].
#[derive(Copy, Clone, Debug)]
pub struct SamplerConfig {
    /// `l` — walk length / neighborhood radius (the paper uses `l = 1`
    /// for the main experiments and 1–3 in the multi-hop analysis, Fig. 8).
    pub hops: usize,
    /// Hard cap on the subgraph node count (“preset limit”).
    pub max_nodes: usize,
    /// Max neighbors added per visited node per hop (fan-out cap).
    pub neighbors_per_node: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            hops: 1,
            max_nodes: 30,
            neighbors_per_node: 10,
        }
    }
}

/// Samples `l`-hop data graphs `G_i^D` around anchor nodes by random walk.
pub struct RandomWalkSampler {
    config: SamplerConfig,
}

impl RandomWalkSampler {
    /// Build a sampler with the given config.
    pub fn new(config: SamplerConfig) -> Self {
        assert!(
            config.max_nodes >= 2,
            "max_nodes must allow anchors + neighbors"
        );
        assert!(config.hops >= 1, "hops must be >= 1");
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> SamplerConfig {
        self.config
    }

    /// Sample the data graph for a datapoint whose input is `anchors`
    /// (1 node for node classification, 2 for edge classification).
    ///
    /// Returns the induced [`Subgraph`]; anchors are always included.
    pub fn sample<R: Rng + ?Sized>(&self, graph: &Graph, anchors: &[u32], rng: &mut R) -> Subgraph {
        assert!(!anchors.is_empty(), "at least one anchor required");
        let cap = self.config.max_nodes.max(anchors.len());
        let mut nodes: Vec<u32> = Vec::with_capacity(cap);
        let mut in_set = std::collections::HashSet::with_capacity(cap * 2);
        for &a in anchors {
            if in_set.insert(a) {
                nodes.push(a);
            }
        }

        // One walker per anchor; each hop the walker's current node dumps a
        // sampled slice of its neighborhood into the set, then the walker
        // steps to a random neighbor.
        let mut walkers: Vec<u32> = anchors.to_vec();
        'outer: for _hop in 0..self.config.hops {
            for w in walkers.iter_mut() {
                let deg = graph.degree(*w);
                if deg == 0 {
                    continue;
                }
                // Sample up to `neighbors_per_node` distinct adjacency slots.
                let take = self.config.neighbors_per_node.min(deg);
                let mut slots: Vec<usize> = (0..deg).collect();
                slots.partial_shuffle(rng, take);
                for &slot in slots.iter().take(take) {
                    let (v, _r, _e) = graph.neighbor_at(*w, slot);
                    if in_set.insert(v) {
                        nodes.push(v);
                        if nodes.len() >= cap {
                            break 'outer;
                        }
                    }
                }
                // Random step.
                let step = rng.gen_range(0..deg);
                *w = graph.neighbor_at(*w, step).0;
            }
        }

        Subgraph::induce(graph, nodes, anchors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A ring of `n` nodes with a chord every 5th node.
    fn ring(n: u32) -> Graph {
        let mut b = GraphBuilder::new(n as usize, 2);
        for i in 0..n {
            b.add_triple(i, 0, (i + 1) % n);
            if i % 5 == 0 {
                b.add_triple(i, 1, (i + n / 2) % n);
            }
        }
        b.build()
    }

    #[test]
    fn anchors_always_present() {
        let g = ring(50);
        let s = RandomWalkSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        for a in [0u32, 13, 49] {
            let sg = s.sample(&g, &[a], &mut rng);
            assert_eq!(sg.nodes[sg.anchors[0]], a);
        }
    }

    #[test]
    fn node_cap_is_respected() {
        let g = ring(200);
        let cfg = SamplerConfig {
            hops: 3,
            max_nodes: 12,
            neighbors_per_node: 8,
        };
        let s = RandomWalkSampler::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        for seed_node in 0..20u32 {
            let sg = s.sample(&g, &[seed_node], &mut rng);
            assert!(sg.num_nodes() <= 12, "got {} nodes", sg.num_nodes());
        }
    }

    #[test]
    fn no_duplicate_nodes() {
        let g = ring(100);
        let s = RandomWalkSampler::new(SamplerConfig {
            hops: 3,
            max_nodes: 25,
            neighbors_per_node: 6,
        });
        let mut rng = StdRng::seed_from_u64(2);
        let sg = s.sample(&g, &[7], &mut rng);
        let mut sorted = sg.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), sg.nodes.len());
    }

    #[test]
    fn two_anchor_edge_task_sampling() {
        let g = ring(60);
        let s = RandomWalkSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let sg = s.sample(&g, &[10, 11], &mut rng);
        assert_eq!(sg.anchors.len(), 2);
        assert_eq!(sg.nodes[sg.anchors[0]], 10);
        assert_eq!(sg.nodes[sg.anchors[1]], 11);
    }

    #[test]
    fn more_hops_reach_further() {
        let g = ring(500);
        let mut rng = StdRng::seed_from_u64(4);
        let near = RandomWalkSampler::new(SamplerConfig {
            hops: 1,
            max_nodes: 100,
            neighbors_per_node: 4,
        });
        let far = RandomWalkSampler::new(SamplerConfig {
            hops: 3,
            max_nodes: 100,
            neighbors_per_node: 4,
        });
        let avg = |s: &RandomWalkSampler, rng: &mut StdRng| -> f32 {
            let mut total = 0usize;
            for a in 0..30u32 {
                total += s.sample(&g, &[a * 7], rng).num_nodes();
            }
            total as f32 / 30.0
        };
        let n_near = avg(&near, &mut rng);
        let n_far = avg(&far, &mut rng);
        assert!(n_far > n_near, "far {n_far} <= near {n_near}");
    }

    #[test]
    fn isolated_anchor_yields_singleton_with_self_loop() {
        let mut b = GraphBuilder::new(3, 1);
        b.add_triple(0, 0, 1);
        let g = b.build();
        let s = RandomWalkSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let sg = s.sample(&g, &[2], &mut rng);
        assert_eq!(sg.num_nodes(), 1);
        assert_eq!(sg.num_edges(), 1); // self-loop
    }
}
