//! Property tests for graph construction, sampling and subgraph induction.

use gp_graph::{Graph, GraphBuilder, RandomWalkSampler, SamplerConfig, Subgraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random multigraph strategy: node count, relation count and edges.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (4usize..40, 1usize..5).prop_flat_map(|(n, r)| {
        proptest::collection::vec((0..n as u32, 0..r as u16, 0..n as u32), 1..120).prop_map(
            move |triples| {
                let mut b = GraphBuilder::new(n, r);
                for (u, rel, v) in triples {
                    b.add_triple(u, rel, v);
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adjacency_is_always_symmetric(g in graph_strategy()) {
        for u in 0..g.num_nodes() as u32 {
            for (v, r, e) in g.neighbors(u) {
                prop_assert!(
                    g.neighbors(v).any(|(w, r2, e2)| w == u && r2 == r && e2 == e),
                    "edge {u}->{v} not mirrored"
                );
            }
        }
    }

    #[test]
    fn degree_sum_counts_each_triple_twice(g in graph_strategy()) {
        let total: usize = (0..g.num_nodes() as u32).map(|n| g.degree(n)).sum();
        prop_assert_eq!(total, 2 * g.num_edges());
    }

    #[test]
    fn sampler_respects_cap_and_anchor(
        g in graph_strategy(),
        seed in any::<u64>(),
        cap in 2usize..20,
        hops in 1usize..4,
    ) {
        let sampler = RandomWalkSampler::new(SamplerConfig {
            hops,
            max_nodes: cap,
            neighbors_per_node: 5,
        });
        let mut rng = StdRng::seed_from_u64(seed);
        let anchor = (seed % g.num_nodes() as u64) as u32;
        let sg = sampler.sample(&g, &[anchor], &mut rng);
        prop_assert!(sg.num_nodes() <= cap);
        prop_assert_eq!(sg.nodes[sg.anchors[0]], anchor);
        // No duplicate nodes.
        let mut sorted = sg.nodes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), sg.nodes.len());
    }

    #[test]
    fn induced_subgraph_edges_stay_inside_and_every_node_reachable(
        g in graph_strategy(),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::seq::SliceRandom;
        let mut nodes: Vec<u32> = (0..g.num_nodes() as u32).collect();
        nodes.shuffle(&mut rng);
        let take = (g.num_nodes() / 2).max(1);
        let subset: Vec<u32> = nodes.into_iter().take(take).collect();
        let anchor = subset[0];
        let sg = Subgraph::induce(&g, subset.clone(), &[anchor]);
        // All endpoints in-range, all in-degrees positive (self-loops fill).
        let deg = sg.edges.in_degrees(sg.num_nodes());
        prop_assert!(deg.iter().all(|&d| d > 0));
        for (s, d) in sg.edges.iter() {
            prop_assert!(s < sg.num_nodes() && d < sg.num_nodes());
        }
        // Relation list parallel to the edge list.
        prop_assert_eq!(sg.rels.len(), sg.edges.len());
    }

    #[test]
    fn anchor_edge_removal_never_leaves_orphans(
        g in graph_strategy(),
        seed in any::<u64>(),
    ) {
        if g.num_edges() == 0 {
            return Ok(());
        }
        let t = g.triple((seed % g.num_edges() as u64) as u32);
        if t.head == t.tail {
            return Ok(());
        }
        let sampler = RandomWalkSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(seed);
        let sg = sampler
            .sample(&g, &[t.head, t.tail], &mut rng)
            .without_anchor_edges();
        let deg = sg.edges.in_degrees(sg.num_nodes());
        prop_assert!(deg.iter().all(|&d| d > 0), "orphan after anchor-edge removal");
        let (a, b) = (sg.anchors[0], sg.anchors[1]);
        prop_assert!(
            !sg.edges.iter().any(|(s, d)| (s == a && d == b) || (s == b && d == a)),
            "anchor edge survived"
        );
    }
}
