//! First-order optimizers over a [`ParamStore`].

use std::collections::HashMap;

use gp_tensor::Tensor;

use crate::params::{ParamId, ParamStore};

static OPTIMIZER_STEPS: gp_obs::Counter = gp_obs::Counter::new("nn.optimizer_steps");

/// A gradient-descent optimizer.
pub trait Optimizer {
    /// Apply one update step given `(param, grad)` pairs.
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]);
}

/// Serializable snapshot of an Adam-family optimizer's mutable state
/// (step counter plus first/second moments), keyed by parameter index.
///
/// Entries are sorted by parameter index so the encoding is deterministic;
/// restoring a state and continuing training is bit-identical to never
/// having paused (moment tensors round-trip exactly through `f32` bytes).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OptimState {
    /// Number of steps taken so far (`t` in the Adam bias correction).
    pub t: u64,
    /// First-moment estimates, `(param_index, m)` sorted by index.
    pub m: Vec<(usize, Tensor)>,
    /// Second-moment estimates, `(param_index, v)` sorted by index.
    pub v: Vec<(usize, Tensor)>,
}

fn sorted_moments(map: &HashMap<usize, Tensor>) -> Vec<(usize, Tensor)> {
    // gp-lint: allow(D1) — collected then sorted by param index on the next line, so map order never escapes
    let mut out: Vec<(usize, Tensor)> = map.iter().map(|(k, t)| (*k, t.clone())).collect();
    out.sort_by_key(|(k, _)| *k);
    out
}

/// Plain SGD with optional momentum.
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables).
    pub momentum: f32,
    velocity: HashMap<usize, Tensor>,
}

impl Sgd {
    /// SGD with the given learning rate, no momentum.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            momentum: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: HashMap::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        OPTIMIZER_STEPS.inc();
        for (id, g) in grads {
            if self.momentum > 0.0 {
                let v = self
                    .velocity
                    .entry(id.index())
                    .or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
                *v = v.scale(self.momentum).add(g);
                store.get_mut(*id).add_scaled_assign(&v.clone(), -self.lr);
            } else {
                store.get_mut(*id).add_scaled_assign(g, -self.lr);
            }
        }
    }
}

/// Adam (Kingma & Ba 2015), with L2 regularization folded into the gradient.
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    t: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl Adam {
    /// Adam with standard betas (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        OPTIMIZER_STEPS.inc();
        self.t += 1;
        adam_update(
            store,
            grads,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            0.0,
            self.t,
            &mut self.m,
            &mut self.v,
        );
    }
}

/// AdamW (decoupled weight decay) — the paper's optimizer:
/// lr `1e-3`, weight decay `1e-3` (§V-A4).
pub struct AdamW {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical floor.
    pub eps: f32,
    /// Decoupled weight-decay coefficient.
    pub weight_decay: f32,
    t: u64,
    m: HashMap<usize, Tensor>,
    v: HashMap<usize, Tensor>,
}

impl AdamW {
    /// AdamW with the paper's defaults: betas (0.9, 0.999), wd as given.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// The paper's exact configuration (§V-A4): lr 1e-3, wd 1e-3.
    pub fn paper_default() -> Self {
        Self::new(1e-3, 1e-3)
    }

    /// Export the mutable state (step counter + moments) for checkpointing.
    pub fn state(&self) -> OptimState {
        OptimState {
            t: self.t,
            m: sorted_moments(&self.m),
            v: sorted_moments(&self.v),
        }
    }

    /// Restore state exported with [`AdamW::state`], replacing any
    /// accumulated moments. Resuming from a restored state reproduces the
    /// exact update sequence of an uninterrupted run.
    pub fn restore_state(&mut self, state: &OptimState) {
        self.t = state.t;
        // gp-lint: allow(D1) — OptimState.m/.v are index-sorted Vecs (same field names as AdamW's hash maps); rebuilding a map from them is order-free
        self.m = state.m.iter().map(|(k, t)| (*k, t.clone())).collect();
        // gp-lint: allow(D1) — OptimState.m/.v are index-sorted Vecs (same field names as AdamW's hash maps); rebuilding a map from them is order-free
        self.v = state.v.iter().map(|(k, t)| (*k, t.clone())).collect();
    }
}

impl Optimizer for AdamW {
    fn step(&mut self, store: &mut ParamStore, grads: &[(ParamId, Tensor)]) {
        OPTIMIZER_STEPS.inc();
        self.t += 1;
        // Decoupled decay first: θ ← θ (1 − lr·λ).
        if self.weight_decay > 0.0 {
            let factor = 1.0 - self.lr * self.weight_decay;
            for (id, _) in grads {
                let p = store.get_mut(*id);
                *p = p.scale(factor);
            }
        }
        adam_update(
            store,
            grads,
            self.lr,
            self.beta1,
            self.beta2,
            self.eps,
            0.0,
            self.t,
            &mut self.m,
            &mut self.v,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn adam_update(
    store: &mut ParamStore,
    grads: &[(ParamId, Tensor)],
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    l2: f32,
    t: u64,
    m: &mut HashMap<usize, Tensor>,
    v: &mut HashMap<usize, Tensor>,
) {
    let bc1 = 1.0 - beta1.powi(t as i32);
    let bc2 = 1.0 - beta2.powi(t as i32);
    for (id, g) in grads {
        let g = if l2 > 0.0 {
            g.add(&store.get(*id).scale(l2))
        } else {
            g.clone()
        };
        let mt = m
            .entry(id.index())
            .or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
        let vt = v
            .entry(id.index())
            .or_insert_with(|| Tensor::zeros(g.rows(), g.cols()));
        for i in 0..g.len() {
            let gi = g.as_slice()[i];
            let mi = beta1 * mt.as_slice()[i] + (1.0 - beta1) * gi;
            let vi = beta2 * vt.as_slice()[i] + (1.0 - beta2) * gi * gi;
            mt.as_mut_slice()[i] = mi;
            vt.as_mut_slice()[i] = vi;
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            store.get_mut(*id).as_mut_slice()[i] -= lr * m_hat / (v_hat.sqrt() + eps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Session;

    /// Minimize (w - 3)² with each optimizer; all must converge.
    fn converges(mut opt: impl Optimizer) -> f32 {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(0.0));
        for _ in 0..400 {
            let mut sess = Session::new(&store);
            let wv = sess.param(w);
            let target = sess.data(Tensor::scalar(3.0));
            let diff = sess.tape.sub(wv, target);
            let sq = sess.tape.mul(diff, diff);
            let loss = sess.tape.sum_all(sq);
            let (_, grads) = sess.grads(loss);
            opt.step(&mut store, &grads);
        }
        store.get(w).item()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        assert!((converges(Sgd::new(0.1)) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_converges_on_quadratic() {
        assert!((converges(Sgd::with_momentum(0.05, 0.9)) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        assert!((converges(Adam::new(0.05)) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn adamw_converges_near_target_with_decay() {
        // Weight decay biases slightly toward 0; allow a loose tolerance.
        let w = converges(AdamW::new(0.05, 1e-3));
        assert!((w - 3.0).abs() < 0.1, "w = {w}");
    }

    #[test]
    fn adamw_state_roundtrip_resumes_bit_identically() {
        // Train 10 steps, snapshot, train 10 more; versus snapshot-restore
        // into a fresh optimizer and train the same 10: bit-identical.
        let run = |resume: bool| -> f32 {
            let mut store = ParamStore::new();
            let w = store.add("w", Tensor::scalar(0.0));
            let mut opt = AdamW::new(0.05, 1e-3);
            let step = |opt: &mut AdamW, store: &mut ParamStore| {
                let mut sess = Session::new(store);
                let wv = sess.param(w);
                let target = sess.data(Tensor::scalar(3.0));
                let diff = sess.tape.sub(wv, target);
                let sq = sess.tape.mul(diff, diff);
                let loss = sess.tape.sum_all(sq);
                let (_, grads) = sess.grads(loss);
                opt.step(store, &grads);
            };
            for _ in 0..10 {
                step(&mut opt, &mut store);
            }
            if resume {
                let state = opt.state();
                let mut fresh = AdamW::new(0.05, 1e-3);
                fresh.restore_state(&state);
                opt = fresh;
            }
            for _ in 0..10 {
                step(&mut opt, &mut store);
            }
            store.get(w).item()
        };
        assert_eq!(run(false).to_bits(), run(true).to_bits());
    }

    #[test]
    fn adamw_decay_shrinks_untouched_direction() {
        // A parameter with zero gradient should still decay under AdamW.
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(10.0));
        let mut opt = AdamW::new(0.1, 0.5);
        let zero_grad = vec![(w, Tensor::scalar(0.0))];
        let before = store.get(w).item();
        opt.step(&mut store, &zero_grad);
        assert!(store.get(w).item() < before);
    }
}
