//! The bipartite task-graph model (§III-B, Eq. 10–11).
//!
//! A task graph contains `m·k + n` data nodes (prompts + queries) and `m`
//! label nodes. Each prompt node connects to *all* label nodes; the edge
//! attribute is `T` for the prompt's true class and `F` otherwise. An
//! attention GNN fuses the prompts associated with each class into a label
//! embedding (`H = GNN_T(G^T(S, Q))`, Eq. 10) and each query is classified
//! by the cosine-most-similar label embedding (Eq. 11).

use std::sync::Arc;

use gp_tensor::{EdgeList, Var};
use rand::Rng;

use crate::linear::{Activation, Linear};
use crate::params::{ParamId, ParamStore};
use crate::session::Session;

/// Attention-based task-graph GNN, following Prodigy's task-graph design.
pub struct TaskGraphAttention {
    /// Embedding per edge attribute (`T` = row 0, `F` = row 1).
    edge_emb: ParamId,
    /// Message net over `[prompt_emb | edge_emb]`.
    msg: Linear,
    /// Attention scorer over messages.
    att: Linear,
    /// Label update net back to embedding space.
    upd: Linear,
    /// Query projection.
    query_proj: Linear,
    /// Learned gate on the prototype residual path.
    proto_gate: ParamId,
    /// Whether the prototype residual path is wired in at all.
    use_prototype_residual: bool,
    /// Cosine-logit temperature (fixed).
    temperature: f32,
    edge_dim: usize,
    dim: usize,
}

/// Output of a task-graph forward pass.
pub struct TaskGraphOutput {
    /// `n×m` scaled-cosine logits for the queries.
    pub logits: Var,
    /// `m×d` label-node embeddings.
    pub label_embeddings: Var,
}

impl TaskGraphAttention {
    /// Build with embedding width `dim` (matching `GNN_D`'s output), hidden
    /// width `hidden`, and edge-attribute width `edge_dim`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        dim: usize,
        hidden: usize,
        edge_dim: usize,
    ) -> Self {
        Self {
            edge_emb: store.add(
                format!("{name}.edge_emb"),
                gp_tensor::rng::xavier_uniform(rng_, 2, edge_dim),
            ),
            msg: Linear::new(store, rng_, &format!("{name}.msg"), dim + edge_dim, hidden),
            att: Linear::new(store, rng_, &format!("{name}.att"), hidden, 1),
            upd: Linear::new(store, rng_, &format!("{name}.upd"), hidden, dim),
            query_proj: Linear::new(store, rng_, &format!("{name}.qproj"), dim, dim),
            proto_gate: store.add(format!("{name}.proto_gate"), gp_tensor::Tensor::scalar(0.5)),
            temperature: 10.0,
            use_prototype_residual: true,
            edge_dim,
            dim,
        }
    }

    /// Enable or disable the prototype residual path (enabled by default).
    pub fn set_prototype_residual(&mut self, enabled: bool) {
        self.use_prototype_residual = enabled;
    }

    /// Embedding width this model expects.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Run the task graph.
    ///
    /// * `prompts` — `P×d` prompt data-node embeddings (already importance-
    ///   weighted by the Prompt Selector when enabled).
    /// * `prompt_labels` — class of each prompt, values `< num_classes`.
    /// * `queries` — `n×d` query data-node embeddings.
    ///
    /// # Panics
    /// Panics when the prompt set is empty or a label is out of range.
    pub fn forward(
        &self,
        sess: &mut Session<'_>,
        prompts: Var,
        prompt_labels: &[usize],
        queries: Var,
        num_classes: usize,
    ) -> TaskGraphOutput {
        let p = sess.value(prompts).rows();
        assert!(p > 0, "task graph needs at least one prompt");
        assert_eq!(prompt_labels.len(), p, "one label per prompt required");
        assert!(
            prompt_labels.iter().all(|&y| y < num_classes),
            "prompt label out of range"
        );

        // Bipartite prompt→label edges: every prompt to every label.
        // Edge row r = i*m + j carries attribute T (0) iff label_i == j.
        let m = num_classes;
        let mut prompt_idx = Vec::with_capacity(p * m);
        let mut attr_idx = Vec::with_capacity(p * m);
        let mut pairs = Vec::with_capacity(p * m);
        for (i, &yi) in prompt_labels.iter().enumerate() {
            for j in 0..m {
                prompt_idx.push(i);
                attr_idx.push(usize::from(yi != j)); // 0 = T, 1 = F
                pairs.push(((i * m + j) as u32, j as u32));
            }
        }
        let bip = EdgeList::from_pairs(pairs).into_shared();

        // Messages: relu(W_msg [x_i | e_ij]).
        let x_e = sess.tape.gather_rows(prompts, Arc::new(prompt_idx));
        let emb = sess.param(self.edge_emb);
        let e_e = sess.tape.gather_rows(emb, Arc::new(attr_idx));
        let msg_in = sess.tape.concat_cols(x_e, e_e);
        let msg_lin = self.msg.forward(sess, msg_in);
        let msg_h = Activation::Relu.apply(sess, msg_lin);

        // Attention over messages, normalized per label node.
        let scores_raw = self.att.forward(sess, msg_h);
        let scores = sess.tape.leaky_relu(scores_raw, 0.2);
        let alpha = sess.tape.edge_softmax(bip.clone(), scores);

        // Aggregate messages into label nodes and update. The label
        // embedding is the attention update *plus* a class-prototype
        // residual (mean of the class's own prompt embeddings): the
        // attention path learns corrections while the prototype path keeps
        // label nodes anchored in the data-embedding space — which is what
        // lets test-time cached samples (Prompt Augmenter) shift decision
        // boundaries toward the test distribution, a la T3A.
        let label_agg = sess.tape.spmm(bip, msg_h, Some(alpha), m);
        let upd = self.upd.forward(sess, label_agg);
        let correction = sess.tape.tanh(upd);
        if !self.use_prototype_residual {
            // Attention-only label embeddings.
            let q = self.query_proj.forward(sess, queries);
            let qn = sess.tape.row_l2_normalize(q);
            let ln = sess.tape.row_l2_normalize(correction);
            let cos = sess.tape.matmul_tb(qn, ln);
            let logits = sess.tape.scale(cos, self.temperature);
            return TaskGraphOutput {
                logits,
                label_embeddings: correction,
            };
        }
        let mut class_count = vec![0f32; m];
        for &y in prompt_labels {
            class_count[y] += 1.0;
        }
        let proto_edges = EdgeList::from_pairs(
            prompt_labels
                .iter()
                .enumerate()
                .map(|(i, &y)| (i as u32, y as u32)),
        )
        .into_shared();
        let proto_w = sess.data(gp_tensor::Tensor::from_vec(
            prompt_labels.len(),
            1,
            prompt_labels
                .iter()
                .map(|&y| 1.0 / class_count[y].max(1.0))
                .collect(),
        ));
        let proto = sess.tape.spmm(proto_edges, prompts, Some(proto_w), m);
        // Gate the prototype path with a learned scalar so pre-training
        // balances prototype-averaging against the attention correction.
        let gate = sess.param(self.proto_gate);
        let ones_m = sess.data(gp_tensor::Tensor::full(m, 1, 1.0));
        let gate_col = sess.tape.matmul(ones_m, gate);
        let gated_proto = sess.tape.mul_rows_by_col(proto, gate_col);
        let label_embeddings = sess.tape.add(gated_proto, correction);

        // Queries → scaled-cosine logits against label embeddings.
        let q = self.query_proj.forward(sess, queries);
        let qn = sess.tape.row_l2_normalize(q);
        let ln = sess.tape.row_l2_normalize(label_embeddings);
        let cos = sess.tape.matmul_tb(qn, ln);
        let logits = sess.tape.scale(cos, self.temperature);

        TaskGraphOutput {
            logits,
            label_embeddings,
        }
    }

    /// Edge-attribute embedding width.
    pub fn edge_dim(&self) -> usize {
        self.edge_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use gp_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(dim: usize) -> (ParamStore, TaskGraphAttention) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(11);
        let tg = TaskGraphAttention::new(&mut store, &mut rng, "tg", dim, 16, 4);
        (store, tg)
    }

    /// Cluster-separated prompt embeddings: class c centered at unit axis c.
    fn clustered(
        n_per_class: usize,
        m: usize,
        dim: usize,
        noise: f32,
        seed: u64,
    ) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..m {
            for _ in 0..n_per_class {
                for d in 0..dim {
                    let base = if d == c { 1.0 } else { 0.0 };
                    data.push(base + noise * gp_tensor::rng::standard_normal(&mut rng));
                }
                labels.push(c);
            }
        }
        (Tensor::from_vec(n_per_class * m, dim, data), labels)
    }

    #[test]
    fn output_shapes() {
        let (store, tg) = setup(8);
        let (p, labels) = clustered(3, 4, 8, 0.1, 0);
        let (q, _) = clustered(2, 4, 8, 0.1, 1);
        let mut sess = Session::new(&store);
        let pv = sess.data(p);
        let qv = sess.data(q);
        let out = tg.forward(&mut sess, pv, &labels, qv, 4);
        assert_eq!(sess.value(out.logits).shape(), (8, 4));
        assert_eq!(sess.value(out.label_embeddings).shape(), (4, 8));
    }

    #[test]
    fn trains_to_classify_clustered_queries() {
        let (mut store, tg) = setup(6);
        let m = 3;
        let (p, p_labels) = clustered(3, m, 6, 0.05, 2);
        let (q, q_labels) = clustered(4, m, 6, 0.05, 3);
        let targets = Arc::new(q_labels.clone());
        let mut opt = Adam::new(0.01);
        let mut last = f32::INFINITY;
        for _ in 0..150 {
            let mut sess = Session::new(&store);
            let pv = sess.data(p.clone());
            let qv = sess.data(q.clone());
            let out = tg.forward(&mut sess, pv, &p_labels, qv, m);
            let loss = sess.tape.cross_entropy_logits(out.logits, targets.clone());
            let (lv, grads) = sess.grads(loss);
            opt.step(&mut store, &grads);
            last = lv;
        }
        assert!(last < 0.3, "task graph did not train: loss {last}");
        // After training, the argmax prediction (Eq. 11) must match.
        let mut sess = Session::new(&store);
        let pv = sess.data(p);
        let qv = sess.data(q);
        let out = tg.forward(&mut sess, pv, &p_labels, qv, m);
        let pred = sess.value(out.logits).argmax_rows();
        let correct = pred.iter().zip(&q_labels).filter(|(a, b)| a == b).count();
        assert!(correct >= 10, "only {correct}/12 correct");
    }

    #[test]
    #[should_panic(expected = "at least one prompt")]
    fn empty_prompt_set_panics() {
        let (store, tg) = setup(4);
        let mut sess = Session::new(&store);
        let pv = sess.data(Tensor::zeros(0, 4));
        let qv = sess.data(Tensor::zeros(1, 4));
        let _ = tg.forward(&mut sess, pv, &[], qv, 2);
    }

    #[test]
    fn class_with_no_prompt_still_gets_embedding() {
        // Labels only from class 0; class 1's label node aggregates F-edges.
        let (store, tg) = setup(4);
        let mut sess = Session::new(&store);
        let pv = sess.data(Tensor::from_vec(
            2,
            4,
            vec![1.0, 0.0, 0.0, 0.0, 0.9, 0.1, 0.0, 0.0],
        ));
        let qv = sess.data(Tensor::from_vec(1, 4, vec![1.0, 0.0, 0.0, 0.0]));
        let out = tg.forward(&mut sess, pv, &[0, 0], qv, 2);
        assert!(sess.value(out.logits).all_finite());
    }
}
