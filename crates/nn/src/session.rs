//! One forward/backward pass over a [`ParamStore`].

use gp_tensor::{Tape, Tensor, Var};

use crate::params::{ParamId, ParamStore};

/// A single forward/backward pass: owns a fresh [`Tape`] and lazily injects
/// parameters from the store (each parameter becomes exactly one tape leaf,
/// so fan-out gradients accumulate correctly).
pub struct Session<'s> {
    /// The underlying autodiff tape (exposed so callers can record data
    /// inputs and custom ops directly).
    pub tape: Tape,
    store: &'s ParamStore,
    bound: Vec<Option<Var>>,
}

impl<'s> Session<'s> {
    /// Start a pass against `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Self {
            tape: Tape::new(),
            store,
            bound: vec![None; store.len()],
        }
    }

    /// Tape variable for a parameter, injecting its current value on first
    /// use within this session.
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.bound[id.index()] {
            return v;
        }
        let v = self.tape.input(self.store.get(id).clone());
        self.bound[id.index()] = Some(v);
        v
    }

    /// Record a non-trainable data input.
    pub fn data(&mut self, t: Tensor) -> Var {
        self.tape.input(t)
    }

    /// Forward value of any tape node.
    pub fn value(&self, v: Var) -> &Tensor {
        self.tape.value(v)
    }

    /// Backward from `loss`; returns `(loss value, parameter gradients)`
    /// for every parameter touched this session, consuming the session.
    pub fn grads(self, loss: Var) -> (f32, Vec<(ParamId, Tensor)>) {
        let loss_value = self.tape.value(loss).item();
        let grads = self.tape.backward(loss);
        let mut out = Vec::new();
        for (i, bound) in self.bound.iter().enumerate() {
            if let Some(var) = bound {
                if let Some(g) = grads.try_get(*var) {
                    out.push((ParamId(i), g.clone()));
                }
            }
        }
        (loss_value, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_injected_once_and_grad_accumulates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(2.0));
        let mut sess = Session::new(&store);
        let a = sess.param(w);
        let b = sess.param(w);
        assert_eq!(a, b, "same param must map to the same tape node");
        // loss = w + w → d/dw = 2
        let y = sess.tape.add(a, b);
        let loss = sess.tape.sum_all(y);
        let (lv, grads) = sess.grads(loss);
        assert_eq!(lv, 4.0);
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].1.item(), 2.0);
    }

    #[test]
    fn untouched_params_produce_no_grads() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::scalar(2.0));
        let _unused = store.add("u", Tensor::scalar(1.0));
        let mut sess = Session::new(&store);
        let a = sess.param(w);
        let loss = sess.tape.sum_all(a);
        let (_, grads) = sess.grads(loss);
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, w);
    }
}
