//! Dense layers: [`Linear`] and the paper's 2-layer [`Mlp`].

use gp_tensor::{rng, Var};
use rand::Rng;

use crate::params::{ParamId, ParamStore};
use crate::session::Session;

/// Pointwise nonlinearity selector.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// max(0, x).
    Relu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Leaky ReLU with slope 0.2 (the GAT paper's choice).
    LeakyRelu,
}

impl Activation {
    /// Apply on a tape variable.
    pub fn apply(self, sess: &mut Session<'_>, x: Var) -> Var {
        match self {
            Activation::None => x,
            Activation::Relu => sess.tape.relu(x),
            Activation::Sigmoid => sess.tape.sigmoid(x),
            Activation::Tanh => sess.tape.tanh(x),
            Activation::LeakyRelu => sess.tape.leaky_relu(x, 0.2),
        }
    }
}

/// Fully connected layer `y = xW + b`.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Xavier-initialized layer with bias.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        Self::with_bias(store, rng_, name, in_dim, out_dim, true)
    }

    /// Xavier-initialized layer, optionally biasless.
    pub fn with_bias<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
    ) -> Self {
        let w = store.add(
            format!("{name}.w"),
            rng::xavier_uniform(rng_, in_dim, out_dim),
        );
        let b = bias.then(|| store.add(format!("{name}.b"), gp_tensor::Tensor::zeros(1, out_dim)));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `y = xW (+ b)` for an `n×in_dim` input.
    pub fn forward(&self, sess: &mut Session<'_>, x: Var) -> Var {
        let w = sess.param(self.w);
        let y = sess.tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = sess.param(b);
                sess.tape.add_row_broadcast(y, bv)
            }
            None => y,
        }
    }
}

/// Multi-layer perceptron with a fixed hidden activation.
///
/// The paper's reconstruction (`MLP_φ`) and selection (`MLP_θ`) modules are
/// "two-layer neural networks" (§V-F); [`Mlp::two_layer`] builds exactly
/// that shape.
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Build from explicit layer dims, e.g. `[in, hidden, out]`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out]");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng_, &format!("{name}.{i}"), w[0], w[1]))
            .collect();
        Self {
            layers,
            hidden_activation,
            output_activation,
        }
    }

    /// The paper's 2-layer shape: `in → hidden → out` with ReLU hidden.
    pub fn two_layer<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
    ) -> Self {
        Self::new(
            store,
            rng_,
            name,
            &[in_dim, hidden, out_dim],
            Activation::Relu,
            Activation::None,
        )
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// Forward an `n×in_dim` batch.
    pub fn forward(&self, sess: &mut Session<'_>, mut x: Var) -> Var {
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(sess, x);
            x = if i < last {
                self.hidden_activation.apply(sess, x)
            } else {
                self.output_activation.apply(sess, x)
            };
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};
    use gp_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn linear_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 3);
        let mut sess = Session::new(&store);
        let x = sess.data(Tensor::zeros(5, 4));
        let y = lin.forward(&mut sess, x);
        assert_eq!(sess.value(y).shape(), (5, 3));
    }

    #[test]
    fn mlp_learns_xor() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mlp = Mlp::new(
            &mut store,
            &mut rng,
            "xor",
            &[2, 8, 2],
            Activation::Tanh,
            Activation::None,
        );
        let x = Tensor::from_vec(4, 2, vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
        let targets = Arc::new(vec![0usize, 1, 1, 0]);
        let mut opt = Sgd::new(0.5);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut sess = Session::new(&store);
            let xv = sess.data(x.clone());
            let logits = mlp.forward(&mut sess, xv);
            let loss = sess.tape.cross_entropy_logits(logits, targets.clone());
            let (lv, grads) = sess.grads(loss);
            opt.step(&mut store, &grads);
            last = lv;
        }
        assert!(last < 0.1, "XOR loss did not converge: {last}");
        // Check predictions.
        let mut sess = Session::new(&store);
        let xv = sess.data(x);
        let logits = mlp.forward(&mut sess, xv);
        assert_eq!(sess.value(logits).argmax_rows(), vec![0, 1, 1, 0]);
    }

    #[test]
    fn two_layer_matches_paper_shape() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::two_layer(&mut store, &mut rng, "phi", 16, 32, 1);
        assert_eq!(mlp.in_dim(), 16);
        assert_eq!(mlp.out_dim(), 1);
        // 2 weight matrices + 2 biases.
        assert_eq!(store.len(), 4);
    }
}
