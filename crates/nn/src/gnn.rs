//! Message-passing GNN encoders over sampled subgraphs.
//!
//! All encoders accept optional **differentiable per-edge weights** — the
//! output of the Prompt Generator's reconstruction layer (Eq. 3) — so the
//! reweighting module trains jointly with the graph model, exactly as the
//! paper specifies ("we jointly train the reweighting modules along with
//! the graph model", §IV-A2).

use std::sync::Arc;

use gp_tensor::{EdgeList, Tensor, Var};
use rand::Rng;

use crate::linear::{Activation, Linear};
use crate::params::{ParamId, ParamStore};
use crate::session::Session;

/// A node encoder producing `n×out_dim` embeddings from node features and
/// an edge list, with optional per-edge weights in `[0, 1]`.
pub trait GnnEncoder {
    /// Encode `x` (`n×d`) over `edges`; `edge_weights` is an optional `E×1`
    /// tape variable multiplied into the aggregation.
    fn encode(
        &self,
        sess: &mut Session<'_>,
        x: Var,
        edges: &Arc<EdgeList>,
        num_nodes: usize,
        edge_weights: Option<Var>,
    ) -> Var;

    /// Output embedding width.
    fn out_dim(&self) -> usize;
}

/// Mean-aggregation weights `1/in-degree(dst)` as a data tensor.
fn mean_norm(sess: &mut Session<'_>, edges: &Arc<EdgeList>, num_nodes: usize) -> Var {
    let deg = edges.in_degrees(num_nodes);
    let w: Vec<f32> = (0..edges.len())
        .map(|e| 1.0 / deg[edges.dst(e)].max(1) as f32)
        .collect();
    sess.data(Tensor::from_vec(edges.len(), 1, w))
}

/// Normalize learned edge weights to sum to 1 per destination:
/// `ŵ_e = w_e / Σ_{e'→dst(e)} w_{e'}`. Plain sigmoid weights in `(0, 1)`
/// *shrink* total aggregation mass (a systematic self-vs-neighbor bias
/// that does not transfer across graph domains); renormalizing makes the
/// reconstruction layer purely re-distributional, which is the intent of
/// the paper's edge reweighting.
fn normalize_per_dst(
    sess: &mut Session<'_>,
    edges: &Arc<EdgeList>,
    weights: Var,
    num_nodes: usize,
) -> Var {
    let ones = sess.data(Tensor::full(num_nodes, 1, 1.0));
    let sums = sess
        .tape
        .spmm(edges.clone(), ones, Some(weights), num_nodes);
    let dst_idx: Arc<Vec<usize>> = Arc::new((0..edges.len()).map(|e| edges.dst(e)).collect());
    let denom = sess.tape.gather_rows(sums, dst_idx);
    let inv = sess.tape.recip(denom, 1e-6);
    sess.tape.mul(weights, inv)
}

/// GCN-style symmetric normalization `1/√(deg(src)·deg(dst))`.
fn sym_norm(sess: &mut Session<'_>, edges: &Arc<EdgeList>, num_nodes: usize) -> Var {
    let deg = edges.in_degrees(num_nodes);
    let w: Vec<f32> = (0..edges.len())
        .map(|e| {
            let ds = deg[edges.src(e)].max(1) as f32;
            let dd = deg[edges.dst(e)].max(1) as f32;
            1.0 / (ds * dd).sqrt()
        })
        .collect();
    sess.data(Tensor::from_vec(edges.len(), 1, w))
}

/// One GraphSAGE layer: `h' = act([h | mean_w(h_neigh)]·W + b)`.
struct SageLayer {
    lin: Linear,
    act: Activation,
}

/// GraphSAGE (Hamilton et al. 2017) with the concat-mean aggregator — the
/// paper's `GNN_D` (§V-A4: "We use GraphSAGE to generate the embeddings for
/// data graph prompts in Eq 4, which has been proven to have good
/// scalability on large-scale graphs").
///
/// The final layer output is row-L2-normalized, matching Prodigy's use of
/// cosine-space embeddings downstream.
pub struct GraphSage {
    layers: Vec<SageLayer>,
    out_dim: usize,
    normalize_learned: bool,
}

impl GraphSage {
    /// `dims = [in, h1, ..., out]`; ReLU between layers.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        dims: &[usize],
    ) -> Self {
        assert!(dims.len() >= 2, "GraphSage needs at least [in, out]");
        let last = dims.len() - 2;
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| SageLayer {
                // Concat aggregator: input is [self | neighbors] → 2·w[0].
                lin: Linear::new(store, rng_, &format!("{name}.sage{i}"), 2 * w[0], w[1]),
                act: if i < last {
                    Activation::Relu
                } else {
                    Activation::None
                },
            })
            .collect();
        Self {
            layers,
            out_dim: *dims.last().unwrap(),
            normalize_learned: true,
        }
    }

    /// Choose how learned edge weights enter the aggregation: per-dst
    /// renormalized (default) or multiplied into the fixed mean norm.
    pub fn set_normalize_learned(&mut self, normalize: bool) {
        self.normalize_learned = normalize;
    }
}

impl GnnEncoder for GraphSage {
    fn encode(
        &self,
        sess: &mut Session<'_>,
        mut x: Var,
        edges: &Arc<EdgeList>,
        num_nodes: usize,
        edge_weights: Option<Var>,
    ) -> Var {
        let w = match edge_weights {
            Some(lw) if self.normalize_learned => normalize_per_dst(sess, edges, lw, num_nodes),
            Some(lw) => {
                let norm = mean_norm(sess, edges, num_nodes);
                sess.tape.mul(lw, norm)
            }
            None => mean_norm(sess, edges, num_nodes),
        };
        for layer in &self.layers {
            let neigh = sess.tape.spmm(edges.clone(), x, Some(w), num_nodes);
            let cat = sess.tape.concat_cols(x, neigh);
            let h = layer.lin.forward(sess, cat);
            x = layer.act.apply(sess, h);
        }
        sess.tape.row_l2_normalize(x)
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// Graph Convolutional Network (Kipf & Welling 2017) with symmetric
/// normalization, provided as an alternative `GNN_D`.
pub struct Gcn {
    layers: Vec<(Linear, Activation)>,
    out_dim: usize,
}

impl Gcn {
    /// `dims = [in, h1, ..., out]`; ReLU between layers.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        dims: &[usize],
    ) -> Self {
        assert!(dims.len() >= 2, "Gcn needs at least [in, out]");
        let last = dims.len() - 2;
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                (
                    Linear::new(store, rng_, &format!("{name}.gcn{i}"), w[0], w[1]),
                    if i < last {
                        Activation::Relu
                    } else {
                        Activation::None
                    },
                )
            })
            .collect();
        Self {
            layers,
            out_dim: *dims.last().unwrap(),
        }
    }
}

impl GnnEncoder for Gcn {
    fn encode(
        &self,
        sess: &mut Session<'_>,
        mut x: Var,
        edges: &Arc<EdgeList>,
        num_nodes: usize,
        edge_weights: Option<Var>,
    ) -> Var {
        let w = match edge_weights {
            Some(lw) => normalize_per_dst(sess, edges, lw, num_nodes),
            None => sym_norm(sess, edges, num_nodes),
        };
        for (lin, act) in &self.layers {
            let agg = sess.tape.spmm(edges.clone(), x, Some(w), num_nodes);
            let h = lin.forward(sess, agg);
            x = act.apply(sess, h);
        }
        sess.tape.row_l2_normalize(x)
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

/// One GAT head's parameters.
struct GatHead {
    lin: Linear,
    a_src: ParamId,
    a_dst: ParamId,
}

/// One GAT layer: one or more attention heads, concatenated.
struct GatLayer {
    heads: Vec<GatHead>,
    act: Activation,
}

/// Graph Attention Network (Veličković et al. 2018), optionally
/// multi-head (heads are concatenated; each head gets `out/H` channels,
/// the standard GAT arrangement).
///
/// Used in the Fig. 4 ablation as an alternative Prompt Generator: GAT's
/// attention *is* a form of learned edge reweighting, which the paper
/// compares against its reconstruction-layer + GraphSAGE combination.
pub struct Gat {
    layers: Vec<GatLayer>,
    out_dim: usize,
}

impl Gat {
    /// Single-head GAT; `dims = [in, h1, ..., out]`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        dims: &[usize],
    ) -> Self {
        Self::with_heads(store, rng_, name, dims, 1)
    }

    /// Multi-head GAT with `heads` attention heads per layer.
    ///
    /// # Panics
    /// Panics if a layer width is not divisible by `heads`.
    pub fn with_heads<R: Rng + ?Sized>(
        store: &mut ParamStore,
        rng_: &mut R,
        name: &str,
        dims: &[usize],
        heads: usize,
    ) -> Self {
        assert!(dims.len() >= 2, "Gat needs at least [in, out]");
        assert!(heads >= 1, "Gat needs at least one head");
        let last = dims.len() - 2;
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                assert!(
                    w[1] % heads == 0,
                    "layer width {} not divisible by {heads} heads",
                    w[1]
                );
                let head_dim = w[1] / heads;
                GatLayer {
                    heads: (0..heads)
                        .map(|h| GatHead {
                            lin: Linear::new(
                                store,
                                rng_,
                                &format!("{name}.gat{i}.h{h}"),
                                w[0],
                                head_dim,
                            ),
                            a_src: store.add(
                                format!("{name}.gat{i}.h{h}.a_src"),
                                gp_tensor::rng::xavier_uniform(rng_, head_dim, 1),
                            ),
                            a_dst: store.add(
                                format!("{name}.gat{i}.h{h}.a_dst"),
                                gp_tensor::rng::xavier_uniform(rng_, head_dim, 1),
                            ),
                        })
                        .collect(),
                    act: if i < last {
                        Activation::LeakyRelu
                    } else {
                        Activation::None
                    },
                }
            })
            .collect();
        Self {
            layers,
            out_dim: *dims.last().unwrap(),
        }
    }
}

impl GnnEncoder for Gat {
    fn encode(
        &self,
        sess: &mut Session<'_>,
        mut x: Var,
        edges: &Arc<EdgeList>,
        num_nodes: usize,
        edge_weights: Option<Var>,
    ) -> Var {
        let src_idx: Arc<Vec<usize>> = Arc::new((0..edges.len()).map(|e| edges.src(e)).collect());
        let dst_idx: Arc<Vec<usize>> = Arc::new((0..edges.len()).map(|e| edges.dst(e)).collect());
        for layer in &self.layers {
            let mut head_outputs = Vec::with_capacity(layer.heads.len());
            for head in &layer.heads {
                let h = head.lin.forward(sess, x);
                // e_uv = LeakyReLU(a_srcᵀ h_u + a_dstᵀ h_v), softmax per dst.
                let a_src = sess.param(head.a_src);
                let a_dst = sess.param(head.a_dst);
                let s_all = sess.tape.matmul(h, a_src); // n×1
                let d_all = sess.tape.matmul(h, a_dst); // n×1
                let s_e = sess.tape.gather_rows(s_all, src_idx.clone());
                let d_e = sess.tape.gather_rows(d_all, dst_idx.clone());
                let raw = sess.tape.add(s_e, d_e);
                let scores = sess.tape.leaky_relu(raw, 0.2);
                let mut alpha = sess.tape.edge_softmax(edges.clone(), scores);
                if let Some(lw) = edge_weights {
                    // External reconstruction weights modulate attention.
                    alpha = sess.tape.mul(alpha, lw);
                }
                head_outputs.push(sess.tape.spmm(edges.clone(), h, Some(alpha), num_nodes));
            }
            let mut agg = head_outputs[0];
            for &rest in &head_outputs[1..] {
                agg = sess.tape.concat_cols(agg, rest);
            }
            x = layer.act.apply(sess, agg);
        }
        sess.tape.row_l2_normalize(x)
    }

    fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_graph(n: usize) -> Arc<EdgeList> {
        let mut pairs = Vec::new();
        for i in 0..n as u32 - 1 {
            pairs.push((i, i + 1));
            pairs.push((i + 1, i));
        }
        // self loops
        for i in 0..n as u32 {
            pairs.push((i, i));
        }
        EdgeList::from_pairs(pairs).into_shared()
    }

    fn features(n: usize, d: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        gp_tensor::rng::randn(&mut rng, n, d, 1.0)
    }

    #[test]
    fn sage_output_shape_and_normalization() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let sage = GraphSage::new(&mut store, &mut rng, "s", &[4, 8, 6]);
        assert_eq!(sage.out_dim(), 6);
        let edges = line_graph(5);
        let mut sess = Session::new(&store);
        let x = sess.data(features(5, 4, 1));
        let h = sage.encode(&mut sess, x, &edges, 5, None);
        let hv = sess.value(h);
        assert_eq!(hv.shape(), (5, 6));
        for r in 0..5 {
            let norm: f32 = hv.row(r).iter().map(|&v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-4, "row {r} norm {norm}");
        }
    }

    #[test]
    fn gcn_and_gat_shapes() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let gcn = Gcn::new(&mut store, &mut rng, "g", &[4, 6]);
        let gat = Gat::new(&mut store, &mut rng, "a", &[4, 6]);
        let edges = line_graph(4);
        let mut sess = Session::new(&store);
        let x = sess.data(features(4, 4, 2));
        let h1 = gcn.encode(&mut sess, x, &edges, 4, None);
        let h2 = gat.encode(&mut sess, x, &edges, 4, None);
        assert_eq!(sess.value(h1).shape(), (4, 6));
        assert_eq!(sess.value(h2).shape(), (4, 6));
    }

    #[test]
    fn zero_edge_weights_isolate_nodes_in_sage() {
        // With all reconstruction weights at 0 the neighbor half of the
        // concat must be exactly zero → output depends only on self features.
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(3);
        let sage = GraphSage::new(&mut store, &mut rng, "s", &[3, 4]);
        let edges = line_graph(4);
        let x_t = features(4, 3, 4);

        let mut s1 = Session::new(&store);
        let x1 = s1.data(x_t.clone());
        let zeros = s1.data(Tensor::zeros(edges.len(), 1));
        let h_zero = sage.encode(&mut s1, x1, &edges, 4, Some(zeros));
        let h_zero = s1.value(h_zero).clone();

        // Manually: concat(x, 0) → same as linear on [x|0].
        let mut s2 = Session::new(&store);
        let x2 = s2.data(x_t.clone());
        let z = s2.data(Tensor::zeros(4, 3));
        let cat = s2.tape.concat_cols(x2, z);
        // first (only) layer
        let lin_out = sage.layers[0].lin.forward(&mut s2, cat);
        let act = sage.layers[0].act.apply(&mut s2, lin_out);
        let expect = s2.tape.row_l2_normalize(act);
        let expect = s2.value(expect).clone();

        for (a, b) in h_zero.as_slice().iter().zip(expect.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    /// All three encoders must be trainable end-to-end: learn to classify
    /// nodes of a two-cluster graph from noisy features.
    fn encoder_learns(enc: &dyn GnnEncoder, store: &mut ParamStore, head: &Linear) -> f32 {
        let n = 12;
        let mut pairs = Vec::new();
        // two cliques of 6, one bridge
        for c in 0..2u32 {
            for i in 0..6u32 {
                for j in 0..6u32 {
                    if i != j {
                        pairs.push((c * 6 + i, c * 6 + j));
                    }
                }
            }
        }
        pairs.push((0, 6));
        pairs.push((6, 0));
        let edges = EdgeList::from_pairs(pairs).into_shared();
        let x = features(n, 4, 9);
        let targets: Arc<Vec<usize>> = Arc::new((0..n).map(|i| i / 6).collect());
        let mut opt = Adam::new(0.02);
        let mut last = f32::INFINITY;
        for _ in 0..120 {
            let mut sess = Session::new(store);
            let xv = sess.data(x.clone());
            let h = enc.encode(&mut sess, xv, &edges, n, None);
            let logits = head.forward(&mut sess, h);
            let loss = sess.tape.cross_entropy_logits(logits, targets.clone());
            let (lv, grads) = sess.grads(loss);
            opt.step(store, &grads);
            last = lv;
        }
        last
    }

    #[test]
    fn sage_trains_to_low_loss() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(5);
        let enc = GraphSage::new(&mut store, &mut rng, "s", &[4, 8, 8]);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 2);
        let loss = encoder_learns(&enc, &mut store, &head);
        assert!(loss < 0.2, "SAGE loss {loss}");
    }

    #[test]
    fn multi_head_gat_shapes_and_training() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let gat = Gat::with_heads(&mut store, &mut rng, "mh", &[4, 8, 8], 4);
        let edges = line_graph(5);
        let mut sess = Session::new(&store);
        let x = sess.data(features(5, 4, 13));
        let h = gat.encode(&mut sess, x, &edges, 5, None);
        assert_eq!(sess.value(h).shape(), (5, 8));
        assert!(sess.value(h).all_finite());
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn gat_rejects_indivisible_heads() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(12);
        let _ = Gat::with_heads(&mut store, &mut rng, "mh", &[4, 6], 4);
    }

    #[test]
    fn gat_trains_to_low_loss() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(6);
        let enc = Gat::new(&mut store, &mut rng, "a", &[4, 8, 8]);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 2);
        let loss = encoder_learns(&enc, &mut store, &head);
        assert!(loss < 0.3, "GAT loss {loss}");
    }

    #[test]
    fn gcn_trains_to_low_loss() {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(8);
        let enc = Gcn::new(&mut store, &mut rng, "g", &[4, 8, 8]);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 2);
        let loss = encoder_learns(&enc, &mut store, &head);
        assert!(loss < 0.3, "GCN loss {loss}");
    }
}
