//! Parameter registry, decoupled from the per-step autodiff tape.

use gp_tensor::Tensor;

/// Typed error for fallible [`ParamStore`] mutations ([`ParamStore::try_set`],
/// [`ParamStore::try_restore`]). The panicking variants remain for internal
/// hot paths where a mismatch is a programmer error; checkpoint/restore code
/// paths use the `try_` variants so corrupt or mismatched state surfaces as a
/// recoverable error instead of a crash.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParamError {
    /// A tensor's shape does not match the registered parameter's shape.
    ShapeMismatch {
        /// Debug name of the parameter.
        name: String,
        /// Shape registered in the store.
        expected: (usize, usize),
        /// Shape that was offered.
        got: (usize, usize),
    },
    /// A snapshot's tensor count does not match the store's.
    LengthMismatch {
        /// Number of tensors in the store.
        expected: usize,
        /// Number of tensors offered.
        got: usize,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::ShapeMismatch {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "shape mismatch for {name}: expected {expected:?}, got {got:?}"
                )
            }
            ParamError::LengthMismatch { expected, got } => {
                write!(
                    f,
                    "snapshot length mismatch: store has {expected} tensors, got {got}"
                )
            }
        }
    }
}

impl std::error::Error for ParamError {}

/// Opaque handle to a parameter tensor inside a [`ParamStore`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ParamId(pub(crate) usize);

impl ParamId {
    /// Index into the store (stable for the store's lifetime).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Owns every trainable tensor of a model.
///
/// Layers hold [`ParamId`]s, not tensors, so the same layer object can be
/// used across training steps while optimizers mutate the store in place.
/// Cloning preserves ids, so a cloned store can be *extended* with new
/// parameters (e.g. a per-episode head over a frozen encoder) while the
/// original layers keep working against it.
#[derive(Clone, Default)]
pub struct ParamStore {
    tensors: Vec<Tensor>,
    names: Vec<String>,
    revision: u64,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Monotonic counter bumped by every (potential) mutation of parameter
    /// values: [`ParamStore::add`], [`ParamStore::get_mut`],
    /// [`ParamStore::set`]/[`ParamStore::try_set`],
    /// [`ParamStore::restore`]/[`ParamStore::try_restore`] and successful
    /// [`ParamStore::load`]. Caches keyed on model weights (e.g. memoized
    /// embeddings) compare revisions to detect staleness without hashing
    /// tensor data.
    #[inline]
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Register a parameter; `name` is for debugging/reporting only.
    pub fn add(&mut self, name: impl Into<String>, tensor: Tensor) -> ParamId {
        self.revision += 1;
        self.tensors.push(tensor);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    /// Current value of a parameter.
    #[inline]
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access (used by optimizers). Conservatively counts as a
    /// mutation for [`ParamStore::revision`].
    #[inline]
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.revision += 1;
        &mut self.tensors[id.0]
    }

    /// Overwrite a parameter's value (e.g. loading a checkpoint).
    ///
    /// # Panics
    /// Panics on shape mismatch; use [`ParamStore::try_set`] where the
    /// tensor comes from untrusted input (files, snapshots).
    pub fn set(&mut self, id: ParamId, tensor: Tensor) {
        self.try_set(id, tensor)
            .unwrap_or_else(|e| panic!("ParamStore::set: {e}"));
    }

    /// Fallible [`ParamStore::set`]: rejects shape mismatches with a typed
    /// error instead of panicking.
    pub fn try_set(&mut self, id: ParamId, tensor: Tensor) -> Result<(), ParamError> {
        if self.tensors[id.0].shape() != tensor.shape() {
            return Err(ParamError::ShapeMismatch {
                name: self.names[id.0].clone(),
                expected: self.tensors[id.0].shape(),
                got: tensor.shape(),
            });
        }
        self.revision += 1;
        self.tensors[id.0] = tensor;
        Ok(())
    }

    /// Debug name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of registered parameter tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Iterate over all `(id, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.tensors
            .iter()
            .enumerate()
            .map(|(i, t)| (ParamId(i), t))
    }

    /// Snapshot all parameter values (cheap checkpointing).
    pub fn snapshot(&self) -> Vec<Tensor> {
        self.tensors.clone()
    }

    /// Restore a snapshot taken with [`ParamStore::snapshot`].
    ///
    /// # Panics
    /// Panics if the snapshot does not match the store layout; use
    /// [`ParamStore::try_restore`] for snapshots loaded from disk.
    pub fn restore(&mut self, snapshot: &[Tensor]) {
        self.try_restore(snapshot)
            .unwrap_or_else(|e| panic!("ParamStore::restore: {e}"));
    }

    /// Fallible [`ParamStore::restore`]: validates the whole snapshot
    /// (count and every shape) before mutating anything, so a failed
    /// restore leaves the store untouched.
    pub fn try_restore(&mut self, snapshot: &[Tensor]) -> Result<(), ParamError> {
        if snapshot.len() != self.tensors.len() {
            return Err(ParamError::LengthMismatch {
                expected: self.tensors.len(),
                got: snapshot.len(),
            });
        }
        for (i, (t, s)) in self.tensors.iter().zip(snapshot).enumerate() {
            if t.shape() != s.shape() {
                return Err(ParamError::ShapeMismatch {
                    name: self.names[i].clone(),
                    expected: t.shape(),
                    got: s.shape(),
                });
            }
        }
        self.revision += 1;
        for (t, s) in self.tensors.iter_mut().zip(snapshot) {
            *t = s.clone();
        }
        Ok(())
    }

    /// Serialize every parameter to a writer (little-endian binary:
    /// magic, version, tensor count, then per tensor name/rows/cols/data).
    pub fn save<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        w.write_all(Self::MAGIC)?;
        w.write_all(&Self::VERSION.to_le_bytes())?;
        w.write_all(&(self.tensors.len() as u64).to_le_bytes())?;
        for (name, t) in self.names.iter().zip(&self.tensors) {
            let bytes = name.as_bytes();
            w.write_all(&(bytes.len() as u64).to_le_bytes())?;
            w.write_all(bytes)?;
            w.write_all(&(t.rows() as u64).to_le_bytes())?;
            w.write_all(&(t.cols() as u64).to_le_bytes())?;
            for v in t.as_slice() {
                w.write_all(&v.to_le_bytes())?;
            }
        }
        Ok(())
    }

    /// Load parameter *values* saved with [`ParamStore::save`] into this
    /// store. The store must already have the same layout (same names and
    /// shapes in the same order) — build the model first, then load.
    pub fn load<R: std::io::Read>(&mut self, r: &mut R) -> std::io::Result<()> {
        use std::io::{Error, ErrorKind};
        let bad = |msg: &str| Error::new(ErrorKind::InvalidData, msg.to_string());

        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != Self::MAGIC {
            return Err(bad("not a ParamStore checkpoint (bad magic)"));
        }
        let mut u32b = [0u8; 4];
        r.read_exact(&mut u32b)?;
        if u32::from_le_bytes(u32b) != Self::VERSION {
            return Err(bad("unsupported checkpoint version"));
        }
        let mut u64b = [0u8; 8];
        r.read_exact(&mut u64b)?;
        let count = u64::from_le_bytes(u64b) as usize;
        if count != self.tensors.len() {
            return Err(bad("checkpoint parameter count differs from model"));
        }
        for i in 0..count {
            r.read_exact(&mut u64b)?;
            let name_len = u64::from_le_bytes(u64b) as usize;
            let mut name = vec![0u8; name_len];
            r.read_exact(&mut name)?;
            let name = String::from_utf8(name).map_err(|_| bad("invalid name"))?;
            if name != self.names[i] {
                return Err(bad("checkpoint parameter order/name differs from model"));
            }
            r.read_exact(&mut u64b)?;
            let rows = u64::from_le_bytes(u64b) as usize;
            r.read_exact(&mut u64b)?;
            let cols = u64::from_le_bytes(u64b) as usize;
            if (rows, cols) != self.tensors[i].shape() {
                return Err(bad("checkpoint tensor shape differs from model"));
            }
            let mut data = vec![0f32; rows * cols];
            for v in data.iter_mut() {
                r.read_exact(&mut u32b)?;
                *v = f32::from_le_bytes(u32b);
            }
            self.revision += 1;
            self.tensors[i] = Tensor::from_vec(rows, cols, data);
        }
        Ok(())
    }

    const MAGIC: &'static [u8; 4] = b"GPPS";
    const VERSION: u32 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_set_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(2, 3));
        assert_eq!(store.get(id).shape(), (2, 3));
        store.set(id, Tensor::full(2, 3, 1.5));
        assert_eq!(store.get(id).get(1, 2), 1.5);
        assert_eq!(store.name(id), "w");
        assert_eq!(store.num_scalars(), 6);
    }

    #[test]
    fn snapshot_restore() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::full(1, 2, 3.0));
        let snap = store.snapshot();
        store.get_mut(id).as_mut_slice()[0] = -1.0;
        store.restore(&snap);
        assert_eq!(store.get(id).get(0, 0), 3.0);
    }

    #[test]
    fn save_load_roundtrip() {
        let mut store = ParamStore::new();
        store.add(
            "w",
            Tensor::from_vec(2, 3, vec![1.0, -2.0, 3.5, 0.0, 9.9, -7.25]),
        );
        store.add("b", Tensor::from_vec(1, 2, vec![0.5, -0.5]));
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();

        let mut fresh = ParamStore::new();
        let w = fresh.add("w", Tensor::zeros(2, 3));
        let b = fresh.add("b", Tensor::zeros(1, 2));
        fresh.load(&mut buf.as_slice()).unwrap();
        assert_eq!(fresh.get(w).as_slice(), &[1.0, -2.0, 3.5, 0.0, 9.9, -7.25]);
        assert_eq!(fresh.get(b).as_slice(), &[0.5, -0.5]);
    }

    #[test]
    fn load_rejects_layout_mismatch() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(2, 2));
        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();

        let mut wrong_shape = ParamStore::new();
        wrong_shape.add("w", Tensor::zeros(3, 2));
        assert!(wrong_shape.load(&mut buf.as_slice()).is_err());

        let mut wrong_name = ParamStore::new();
        wrong_name.add("v", Tensor::zeros(2, 2));
        assert!(wrong_name.load(&mut buf.as_slice()).is_err());

        let mut wrong_count = ParamStore::new();
        wrong_count.add("w", Tensor::zeros(2, 2));
        wrong_count.add("extra", Tensor::zeros(1, 1));
        assert!(wrong_count.load(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn load_rejects_garbage() {
        let mut store = ParamStore::new();
        store.add("w", Tensor::zeros(1, 1));
        assert!(store.load(&mut &b"not a checkpoint"[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn set_rejects_wrong_shape() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(2, 3));
        store.set(id, Tensor::zeros(3, 2));
    }

    #[test]
    fn try_set_returns_typed_error() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::zeros(2, 3));
        let err = store.try_set(id, Tensor::zeros(3, 2)).unwrap_err();
        assert_eq!(
            err,
            ParamError::ShapeMismatch {
                name: "w".into(),
                expected: (2, 3),
                got: (3, 2)
            }
        );
        assert!(store.try_set(id, Tensor::full(2, 3, 1.0)).is_ok());
        assert_eq!(store.get(id).get(0, 0), 1.0);
    }

    #[test]
    fn revision_bumps_on_every_mutation_path() {
        let mut store = ParamStore::new();
        let r0 = store.revision();
        let id = store.add("w", Tensor::zeros(2, 2));
        assert!(store.revision() > r0, "add must bump");

        let r1 = store.revision();
        store.get(id);
        store.iter().count();
        let _ = store.snapshot();
        assert_eq!(store.revision(), r1, "reads must not bump");

        store.get_mut(id).as_mut_slice()[0] = 1.0;
        let r2 = store.revision();
        assert!(r2 > r1, "get_mut must bump");

        // A failed try_set leaves the revision alone.
        assert!(store.try_set(id, Tensor::zeros(9, 9)).is_err());
        assert_eq!(store.revision(), r2);
        assert!(store.try_set(id, Tensor::full(2, 2, 2.0)).is_ok());
        let r3 = store.revision();
        assert!(r3 > r2, "try_set must bump");

        let snap = store.snapshot();
        assert!(store.try_restore(&[Tensor::zeros(1, 1)]).is_err());
        assert_eq!(store.revision(), r3, "failed restore must not bump");
        store.restore(&snap);
        let r4 = store.revision();
        assert!(r4 > r3, "restore must bump");

        let mut buf = Vec::new();
        store.save(&mut buf).unwrap();
        assert_eq!(store.revision(), r4, "save is a read");
        store.load(&mut buf.as_slice()).unwrap();
        assert!(store.revision() > r4, "load must bump");
    }

    #[test]
    fn try_restore_validates_before_mutating() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::full(1, 2, 1.0));
        let b = store.add("b", Tensor::full(2, 2, 2.0));
        // Wrong count.
        let err = store.try_restore(&[Tensor::zeros(1, 2)]).unwrap_err();
        assert_eq!(
            err,
            ParamError::LengthMismatch {
                expected: 2,
                got: 1
            }
        );
        // Second tensor has the wrong shape: nothing may change.
        let bad = vec![Tensor::zeros(1, 2), Tensor::zeros(9, 9)];
        assert!(store.try_restore(&bad).is_err());
        assert_eq!(store.get(a).get(0, 0), 1.0);
        assert_eq!(store.get(b).get(0, 0), 2.0);
        // A matching snapshot applies.
        let good = vec![Tensor::full(1, 2, -1.0), Tensor::full(2, 2, -2.0)];
        assert!(store.try_restore(&good).is_ok());
        assert_eq!(store.get(a).get(0, 0), -1.0);
    }
}
