//! # gp-nn
//!
//! Neural-network building blocks over the [`gp_tensor`] autograd engine:
//!
//! * [`ParamStore`] / [`Session`] — a parameter registry decoupled from the
//!   per-step [`gp_tensor::Tape`], so one set of weights can drive many
//!   forward/backward passes (the "tape per step, params outside" pattern).
//! * [`Linear`] / [`Mlp`] — the 2-layer MLPs the paper uses for the
//!   reconstruction layer (`MLP_φ`, Eq. 2) and selection layer (`MLP_θ`, Eq. 5).
//! * Optimizers: [`Sgd`], [`Adam`], [`AdamW`] (the paper trains with AdamW,
//!   lr 1e-3, weight decay 1e-3).
//! * GNNs: [`GraphSage`] (the paper's `GNN_D`, §V-A4), [`Gcn`], and [`Gat`]
//!   (the Fig. 4 generator ablation), all supporting *differentiable edge
//!   weights* so the Prompt Generator's reconstruction weights train
//!   end-to-end.
//! * [`TaskGraphAttention`] — the attention-based bipartite task-graph
//!   model (Eq. 10) that fuses prompts per class into label embeddings and
//!   scores queries by cosine similarity (Eq. 11).

pub mod gnn;
pub mod linear;
pub mod optim;
pub mod params;
pub mod session;
pub mod task_graph;

pub use gnn::{Gat, Gcn, GnnEncoder, GraphSage};
pub use linear::{Activation, Linear, Mlp};
pub use optim::{Adam, AdamW, OptimState, Optimizer, Sgd};
pub use params::{ParamError, ParamId, ParamStore};
pub use session::Session;
pub use task_graph::TaskGraphAttention;
