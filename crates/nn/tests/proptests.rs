//! Property tests for the neural layers: randomized gradient checks
//! through full MLPs, optimizer convergence on random quadratics, and
//! GNN invariants on random graphs.

use std::sync::Arc;

use gp_nn::{Activation, Adam, GnnEncoder, GraphSage, Mlp, Optimizer, ParamStore, Session};
use gp_tensor::{rng as trng, EdgeList, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_connected_edges<R: Rng>(n: usize, extra: usize, rng: &mut R) -> Arc<EdgeList> {
    let mut pairs = Vec::new();
    // Ring for connectivity + self-loops + random chords.
    for i in 0..n as u32 {
        pairs.push((i, (i + 1) % n as u32));
        pairs.push(((i + 1) % n as u32, i));
        pairs.push((i, i));
    }
    for _ in 0..extra {
        pairs.push((rng.gen_range(0..n as u32), rng.gen_range(0..n as u32)));
    }
    EdgeList::from_pairs(pairs).into_shared()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn mlp_gradient_matches_finite_difference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[3, 5, 2], Activation::Tanh, Activation::None);
        let x = trng::randn(&mut rng, 2, 3, 1.0);
        let targets = Arc::new(vec![0usize, 1]);

        let loss_of = |store: &ParamStore| -> f32 {
            let mut sess = Session::new(store);
            let xv = sess.data(x.clone());
            let logits = mlp.forward(&mut sess, xv);
            let loss = sess.tape.cross_entropy_logits(logits, targets.clone());
            sess.value(loss).item()
        };

        // Analytic gradients.
        let grads = {
            let mut sess = Session::new(&store);
            let xv = sess.data(x.clone());
            let logits = mlp.forward(&mut sess, xv);
            let loss = sess.tape.cross_entropy_logits(logits, targets.clone());
            sess.grads(loss).1
        };

        // Spot-check a few entries of the first weight matrix.
        let (id, g) = &grads[0];
        let eps = 1e-2f32;
        for i in [0usize, 3, 7] {
            if i >= g.len() { continue; }
            let mut plus = store.clone();
            plus.get_mut(*id).as_mut_slice()[i] += eps;
            let mut minus = store.clone();
            minus.get_mut(*id).as_mut_slice()[i] -= eps;
            let numeric = (loss_of(&plus) - loss_of(&minus)) / (2.0 * eps);
            let a = g.as_slice()[i];
            prop_assert!(
                (a - numeric).abs() < 5e-2 * (1.0 + numeric.abs()),
                "elem {}: analytic {} vs numeric {}", i, a, numeric
            );
        }
    }

    #[test]
    fn adam_minimizes_random_quadratics(seed in any::<u64>(), dim in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let target = trng::randn(&mut rng, 1, dim, 2.0);
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(1, dim));
        let mut opt = Adam::new(0.1);
        let mut last = f32::INFINITY;
        for _ in 0..300 {
            let mut sess = Session::new(&store);
            let wv = sess.param(w);
            let t = sess.data(target.clone());
            let d = sess.tape.sub(wv, t);
            let sq = sess.tape.mul(d, d);
            let loss = sess.tape.sum_all(sq);
            let (lv, grads) = sess.grads(loss);
            opt.step(&mut store, &grads);
            last = lv;
        }
        prop_assert!(last < 1e-2, "quadratic not minimized: {last}");
    }

    #[test]
    fn sage_embeddings_are_unit_rows_on_random_graphs(
        seed in any::<u64>(),
        n in 4usize..20,
        extra in 0usize..20,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_connected_edges(n, extra, &mut rng);
        let mut store = ParamStore::new();
        let sage = GraphSage::new(&mut store, &mut rng, "s", &[4, 6]);
        let mut sess = Session::new(&store);
        let x = sess.data(trng::randn(&mut rng, n, 4, 1.0));
        let h = sage.encode(&mut sess, x, &edges, n, None);
        let hv = sess.value(h);
        prop_assert!(hv.all_finite());
        for r in 0..n {
            let norm: f32 = hv.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-3, "row {r} norm {norm}");
        }
    }

    #[test]
    fn learned_edge_weights_are_renormalized_per_dst(
        seed in any::<u64>(),
        n in 4usize..12,
    ) {
        // With per-dst renormalization, scaling ALL edge weights by a
        // constant must not change the output.
        let mut rng = StdRng::seed_from_u64(seed);
        let edges = random_connected_edges(n, 6, &mut rng);
        let mut store = ParamStore::new();
        let sage = GraphSage::new(&mut store, &mut rng, "s", &[4, 6]);
        let x_t = trng::randn(&mut rng, n, 4, 1.0);
        let w_t = trng::rand_uniform(&mut rng, edges.len(), 1, 0.1, 0.9);

        let run = |scale: f32| {
            let mut sess = Session::new(&store);
            let x = sess.data(x_t.clone());
            let w = sess.data(w_t.scale(scale));
            let h = sage.encode(&mut sess, x, &edges, n, Some(w));
            sess.value(h).clone()
        };
        let a = run(1.0);
        let b = run(0.5);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }
}
