//! # gp-obs — zero-dependency observability for the GraphPrompter stack
//!
//! A process-wide metrics registry with three instrument kinds plus RAII
//! span timers, built on `std` only:
//!
//! * [`Counter`] — monotonically increasing `u64` (hits, evictions, …).
//! * [`Gauge`] — a settable `i64` level (cache residency, workers, …).
//! * [`Histogram`] — fixed log₂-scale buckets over `u64` samples
//!   (latencies in µs, loss in milli-units); tracks count/sum/min/max and
//!   answers quantile queries from the bucket counts.
//! * [`Histogram::span`] — an RAII timer recording elapsed µs on drop.
//!
//! ## Cost model
//!
//! Collection is **off by default**. Every instrument call starts with a
//! single relaxed atomic load ([`enabled`]); while disabled nothing else
//! runs — no clock reads, no locks, no allocation — so instrumented hot
//! paths stay bit-identical and effectively free. [`set_enabled`] turns
//! collection on (`gp --metrics` does this).
//!
//! For builds that must not carry even the atomic load, the `noop` cargo
//! feature compiles [`enabled`] to a literal `false`: every guard and
//! handle body folds away at compile time.
//!
//! ## Usage
//!
//! Instruments are declared as `static` handles — name resolution against
//! the global registry happens once, on first use:
//!
//! ```
//! static HITS: gp_obs::Counter = gp_obs::Counter::new("doc.cache.hits");
//! static LOOKUP: gp_obs::Histogram = gp_obs::Histogram::new("doc.lookup_micros");
//!
//! gp_obs::set_enabled(true);
//! {
//!     let _t = LOOKUP.span();   // records elapsed µs when dropped
//!     HITS.add(1);
//! }
//! let snap = gp_obs::snapshot();
//! assert_eq!(snap.counter("doc.cache.hits"), Some(1));
//! gp_obs::set_enabled(false);
//! ```
//!
//! The registry is global: [`snapshot`] returns every instrument the
//! process has touched, sorted by name, and renders as text or JSON.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds samples `v` with `2^(i-1) ≤ v < 2^i` (the log₂ magnitude).
pub const HISTOGRAM_BUCKETS: usize = 65;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True when metric collection is on. With the `noop` feature this is a
/// compile-time `false` and every instrument call folds away.
#[inline(always)]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turn collection on or off process-wide. No-op under the `noop` feature.
pub fn set_enabled(on: bool) {
    if cfg!(feature = "noop") {
        return;
    }
    ENABLED.store(on, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

// Registry locks recover from poisoning: instruments are process-global
// and shared with request threads that may panic (gp-serve isolates such
// panics per request). Every write under these locks is a single map
// insert or an atomic-cell store, so a poisoned lock never guards torn
// data — metrics must keep flowing after one observer crashes.
#[derive(Default)]
struct Registry {
    counters: Mutex<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<&'static str, Arc<AtomicI64>>>,
    histograms: Mutex<HashMap<&'static str, Arc<Mutex<HistoInner>>>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Reset every registered instrument to zero (counters, gauges,
/// histogram contents). Intended for tests and for `gp --metrics`, which
/// resets before the measured run so the report covers only that run.
pub fn reset() {
    let reg = registry();
    for c in reg.counters.lock().unwrap_or_else(PoisonError::into_inner).values() {
        c.store(0, Ordering::Relaxed);
    }
    for g in reg.gauges.lock().unwrap_or_else(PoisonError::into_inner).values() {
        g.store(0, Ordering::Relaxed);
    }
    for h in reg.histograms.lock().unwrap_or_else(PoisonError::into_inner).values() {
        *h.lock().unwrap_or_else(PoisonError::into_inner) = HistoInner::default();
    }
}

// ---------------------------------------------------------------------------
// Counter
// ---------------------------------------------------------------------------

/// A monotonically increasing event counter. Declare as a `static`; the
/// registry slot is resolved once on first use.
pub struct Counter {
    name: &'static str,
    cell: OnceLock<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter handle named `name` (registered lazily).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn slot(&self) -> &AtomicU64 {
        self.cell.get_or_init(|| {
            Arc::clone(
                registry()
                    .counters
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(self.name)
                    .or_default(),
            )
        })
    }

    /// Add `n` events. Free when collection is disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.slot().fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 when collection never ran).
    pub fn value(&self) -> u64 {
        if cfg!(feature = "noop") {
            return 0;
        }
        self.slot().load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Gauge
// ---------------------------------------------------------------------------

/// A settable level (current cache residency, configured workers, …).
pub struct Gauge {
    name: &'static str,
    cell: OnceLock<Arc<AtomicI64>>,
}

impl Gauge {
    /// A gauge handle named `name` (registered lazily).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn slot(&self) -> &AtomicI64 {
        self.cell.get_or_init(|| {
            Arc::clone(
                registry()
                    .gauges
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(self.name)
                    .or_default(),
            )
        })
    }

    /// Set the level. Free when collection is disabled.
    #[inline]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.slot().store(v, Ordering::Relaxed);
        }
    }

    /// Adjust the level by `delta` (may be negative).
    #[inline]
    pub fn offset(&self, delta: i64) {
        if enabled() {
            self.slot().fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn value(&self) -> i64 {
        if cfg!(feature = "noop") {
            return 0;
        }
        self.slot().load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct HistoInner {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistoInner {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

/// Which log₂ bucket a sample falls into.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// A fixed-bucket log₂-scale histogram over `u64` samples. Latencies are
/// recorded in microseconds by convention (`*_micros` names); other units
/// say so in their name (`*_milli` for ×1000 fixed-point).
pub struct Histogram {
    name: &'static str,
    cell: OnceLock<Arc<Mutex<HistoInner>>>,
}

impl Histogram {
    /// A histogram handle named `name` (registered lazily).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    fn slot(&self) -> &Mutex<HistoInner> {
        self.cell.get_or_init(|| {
            Arc::clone(
                registry()
                    .histograms
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(self.name)
                    .or_insert_with(|| Arc::new(Mutex::new(HistoInner::default()))),
            )
        })
    }

    /// Record one sample. Free when collection is disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !enabled() {
            return;
        }
        let mut h = self.slot().lock().unwrap_or_else(PoisonError::into_inner);
        h.count += 1;
        h.sum = h.sum.saturating_add(v);
        h.min = h.min.min(v);
        h.max = h.max.max(v);
        h.buckets[bucket_index(v)] += 1;
    }

    /// Record an `f64` sample, clamped to `[0, u64::MAX]` and rounded.
    /// Convenient for loss-like values scaled to fixed point.
    #[inline]
    pub fn record_f64(&self, v: f64) {
        if enabled() {
            self.record(if v.is_finite() && v > 0.0 { v.round() as u64 } else { 0 });
        }
    }

    /// Start an RAII timer: elapsed microseconds are recorded when the
    /// guard drops. While collection is disabled no clock is read.
    #[inline]
    pub fn span(&self) -> SpanGuard<'_> {
        SpanGuard {
            histogram: self,
            start: enabled().then(Instant::now),
        }
    }
}

/// RAII timer from [`Histogram::span`]; records elapsed µs on drop.
pub struct SpanGuard<'a> {
    histogram: &'a Histogram,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.record(start.elapsed().as_micros() as u64);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// Point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    /// Instrument name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Log₂ bucket counts; see [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`q` in `[0, 1]`). Coarse by construction: answers are powers of
    /// two, which is plenty for latency triage.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        self.max
    }
}

/// Point-in-time copy of every instrument the process has registered.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, level)` pairs, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram copies, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Level of a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Human-readable report: one line per instrument, sorted by name.
    pub fn to_text(&self) -> String {
        let mut out = String::from("metrics report\n");
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("  (no instruments registered — was collection enabled?)\n");
            return out;
        }
        for (name, v) in &self.counters {
            out.push_str(&format!("  counter    {name:<42} {v}\n"));
        }
        for (name, v) in &self.gauges {
            out.push_str(&format!("  gauge      {name:<42} {v}\n"));
        }
        for h in &self.histograms {
            out.push_str(&format!(
                "  histogram  {:<42} n={} mean={:.1} min={} p50={} p99={} max={}\n",
                h.name,
                h.count,
                h.mean(),
                if h.count == 0 { 0 } else { h.min },
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            ));
        }
        out
    }

    /// JSON report (flat object per instrument kind; buckets omitted —
    /// derived stats carry the signal).
    pub fn to_json(&self) -> String {
        fn push_pairs<T: std::fmt::Display>(out: &mut String, pairs: &[(String, T)]) {
            for (i, (name, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{name}\": {v}"));
            }
        }
        let mut out = String::from("{\n  \"counters\": {");
        push_pairs(&mut out, &self.counters);
        out.push_str("},\n  \"gauges\": {");
        push_pairs(&mut out, &self.gauges);
        out.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.2}, \"min\": {}, \"p50\": {}, \"p99\": {}, \"max\": {}}}",
                h.name,
                h.count,
                h.sum,
                h.mean(),
                if h.count == 0 { 0 } else { h.min },
                h.quantile(0.5),
                h.quantile(0.99),
                h.max
            ));
        }
        out.push_str("}\n}\n");
        out
    }
}

/// Copy every registered instrument, sorted by name. Cheap relative to
/// any measured workload; call at run end (`Engine::metrics_snapshot`,
/// `gp --metrics`).
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(n, v)| (n.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, i64)> = reg
        .gauges
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(n, v)| (n.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    gauges.sort();
    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(n, h)| {
            let h = h.lock().unwrap_or_else(PoisonError::into_inner);
            HistogramSnapshot {
                name: n.to_string(),
                count: h.count,
                sum: h.sum,
                min: if h.count == 0 { 0 } else { h.min },
                max: h.max,
                buckets: h.buckets,
            }
        })
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    MetricsSnapshot {
        counters,
        gauges,
        histograms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry and the enabled flag are process-global and the test
    // harness is multi-threaded: every test uses unique instrument names
    // and serializes on LOCK so one test's set_enabled(false) cannot gate
    // another's collection mid-assertion.
    static LOCK: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn counter_counts_only_while_enabled() {
        let _g = serial();
        static C: Counter = Counter::new("test.obs.counter_gate");
        set_enabled(false);
        C.add(5);
        assert_eq!(C.value(), 0, "disabled collection must not count");
        set_enabled(true);
        C.add(2);
        C.inc();
        assert_eq!(C.value(), 3);
        assert_eq!(snapshot().counter("test.obs.counter_gate"), Some(3));
    }

    #[test]
    fn gauge_set_and_offset() {
        let _g = serial();
        static G: Gauge = Gauge::new("test.obs.gauge");
        set_enabled(true);
        G.set(10);
        G.offset(-3);
        assert_eq!(G.value(), 7);
        assert_eq!(snapshot().gauge("test.obs.gauge"), Some(7));
    }

    #[test]
    fn histogram_buckets_and_stats() {
        static H: Histogram = Histogram::new("test.obs.histo");
        set_enabled(true);
        for v in [0u64, 1, 2, 3, 900, 1000] {
            H.record(v);
        }
        let snap = snapshot();
        let h = snap.histogram("test.obs.histo").expect("registered");
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1906);
        assert!((h.mean() - 1906.0 / 6.0).abs() < 1e-9);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 900,1000 → bucket 10.
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[10], 2);
        // p50 falls in bucket 2 (upper bound 4); p99 in bucket 10 (1024).
        assert_eq!(h.quantile(0.5), 4);
        assert_eq!(h.quantile(0.99), 1024);
    }

    #[test]
    fn span_records_elapsed_micros() {
        static H: Histogram = Histogram::new("test.obs.span");
        set_enabled(true);
        {
            let _t = H.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = snapshot();
        let h = snap.histogram("test.obs.span").expect("registered");
        assert_eq!(h.count, 1);
        assert!(h.max >= 1_000, "2ms sleep must record ≥1000µs, got {}", h.max);
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero() {
        static H: Histogram = Histogram::new("test.obs.empty");
        set_enabled(true);
        let _ = H.span(); // touch so it registers, record nothing…
        drop(H.span());
        // (the drops above DO record ~0µs samples; use a snapshot-level
        // empty histogram instead)
        let empty = HistogramSnapshot {
            name: "e".into(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        };
        assert_eq!(empty.quantile(0.5), 0);
        assert_eq!(empty.mean(), 0.0);
    }

    #[test]
    fn record_f64_clamps_and_rounds() {
        static H: Histogram = Histogram::new("test.obs.f64");
        set_enabled(true);
        H.record_f64(1.6);
        H.record_f64(-5.0);
        H.record_f64(f64::NAN);
        let snap = snapshot();
        let h = snap.histogram("test.obs.f64").expect("registered");
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 2);
    }

    #[test]
    fn text_and_json_reports_include_instruments() {
        static C: Counter = Counter::new("test.obs.report_counter");
        set_enabled(true);
        C.add(4);
        let snap = snapshot();
        let text = snap.to_text();
        assert!(text.contains("test.obs.report_counter"), "{text}");
        let json = snap.to_json();
        assert!(json.contains("\"test.obs.report_counter\": "), "{json}");
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    }

    #[test]
    fn bucket_index_is_log2_magnitude() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }
}
