//! Hand-rolled Rust token scanner.
//!
//! `gp-lint` cannot use `syn` (cargo is offline in the build container and
//! the linter must build before anything else), so this module implements
//! the minimal lexical analysis the rules in [`crate::rules`] need:
//!
//! * strip `//` line comments and (nested) `/* */` block comments;
//! * strip the contents of normal, raw (`r"…"`, `r#"…"#`), byte (`b"…"`)
//!   and raw-byte (`br#"…"#`) string literals and of char/byte-char
//!   literals, while keeping lifetimes (`'a`) intact;
//! * track `#[cfg(test)]` / `#[test]` regions and `mod tests { … }`
//!   blocks so test code is exempt from the rules;
//! * track the current module path for diagnostics;
//! * collect `// gp-lint: allow(<rules>) — <reason>` suppression pragmas
//!   and reject malformed ones (missing reason, unknown shape).
//!
//! Stripping replaces every removed character with a space, so line
//! numbers and intra-line columns of the surviving code are unchanged —
//! rule matches can be reported at their true source position.

/// One suppression pragma, parsed out of a `//` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Pragma {
    /// 1-based line the pragma comment sits on.
    pub line: usize,
    /// Rule ids listed inside `allow(...)`, e.g. `["D1", "R1"]`.
    pub rules: Vec<String>,
    /// True when the comment is the only content on its line, in which
    /// case it applies to the next non-blank code line instead.
    pub own_line: bool,
}

/// A pragma-shaped comment the scanner refused (the reason is mandatory
/// and lexer-verified, so a bare `// gp-lint: allow(D1)` is itself a
/// violation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MalformedPragma {
    /// 1-based line of the offending comment.
    pub line: usize,
    /// Why the pragma was rejected.
    pub why: String,
}

/// Scanner output for one file.
#[derive(Clone, Debug, Default)]
pub struct Scanned {
    /// Stripped source: comments and literal contents blanked to spaces,
    /// newlines preserved, so it has exactly the input's line structure.
    pub code: String,
    /// Per line (0-based index = line - 1): was any part of it inside a
    /// `#[cfg(test)]` / `#[test]` / `mod tests` region?
    pub in_test: Vec<bool>,
    /// Per line: innermost `mod` path at the end of the line (empty at
    /// file scope), e.g. `"tests"` or `"imp::detail"`.
    pub module_path: Vec<String>,
    /// Well-formed suppression pragmas.
    pub pragmas: Vec<Pragma>,
    /// Pragma-shaped comments that failed verification.
    pub malformed: Vec<MalformedPragma>,
}

impl Scanned {
    /// The stripped text of a 1-based line (empty for out-of-range).
    pub fn line(&self, line: usize) -> &str {
        self.code.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }

    /// Is the 1-based line inside test-only code?
    pub fn is_test_line(&self, line: usize) -> bool {
        line >= 1 && self.in_test.get(line - 1).copied().unwrap_or(false)
    }

    /// 1-based lines a pragma for `rule` suppresses. An end-of-line
    /// pragma covers its own line; an own-line pragma covers the next
    /// non-blank code line (blank and comment-only lines are skipped).
    pub fn suppressed_lines(&self, rule: &str) -> Vec<usize> {
        let blank: Vec<bool> = self.code.lines().map(|l| l.trim().is_empty()).collect();
        let mut lines = Vec::new();
        for p in &self.pragmas {
            if !p.rules.iter().any(|r| r == rule) {
                continue;
            }
            if !p.own_line {
                lines.push(p.line);
                continue;
            }
            let mut target = p.line; // 1-based; start at the next line
            while target < blank.len() && blank.get(target).copied().unwrap_or(true) {
                target += 1;
            }
            lines.push(target + 1);
        }
        lines
    }
}

/// Lexer state while walking the raw source.
enum State {
    Code,
    LineComment {
        start_col_blank: bool,
        text: String,
        line: usize,
    },
    BlockComment {
        depth: usize,
    },
    Str,
    RawStr {
        hashes: usize,
    },
    CharLit,
}

/// Scan `source`, producing stripped code plus region/pragma metadata.
/// Never panics on any input (asserted by a fuzz test): unterminated
/// literals and comments simply run to end of file.
pub fn scan(source: &str) -> Scanned {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut state = State::Code;
    let mut pragmas = Vec::new();
    let mut malformed = Vec::new();
    let mut line = 1usize;
    let mut line_had_code = false;
    let mut i = 0usize;

    // Byte-string prefixes make `b"…"`/`br#"…"#` start like identifiers;
    // track whether the previous code char could end an identifier so a
    // quote after `r`/`b`/`br` is recognized as a literal prefix rather
    // than part of a name like `attr"`.
    let mut prev_ident_char = false;

    while i < bytes.len() {
        let c = bytes[i];
        match state {
            State::Code => {
                if c == '/' && bytes.get(i + 1) == Some(&'/') {
                    state = State::LineComment {
                        start_col_blank: !line_had_code,
                        text: String::new(),
                        line,
                    };
                    out.push_str("  ");
                    i += 2;
                    prev_ident_char = false;
                    continue;
                }
                if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    state = State::BlockComment { depth: 1 };
                    out.push_str("  ");
                    i += 2;
                    prev_ident_char = false;
                    continue;
                }
                // Raw / byte string prefixes. Only treat the prefix as a
                // literal opener when it is not glued to a preceding
                // identifier (`hexr"…"` is not a raw string).
                if !prev_ident_char && (c == 'r' || c == 'b') {
                    if let Some((skip, opener)) = raw_or_byte_prefix(&bytes, i) {
                        // Blank the prefix but keep the opening quote, so
                        // stripped output stays quote-balanced (re-scanning
                        // it must be a no-op).
                        for _ in 0..skip - 1 {
                            out.push(' ');
                        }
                        out.push(bytes[i + skip - 1]);
                        i += skip;
                        state = opener;
                        line_had_code = true;
                        prev_ident_char = false;
                        continue;
                    }
                }
                if c == '"' {
                    out.push('"');
                    state = State::Str;
                    i += 1;
                    prev_ident_char = false;
                    line_had_code = true;
                    continue;
                }
                if c == '\'' {
                    // Lifetime (`'a`, `'_`, `'static`) vs char literal.
                    // Consume the whole lifetime identifier so a trailing
                    // `r`/`b` can't be misread as a string prefix.
                    if is_lifetime(&bytes, i) {
                        out.push(c);
                        i += 1;
                        while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                            out.push(bytes[i]);
                            i += 1;
                        }
                        prev_ident_char = true;
                        line_had_code = true;
                        continue;
                    }
                    out.push('\'');
                    state = State::CharLit;
                    i += 1;
                    prev_ident_char = false;
                    line_had_code = true;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                    line_had_code = false;
                } else {
                    out.push(c);
                    if !c.is_whitespace() {
                        line_had_code = true;
                    }
                    prev_ident_char = c.is_alphanumeric() || c == '_';
                }
                i += 1;
            }
            State::LineComment {
                start_col_blank,
                ref mut text,
                line: comment_line,
            } => {
                if c == '\n' {
                    check_pragma(
                        text,
                        comment_line,
                        start_col_blank,
                        &mut pragmas,
                        &mut malformed,
                    );
                    out.push('\n');
                    line += 1;
                    line_had_code = false;
                    state = State::Code;
                } else {
                    text.push(c);
                    out.push(' ');
                }
                i += 1;
            }
            State::BlockComment { ref mut depth } => {
                if c == '/' && bytes.get(i + 1) == Some(&'*') {
                    *depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if c == '*' && bytes.get(i + 1) == Some(&'/') {
                    *depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if *depth == 0 {
                        state = State::Code;
                    }
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                        line_had_code = false;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && i + 1 < bytes.len() {
                    out.push_str("  ");
                    i += 2;
                } else if c == '"' {
                    out.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::RawStr { hashes } => {
                if c == '"' && closes_raw(&bytes, i, hashes) {
                    out.push('"');
                    for _ in 0..hashes {
                        out.push(' ');
                    }
                    i += 1 + hashes;
                    state = State::Code;
                } else {
                    if c == '\n' {
                        out.push('\n');
                        line += 1;
                    } else {
                        out.push(' ');
                    }
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' && i + 1 < bytes.len() {
                    out.push_str("  ");
                    i += 2;
                } else if c == '\'' {
                    out.push('\'');
                    state = State::Code;
                    i += 1;
                } else {
                    if c == '\n' {
                        // Unterminated char literal (or a stray quote in
                        // broken code): fall back to code at the newline
                        // rather than eating the rest of the file.
                        out.push('\n');
                        line += 1;
                        line_had_code = false;
                        state = State::Code;
                    } else {
                        out.push(' ');
                        i += 1;
                        continue;
                    }
                    i += 1;
                }
            }
        }
    }
    // Flush a pragma in a line comment that ends at EOF without newline.
    if let State::LineComment {
        start_col_blank,
        ref text,
        line: comment_line,
    } = state
    {
        check_pragma(
            text,
            comment_line,
            start_col_blank,
            &mut pragmas,
            &mut malformed,
        );
    }

    let (in_test, module_path) = track_regions(&out);
    Scanned {
        code: out,
        in_test,
        module_path,
        pragmas,
        malformed,
    }
}

/// If `bytes[i..]` starts a raw / byte / raw-byte string literal, return
/// `(chars_consumed_by_prefix_and_opening_quote, next_state)`.
fn raw_or_byte_prefix(bytes: &[char], i: usize) -> Option<(usize, State)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    if j == i {
        return None;
    }
    let mut hashes = 0usize;
    if raw {
        while bytes.get(j + hashes) == Some(&'#') {
            hashes += 1;
        }
        j += hashes;
    }
    if bytes.get(j) != Some(&'"') {
        // `r#ident` raw identifiers and plain `b'x'` byte chars land here;
        // byte-char literals are handled by the main loop's quote logic
        // only if we report no match, so check for `b'`.
        if !raw && bytes.get(j) == Some(&'\'') {
            // `b'a'` byte-char literal: consume the `b` and let the char
            // branch handle the quote by reporting a 1-char prefix.
            return Some((j + 1 - i, State::CharLit));
        }
        return None;
    }
    let consumed = j + 1 - i;
    if raw {
        Some((consumed, State::RawStr { hashes }))
    } else {
        Some((consumed, State::Str))
    }
}

/// Does the `"` at `bytes[i]` close a raw string with `hashes` hashes?
fn closes_raw(bytes: &[char], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| bytes.get(i + k) == Some(&'#'))
}

/// Is the `'` at `bytes[i]` a lifetime rather than a char literal?
/// `'a'` → char; `'a,` / `'a>` / `'static` → lifetime. The decider: an
/// identifier follows and the char after it is not `'`.
fn is_lifetime(bytes: &[char], i: usize) -> bool {
    let mut j = i + 1;
    let first = match bytes.get(j) {
        Some(&c) if c.is_alphabetic() || c == '_' => c,
        _ => return false,
    };
    let _ = first;
    while matches!(bytes.get(j), Some(&c) if c.is_alphanumeric() || c == '_') {
        j += 1;
    }
    bytes.get(j) != Some(&'\'')
}

/// Verify a `gp-lint:` comment. Well-formed: `gp-lint: allow(R1, D2) — reason`
/// with a nonempty reason after a `—`/`–`/`-`/`:` separator (or plain
/// whitespace). Anything else that mentions `gp-lint:` is malformed.
fn check_pragma(
    text: &str,
    line: usize,
    own_line: bool,
    pragmas: &mut Vec<Pragma>,
    malformed: &mut Vec<MalformedPragma>,
) {
    let t = text.trim();
    let Some(rest) = t.strip_prefix("gp-lint:") else {
        // Not a pragma at all — but catch near-misses like "gp-lint allow(…)".
        if t.starts_with("gp-lint") {
            malformed.push(MalformedPragma {
                line,
                why: "pragma must start with `gp-lint: allow(`".into(),
            });
        }
        return;
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow(") else {
        malformed.push(MalformedPragma {
            line,
            why: "pragma must start with `gp-lint: allow(`".into(),
        });
        return;
    };
    let Some(close) = rest.find(')') else {
        malformed.push(MalformedPragma {
            line,
            why: "unclosed rule list in `allow(`".into(),
        });
        return;
    };
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        malformed.push(MalformedPragma {
            line,
            why: "empty rule list in `allow()`".into(),
        });
        return;
    }
    // Mandatory reason: strip an optional separator, require substance.
    let mut reason = rest[close + 1..].trim_start();
    for sep in ["—", "–", "-", ":"] {
        if let Some(r) = reason.strip_prefix(sep) {
            reason = r.trim_start();
            break;
        }
    }
    if reason.trim().len() < 3 {
        malformed.push(MalformedPragma {
            line,
            why: format!(
                "pragma for {} is missing its mandatory reason (`// gp-lint: allow({}) — why`)",
                rules.join(","),
                rules.join(",")
            ),
        });
        return;
    }
    pragmas.push(Pragma {
        line,
        rules,
        own_line,
    });
}

/// Walk stripped code, tracking brace depth to label test regions and
/// module paths per line. A region starts at the `{` following a
/// `#[cfg(test)]` / `#[test]` attribute or a `mod tests` header and ends
/// at its matching `}`.
fn track_regions(code: &str) -> (Vec<bool>, Vec<String>) {
    struct Frame {
        test: bool,
        module: Option<String>,
    }
    let chars: Vec<char> = code.chars().collect();
    let mut stack: Vec<Frame> = Vec::new();
    let mut pending_test = false;
    let mut pending_mod: Option<String> = None;
    let mut in_test_lines = Vec::new();
    let mut module_lines = Vec::new();
    let mut line_was_test = false;
    let mut i = 0usize;

    let flush_line = |stack: &Vec<Frame>,
                      line_was_test: bool,
                      in_test_lines: &mut Vec<bool>,
                      module_lines: &mut Vec<String>| {
        let any_test = line_was_test || stack.iter().any(|f| f.test);
        in_test_lines.push(any_test);
        let path: Vec<&str> = stack.iter().filter_map(|f| f.module.as_deref()).collect();
        module_lines.push(path.join("::"));
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                flush_line(&stack, line_was_test, &mut in_test_lines, &mut module_lines);
                line_was_test = stack.iter().any(|f| f.test);
                i += 1;
            }
            '#' if chars.get(i + 1) == Some(&'[') => {
                // Capture the attribute with bracket counting.
                let mut j = i + 2;
                let mut depth = 1usize;
                let mut attr = String::new();
                while j < chars.len() && depth > 0 {
                    match chars[j] {
                        '[' => depth += 1,
                        ']' => depth -= 1,
                        ch => {
                            if depth >= 1 && ch != '\n' {
                                attr.push(ch);
                            }
                            if ch == '\n' {
                                flush_line(
                                    &stack,
                                    line_was_test,
                                    &mut in_test_lines,
                                    &mut module_lines,
                                );
                                line_was_test = stack.iter().any(|f| f.test);
                                attr.push(' ');
                            }
                        }
                    }
                    j += 1;
                }
                if attr_marks_test(&attr) {
                    pending_test = true;
                }
                i = j;
            }
            '{' => {
                stack.push(Frame {
                    test: pending_test || stack.iter().any(|f| f.test),
                    module: pending_mod.take(),
                });
                if pending_test {
                    line_was_test = true;
                }
                pending_test = false;
                i += 1;
            }
            '}' => {
                stack.pop();
                i += 1;
            }
            ';' => {
                // An item ended without a body: pending markers die.
                pending_test = false;
                pending_mod = None;
                i += 1;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while matches!(chars.get(i), Some(&ch) if ch.is_alphanumeric() || ch == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                if word == "mod" {
                    // Grab the module name that follows.
                    let mut j = i;
                    while matches!(chars.get(j), Some(&ch) if ch.is_whitespace()) {
                        j += 1;
                    }
                    let name_start = j;
                    while matches!(chars.get(j), Some(&ch) if ch.is_alphanumeric() || ch == '_') {
                        j += 1;
                    }
                    if j > name_start {
                        let name: String = chars[name_start..j].iter().collect();
                        if name == "tests" || name.starts_with("test_") {
                            pending_test = true;
                        }
                        pending_mod = Some(name);
                    }
                    i = j;
                }
            }
            _ => {
                i += 1;
            }
        }
    }
    flush_line(&stack, line_was_test, &mut in_test_lines, &mut module_lines);
    (in_test_lines, module_lines)
}

/// Does an attribute body (brackets stripped) put the next item in test
/// scope? Matches `test`, `cfg(test)`, `cfg(any(test, …))`,
/// `tokio::test` — any occurrence of the standalone token `test`.
fn attr_marks_test(attr: &str) -> bool {
    let chars: Vec<char> = attr.chars().collect();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i].is_alphanumeric() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let word: String = chars[start..i].iter().collect();
            if word == "test" {
                return true;
            }
        } else {
            i += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_comments_are_blanked() {
        let s = scan("let x = 1; // HashMap::iter()\nlet y = 2;");
        assert!(!s.code.contains("HashMap"));
        assert!(s.code.contains("let x = 1;"));
        assert!(s.code.contains("let y = 2;"));
        assert_eq!(s.code.lines().count(), 2);
    }

    #[test]
    fn nested_block_comments_are_blanked() {
        let s = scan("a /* outer /* inner */ still comment */ b");
        assert!(s.code.contains('a'));
        assert!(s.code.contains('b'));
        assert!(!s.code.contains("comment"));
    }

    #[test]
    fn string_contents_are_blanked_but_quotes_survive() {
        let s = scan("let s = \"partial_cmp // not a comment\"; let t = 1;");
        assert!(!s.code.contains("partial_cmp"));
        assert!(!s.code.contains("not a comment"));
        assert!(s.code.contains("let t = 1;"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let s = scan(r#"let s = "a\"b unwrap() c"; let x = 1;"#);
        assert!(!s.code.contains("unwrap"));
        assert!(s.code.contains("let x = 1;"));
    }

    #[test]
    fn raw_strings_with_hashes_are_blanked() {
        let src = "let s = r#\"thread_rng() \"quoted\" inside\"#; let x = 1;";
        let s = scan(src);
        assert!(!s.code.contains("thread_rng"));
        assert!(s.code.contains("let x = 1;"));
        // Double-hash variant with an embedded `"#`.
        let s2 = scan("let s = r##\"contains \"# inner\"##; panic_free();");
        assert!(!s2.code.contains("inner"));
        assert!(s2.code.contains("panic_free();"));
    }

    #[test]
    fn byte_and_raw_byte_strings_are_blanked() {
        let s = scan("let a = b\"unwrap()\"; let b2 = br#\"expect(\"#; keep();");
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("expect"));
        assert!(s.code.contains("keep();"));
    }

    #[test]
    fn char_literals_are_blanked_lifetimes_survive() {
        let s = scan("fn f<'a>(x: &'a str) -> char { let c: char = '\"'; 'x' }");
        assert!(s.code.contains("'a>"), "{}", s.code);
        assert!(s.code.contains("&'a str"));
        // The quote chars inside the literals are blanked.
        assert!(!s.code.contains("'x'"));
    }

    #[test]
    fn escaped_char_literal_does_not_leak() {
        let s = scan(r"let c = '\''; let d = '\\'; after();");
        assert!(s.code.contains("after();"));
    }

    #[test]
    fn raw_identifiers_are_not_raw_strings() {
        let s = scan("let r#mod = 1; let x = r#mod + 1;");
        assert!(s.code.contains("mod"), "raw identifier must survive");
        assert!(s.code.contains("+ 1;"));
    }

    #[test]
    fn cfg_test_region_is_tracked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let s = scan(src);
        assert!(!s.is_test_line(1));
        assert!(s.is_test_line(4), "body of cfg(test) mod is test code");
        assert!(!s.is_test_line(6), "code after the mod is live again");
    }

    #[test]
    fn test_attribute_marks_next_fn() {
        let src = "#[test]\nfn check() { y.unwrap(); }\nfn live() {}\n";
        let s = scan(src);
        assert!(s.is_test_line(2));
        assert!(!s.is_test_line(3));
    }

    #[test]
    fn cfg_test_on_single_item_does_not_leak_past_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { x(); }\n";
        let s = scan(src);
        assert!(!s.is_test_line(3), "a `;`-terminated item ends the marker");
    }

    #[test]
    fn module_path_is_tracked() {
        let src = "mod outer {\n    mod inner {\n        fn f() {}\n    }\n}\n";
        let s = scan(src);
        assert_eq!(s.module_path[2], "outer::inner");
        assert_eq!(s.module_path[4], "");
    }

    #[test]
    fn well_formed_pragma_is_collected() {
        let src = "// gp-lint: allow(D1, R1) — membership only, order never escapes\nx.iter();\n";
        let s = scan(src);
        assert_eq!(s.pragmas.len(), 1);
        assert_eq!(s.pragmas[0].rules, vec!["D1", "R1"]);
        assert!(s.pragmas[0].own_line);
        assert!(s.malformed.is_empty());
        assert_eq!(s.suppressed_lines("D1"), vec![2]);
        assert_eq!(s.suppressed_lines("R1"), vec![2]);
        assert!(s.suppressed_lines("D2").is_empty());
    }

    #[test]
    fn end_of_line_pragma_covers_its_own_line() {
        let src = "x.iter(); // gp-lint: allow(D1) - lookup only\n";
        let s = scan(src);
        assert_eq!(s.pragmas.len(), 1);
        assert!(!s.pragmas[0].own_line);
        assert_eq!(s.suppressed_lines("D1"), vec![1]);
    }

    #[test]
    fn pragma_without_reason_is_malformed() {
        let s = scan("// gp-lint: allow(D1)\nx.iter();\n");
        assert!(s.pragmas.is_empty());
        assert_eq!(s.malformed.len(), 1);
        assert!(
            s.malformed[0].why.contains("reason"),
            "{}",
            s.malformed[0].why
        );
    }

    #[test]
    fn pragma_with_wrong_shape_is_malformed() {
        for bad in [
            "// gp-lint allow(D1) — forgot the colon",
            "// gp-lint: allow( — no close",
            "// gp-lint: allow() — empty",
            "// gp-lint: deny(D1) — wrong verb",
        ] {
            let s = scan(&format!("{bad}\nx();\n"));
            assert!(s.pragmas.is_empty(), "{bad} must not parse");
            assert_eq!(s.malformed.len(), 1, "{bad} must be malformed");
        }
    }

    #[test]
    fn pragma_inside_string_is_ignored() {
        let s = scan("let x = \"// gp-lint: allow(D1)\";\n");
        assert!(s.pragmas.is_empty());
        assert!(s.malformed.is_empty());
    }

    #[test]
    fn own_line_pragma_skips_blank_lines() {
        let src = "// gp-lint: allow(D4) — diagnostics only\n\n\nInstant::now();\n";
        let s = scan(src);
        assert_eq!(s.suppressed_lines("D4"), vec![4]);
    }

    #[test]
    fn stripping_preserves_line_count_and_positions() {
        let src = "a\n/* x\ny */\nb \"s\ntr\" c\n";
        let s = scan(src);
        assert_eq!(s.code.lines().count(), src.lines().count());
        assert_eq!(s.line(1), "a");
        assert!(s.line(4).starts_with('b'));
    }

    /// Scanning is idempotent: stripped output re-scanned strips to
    /// itself (strings keep their quotes, so a second pass sees empty
    /// literals and leaves them alone).
    #[test]
    fn scan_is_idempotent_on_real_source() {
        let src = include_str!("scanner.rs");
        let once = scan(src);
        let twice = scan(&once.code);
        assert_eq!(once.code, twice.code);
        assert_eq!(once.in_test, twice.in_test);
    }

    /// Deterministic fuzz (offline mirror of tests/proptests.rs): token
    /// soup never panics and scanning is idempotent.
    #[test]
    fn fuzz_token_soup_never_panics_and_is_idempotent() {
        let atoms = [
            "\"",
            "'",
            "\\",
            "r#\"",
            "\"#",
            "//",
            "/*",
            "*/",
            "\n",
            "{",
            "}",
            ";",
            "#[cfg(test)]",
            "mod tests",
            "b\"",
            "br##\"",
            "x",
            " ",
            "'a",
            "gp-lint: allow(D1) — r",
            "r#ident",
            "'\\''",
            "ün",
        ];
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let len = (rng() % 40) as usize;
            let mut src = String::new();
            for _ in 0..len {
                src.push_str(atoms[(rng() % atoms.len() as u64) as usize]);
            }
            let once = scan(&src);
            let twice = scan(&once.code);
            assert_eq!(once.code, twice.code, "idempotence failed on {src:?}");
        }
    }
}
