//! **gp-lint** — GraphPrompter's zero-dependency determinism &
//! robustness linter.
//!
//! The workspace promises bit-identical results across runs and thread
//! counts (prompt scores Eq. 7, class votes Eq. 8, `WorkerPool`
//! fixed-order reduction). That promise dies quietly: one
//! `HashMap::iter()` feeding a float accumulation, one
//! `partial_cmp(..).unwrap_or(Equal)` comparator, one `thread_rng()`,
//! and runs stop reproducing with no test failing. `gp-lint` walks
//! every `.rs` file with a hand-rolled token scanner (no `syn` — the
//! build container has no network, so the linter depends on nothing)
//! and enforces the invariants mechanically; see [`rules`] for the
//! rule-by-rule rationale and [`baseline`] for the R1 ratchet.
//!
//! Entry points:
//! * [`run_cli`] — what `gp-lint` (and `gp lint`) call: parse args,
//!   lint, return `(report, exit_code)`;
//! * [`runner::run`] — programmatic access to the full [`runner::Outcome`];
//! * [`rules::lint_source`] — lint one in-memory file (what the
//!   fixture-based integration tests use);
//! * [`scanner::scan`] — the raw strip/regions/pragmas pass.
//!
//! Since v2 the linter is **two-pass**: [`facts::extract`] reduces each
//! file to per-function facts (guard live ranges, call sites, blocking
//! operations, metric registrations, discarded `Result`s) and
//! [`graph::analyze`] runs the cross-file concurrency rules (C1
//! lock-order cycles, C2 blocking-under-guard) over the merged fact
//! base. Per-file rules stay in [`rules`].

pub mod baseline;
pub mod facts;
pub mod graph;
pub mod rules;
pub mod runner;
pub mod scanner;

pub use baseline::{Baseline, RatchetReport};
pub use facts::{extract, FileFacts};
pub use graph::{analyze, Analysis};
pub use rules::{classify, lint_source, FileKind, Rule, Violation};
pub use runner::{run, run_cli, Options, Outcome, BASELINE_FILE};
pub use scanner::{scan, Scanned};
