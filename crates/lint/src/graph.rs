//! Pass 2 of the workspace analysis: cross-file rules over the merged
//! fact base from [`crate::facts`].
//!
//! **C1** builds the workspace lock-acquisition-order graph: an edge
//! `A → B` means some function acquires lock `B` while a guard of lock
//! `A` is live — directly, through a condvar re-acquire, or through a
//! call chain (lock sets propagate to callers via a fixpoint over
//! resolved call sites). Any strongly connected component is a
//! potential deadlock and is reported with the full witness chain,
//! one `file:line` per edge.
//!
//! **C2** flags a guard held across a blocking operation: a condvar
//! wait on a *different* lock, socket/file I/O, `JoinHandle::join`,
//! a process wait, a bounded-queue `push`/`pop`, or a call into a
//! function that (transitively) does any of those.
//!
//! Both rules work on *lock identities* (`Owner::field`), so the same
//! mutex reached from different files, methods, or guard helpers is a
//! single node. Resolution is conservative: an unresolved receiver or
//! callee contributes nothing, which keeps C1/C2 free of false
//! positives at the cost of missing exotic shapes.

use std::collections::{HashMap, HashSet};

use crate::facts::{FileFacts, LockRef};
use crate::rules::{Rule, Violation};

/// Result of the cross-file pass.
#[derive(Debug, Default)]
pub struct Analysis {
    pub violations: Vec<Violation>,
    /// C1/C2 findings silenced by a verified pragma.
    pub suppressed: usize,
}

/// Run C1 + C2 over the merged facts of every scanned file.
pub fn analyze(files: &[FileFacts]) -> Analysis {
    let mut out = Analysis::default();

    // -- merged tables -----------------------------------------------------
    // data type → unique lock path (ambiguous data types stay symbolic)
    let mut by_data: HashMap<&str, Vec<String>> = HashMap::new();
    let mut condvar_owners: HashSet<&str> = HashSet::new();
    for f in files {
        for (owner, field, data) in &f.lock_fields {
            by_data
                .entry(data.as_str())
                .or_default()
                .push(format!("{owner}::{field}"));
        }
        for t in &f.condvar_owners {
            condvar_owners.insert(t.as_str());
        }
    }
    let canon = |l: &LockRef| -> String {
        match l {
            LockRef::Path(p) => p.clone(),
            LockRef::Data(d) => match by_data.get(d.as_str()) {
                Some(paths) if paths.len() == 1 => paths[0].clone(),
                _ => format!("guard<{d}>"),
            },
        }
    };

    // fn registry: (impl type or "", name) → flat indices
    let mut flat: Vec<(usize, usize)> = Vec::new(); // (file idx, fn idx)
    let mut methods: HashMap<(String, String), Vec<usize>> = HashMap::new();
    let mut frees: HashMap<(String, String), Vec<usize>> = HashMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.fns.iter().enumerate() {
            let idx = flat.len();
            flat.push((fi, gi));
            match &g.impl_type {
                Some(t) => methods
                    .entry((t.clone(), g.name.clone()))
                    .or_default()
                    .push(idx),
                None => frees
                    .entry((f.crate_name.clone(), g.name.clone()))
                    .or_default()
                    .push(idx),
            }
        }
    }
    let fn_at = |idx: usize| -> &crate::facts::FnFacts {
        let (fi, gi) = flat[idx];
        &files[fi].fns[gi]
    };
    let file_of = |idx: usize| -> &FileFacts { &files[flat[idx].0] };
    let resolve_call = |idx: usize, call: &crate::facts::CallSite| -> Vec<usize> {
        match &call.recv {
            Some(t) => methods
                .get(&(t.clone(), call.name.clone()))
                .cloned()
                .unwrap_or_default(),
            None if !call.method => frees
                .get(&(file_of(idx).crate_name.clone(), call.name.clone()))
                .cloned()
                .unwrap_or_default(),
            None => Vec::new(),
        }
    };
    let queue_op = |call: &crate::facts::CallSite| -> bool {
        call.method
            && matches!(call.name.as_str(), "push" | "pop" | "recv" | "send")
            && call
                .recv
                .as_deref()
                .is_some_and(|t| condvar_owners.contains(t))
    };

    // -- fixpoint: lock sets + blocking bit per function --------------------
    let n = flat.len();
    let mut locks: Vec<HashSet<String>> = vec![HashSet::new(); n];
    let mut blocks: Vec<bool> = vec![false; n];
    for idx in 0..n {
        let g = fn_at(idx);
        for a in &g.acquires {
            locks[idx].insert(canon(&a.lock));
        }
        for w in &g.waits {
            if let Some(t) = &w.target {
                locks[idx].insert(canon(t));
            }
            blocks[idx] = true;
        }
        if !g.blocks.is_empty() {
            blocks[idx] = true;
        }
        if g.calls.iter().any(queue_op) {
            blocks[idx] = true;
        }
    }
    loop {
        let mut changed = false;
        for idx in 0..n {
            for call in &fn_at(idx).calls {
                for callee in resolve_call(idx, call) {
                    if callee == idx {
                        continue;
                    }
                    if !blocks[idx] && blocks[callee] {
                        blocks[idx] = true;
                        changed = true;
                    }
                    let add: Vec<String> = locks[callee]
                        .iter()
                        .filter(|l| !locks[idx].contains(*l))
                        .cloned()
                        .collect();
                    if !add.is_empty() {
                        changed = true;
                        locks[idx].extend(add);
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // -- C1: order edges -----------------------------------------------------
    #[derive(Clone)]
    struct Edge {
        to: String,
        file: String,
        line: usize,
        why: String,
    }
    let mut edges: HashMap<String, Vec<Edge>> = HashMap::new();
    let mut seen_edges: HashSet<(String, String)> = HashSet::new();
    let mut add_edge = |from: String, to: String, file: &str, line: usize, why: String| {
        if seen_edges.insert((from.clone(), to.clone())) {
            edges.entry(from).or_default().push(Edge {
                to,
                file: file.to_string(),
                line,
                why,
            });
        }
    };
    for idx in 0..n {
        let g = fn_at(idx);
        let f = file_of(idx);
        let qual = match &g.impl_type {
            Some(t) => format!("{t}::{}", g.name),
            None => g.name.clone(),
        };
        for a in &g.acquires {
            if a.held.is_empty() {
                continue;
            }
            if f.allow_c1.contains(&a.line) {
                out.suppressed += 1;
                continue;
            }
            let to = canon(&a.lock);
            for h in &a.held {
                add_edge(
                    canon(h),
                    to.clone(),
                    &f.path,
                    a.line,
                    format!("`{qual}` acquires `{to}` while holding it"),
                );
            }
        }
        for w in &g.waits {
            let Some(t) = &w.target else { continue };
            if w.held.is_empty() {
                continue;
            }
            if f.allow_c1.contains(&w.line) {
                out.suppressed += 1;
                continue;
            }
            let to = canon(t);
            for h in &w.held {
                add_edge(
                    canon(h),
                    to.clone(),
                    &f.path,
                    w.line,
                    format!("`{qual}` re-acquires `{to}` from a condvar wait while holding it"),
                );
            }
        }
        for call in &g.calls {
            if call.held.is_empty() {
                continue;
            }
            if f.allow_c1.contains(&call.line) {
                out.suppressed += 1;
                continue;
            }
            let mut callee_locks: Vec<String> = Vec::new();
            for callee in resolve_call(idx, call) {
                callee_locks.extend(locks[callee].iter().cloned());
            }
            callee_locks.sort();
            callee_locks.dedup();
            let target = call
                .recv
                .as_ref()
                .map(|t| format!("{t}::{}", call.name))
                .unwrap_or_else(|| call.name.clone());
            for to in callee_locks {
                for h in &call.held {
                    let from = canon(h);
                    add_edge(
                        from,
                        to.clone(),
                        &f.path,
                        call.line,
                        format!("`{qual}` calls `{target}` (which locks `{to}`) while holding it"),
                    );
                }
            }
        }
    }

    // -- SCC detection (iterative Tarjan) ------------------------------------
    let mut nodes: Vec<String> = edges.keys().cloned().collect();
    for es in edges.values() {
        for e in es {
            nodes.push(e.to.clone());
        }
    }
    nodes.sort();
    nodes.dedup();
    let node_id: HashMap<&str, usize> = nodes.iter().map(|s| s.as_str()).zip(0..).collect();
    let adj: Vec<Vec<usize>> = nodes
        .iter()
        .map(|nm| {
            let mut v: Vec<usize> = edges
                .get(nm)
                .map(|es| es.iter().map(|e| node_id[e.to.as_str()]).collect())
                .unwrap_or_default();
            v.sort();
            v.dedup();
            v
        })
        .collect();
    let sccs = tarjan(&adj);

    for comp in &sccs {
        let is_cycle = comp.len() > 1
            || (comp.len() == 1 && adj[comp[0]].contains(&comp[0]));
        if !is_cycle {
            continue;
        }
        let inside: HashSet<usize> = comp.iter().copied().collect();
        // deterministic witness cycle: from the smallest node, always
        // follow the smallest in-component successor until we loop
        let Some(&start) = comp.iter().min() else {
            continue;
        };
        let mut path = vec![start];
        let mut cur = start;
        loop {
            let next = adj[cur]
                .iter()
                .copied()
                .find(|s| inside.contains(s))
                .unwrap_or(start);
            if let Some(pos) = path.iter().position(|&p| p == next) {
                path.drain(..pos);
                path.push(next);
                break;
            }
            path.push(next);
            cur = next;
        }
        let mut chain = Vec::new();
        let mut witnesses = Vec::new();
        for pair in path.windows(2) {
            let (a, b) = (&nodes[pair[0]], &nodes[pair[1]]);
            chain.push(a.clone());
            if let Some(e) = edges
                .get(a)
                .and_then(|es| es.iter().find(|e| &e.to == b))
            {
                witnesses.push(format!("{} -> {} at {}:{} ({})", a, b, e.file, e.line, e.why));
            }
        }
        if let Some(&last) = path.last() {
            chain.push(nodes[last].clone());
        }
        let (file, line) = edges
            .get(&nodes[path[0]])
            .and_then(|es| es.iter().find(|e| e.to == nodes[path[1]]))
            .map(|e| (e.file.clone(), e.line))
            .unwrap_or_else(|| ("<workspace>".into(), 1));
        out.violations.push(Violation {
            file,
            line,
            rule: Rule::C1,
            message: format!(
                "lock-order cycle {}; witnesses: {}",
                chain.join(" -> "),
                witnesses.join("; ")
            ),
        });
    }

    // -- C2: guard held across a blocking operation --------------------------
    let mut seen_c2: HashSet<(String, usize)> = HashSet::new();
    for idx in 0..n {
        let g = fn_at(idx);
        let f = file_of(idx);
        let qual = match &g.impl_type {
            Some(t) => format!("{t}::{}", g.name),
            None => g.name.clone(),
        };
        let labels = |held: &[LockRef]| -> String {
            held.iter()
                .map(canon)
                .collect::<Vec<_>>()
                .join(", ")
        };
        let mut push_c2 = |line: usize, msg: String, out: &mut Analysis| {
            if f.allow_c2.contains(&line) {
                out.suppressed += 1;
                return;
            }
            if seen_c2.insert((f.path.clone(), line)) {
                out.violations.push(Violation {
                    file: f.path.clone(),
                    line,
                    rule: Rule::C2,
                    message: msg,
                });
            }
        };
        for w in &g.waits {
            if w.held.is_empty() {
                continue;
            }
            let t = w
                .target
                .as_ref()
                .map(canon)
                .unwrap_or_else(|| "another lock".into());
            push_c2(
                w.line,
                format!(
                    "`{qual}` holds guard(s) of `{}` across a condvar wait that re-acquires `{t}` — a slow or lost wakeup stalls every other holder",
                    labels(&w.held)
                ),
                &mut out,
            );
        }
        for b in &g.blocks {
            if b.held.is_empty() {
                continue;
            }
            push_c2(
                b.line,
                format!(
                    "`{qual}` holds guard(s) of `{}` across blocking `{}` — the lock is unavailable for the full I/O latency",
                    labels(&b.held),
                    b.what
                ),
                &mut out,
            );
        }
        for call in &g.calls {
            if call.held.is_empty() {
                continue;
            }
            let target = call
                .recv
                .as_ref()
                .map(|t| format!("{t}::{}", call.name))
                .unwrap_or_else(|| call.name.clone());
            let blocking_callee = resolve_call(idx, call)
                .into_iter()
                .any(|c| blocks[c]);
            if blocking_callee || queue_op(call) {
                push_c2(
                    call.line,
                    format!(
                        "`{qual}` holds guard(s) of `{}` across a call to `{target}`, which performs blocking operations",
                        labels(&call.held)
                    ),
                    &mut out,
                );
            }
        }
    }

    out.violations
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Iterative Tarjan SCC over an adjacency list; returns components.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<usize>> = Vec::new();
    // explicit DFS frames: (node, child position)
    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut frames: Vec<(usize, usize)> = vec![(root, 0)];
        while let Some(&mut (v, ref mut ci)) = frames.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < adj[v].len() {
                let w = adj[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
                continue;
            }
            // v is done
            frames.pop();
            if let Some(&(p, _)) = frames.last() {
                low[p] = low[p].min(low[v]);
            }
            if low[v] == index[v] {
                let mut comp = Vec::new();
                while let Some(w) = stack.pop() {
                    on_stack[w] = false;
                    comp.push(w);
                    if w == v {
                        break;
                    }
                }
                comp.sort();
                comps.push(comp);
            }
        }
    }
    comps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::facts::extract;
    use crate::rules::FileKind;

    fn an(sources: &[(&str, &str)]) -> Analysis {
        let files: Vec<FileFacts> = sources
            .iter()
            .map(|(p, s)| extract(p, "x", FileKind::Lib, s))
            .collect();
        analyze(&files)
    }

    #[test]
    fn cross_file_lock_cycle_detected_with_witnesses() {
        let a = "pub struct Pair { pub a: Mutex<u32>, pub b: Mutex<u32> }\n\
                 impl Pair { pub fn ab(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); drop(h); drop(g); } }\n";
        let b = "impl Pair { pub fn ba(&self) { let h = self.b.lock().unwrap(); let g = self.a.lock().unwrap(); drop(g); drop(h); } }\n";
        let out = an(&[("crates/x/src/a.rs", a), ("crates/x/src/b.rs", b)]);
        let c1: Vec<_> = out
            .violations
            .iter()
            .filter(|v| matches!(v.rule, Rule::C1))
            .collect();
        assert_eq!(c1.len(), 1, "{:?}", out.violations);
        let msg = &c1[0].message;
        assert!(msg.contains("Pair::a"), "{msg}");
        assert!(msg.contains("Pair::b"), "{msg}");
        assert!(msg.contains("crates/x/src/a.rs:2"), "{msg}");
        assert!(msg.contains("crates/x/src/b.rs:1"), "{msg}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let a = "pub struct Pair { pub a: Mutex<u32>, pub b: Mutex<u32> }\n\
                 impl Pair {\n\
                   pub fn one(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); drop(h); drop(g); }\n\
                   pub fn two(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); drop(h); drop(g); }\n\
                 }\n";
        let out = an(&[("crates/x/src/a.rs", a)]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }

    #[test]
    fn wait_holding_second_guard_is_c2() {
        let s = "struct W { m: Mutex<u32>, aux: Mutex<u32>, cv: Condvar }\n\
                 impl W { fn bad(&self) { let a = self.aux.lock().unwrap(); let mut g = self.m.lock().unwrap(); g = self.cv.wait(g).unwrap(); drop(g); drop(a); } }\n";
        let out = an(&[("crates/x/src/w.rs", s)]);
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v.rule, Rule::C2) && v.message.contains("condvar wait")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn transitive_blocking_call_under_guard_is_c2() {
        let s = "struct S { m: Mutex<u32> }\n\
                 struct D { f: File }\n\
                 impl D { fn flush_disk(&mut self) { self.f.sync_all().unwrap(); } }\n\
                 impl S { fn bad(&self, d: &mut D) { let g = self.m.lock().unwrap(); d.flush_disk(); drop(g); } }\n";
        let out = an(&[("crates/x/src/s.rs", s)]);
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v.rule, Rule::C2) && v.message.contains("flush_disk")),
            "{:?}",
            out.violations
        );
    }

    #[test]
    fn pragma_suppresses_and_counts() {
        let s = "struct W { m: Mutex<u32>, aux: Mutex<u32>, cv: Condvar }\n\
                 impl W { fn bad(&self) { let a = self.aux.lock().unwrap();\n\
                 let mut g = self.m.lock().unwrap();\n\
                 // gp-lint: allow(C2) - wakeup bounded by the batch window, holder count is 1\n\
                 g = self.cv.wait(g).unwrap(); drop(g); drop(a); } }\n";
        let out = an(&[("crates/x/src/w.rs", s)]);
        assert!(!out.violations.iter().any(|v| matches!(v.rule, Rule::C2)));
        assert!(out.suppressed >= 1);
    }

    #[test]
    fn coalescer_shape_is_clean() {
        // leader/follower: guard moves into helpers and waits must not
        // produce C1/C2 — mirrors crates/serve/src/coalesce.rs
        let s = "struct C { state: Mutex<St>, cv: Condvar }\n\
                 impl C {\n\
                   fn lock(&self) -> MutexGuard<'_, St> { self.state.lock().unwrap() }\n\
                   fn wait<'a>(&'a self, g: MutexGuard<'a, St>, d: Duration) -> MutexGuard<'a, St> { self.cv.wait_timeout(g, d).unwrap().0 }\n\
                   fn submit(&self) { let st = self.lock(); self.lead(st); }\n\
                   fn lead(&self, mut st: MutexGuard<'_, St>) { st = self.wait(st, D); drop(st); let mut st = self.lock(); drop(st); }\n\
                 }\n";
        let out = an(&[("crates/x/src/c.rs", s)]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
    }
}
