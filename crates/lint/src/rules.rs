//! The determinism & robustness rules gp-lint enforces.
//!
//! GraphPrompter's pipeline is specified to be **bit-identical across
//! runs and thread counts**: prompt scores (Eq. 7) and class votes
//! (Eq. 8) are ranked with total comparators, the `WorkerPool` reduces
//! partial results in a fixed order, and every cache dump is sorted
//! before it can feed a downstream computation. Each rule below guards
//! one way that property has historically been lost in this codebase:
//!
//! * **D1 — no hash-order iteration in result-affecting crates.**
//!   `std::collections::HashMap`/`HashSet` use a per-instance random
//!   hasher seed, so `.iter()`/`.keys()`/`.values()`/`.drain()` (and
//!   `for .. in &map`) yield a different order every process. If that
//!   order reaches an accumulation (e.g. the augmenter's label-embedding
//!   sums) the floating-point result changes run to run even though the
//!   math is "the same". Result-affecting crates
//!   ([`RESULT_AFFECTING_CRATES`]) must iterate sorted snapshots
//!   (`AnyCache::sorted_iter`, `BTreeMap`) or carry a
//!   `// gp-lint: allow(D1) — <why order cannot escape>` pragma.
//!
//! * **D2 — no `partial_cmp` in float comparators.** `partial_cmp`
//!   returns `None` for NaN, which `sort_by(|a, b|
//!   a.partial_cmp(b).unwrap())` turns into a panic and
//!   `unwrap_or(Ordering::Equal)` turns into an *order-dependent* sort
//!   (NaN placement then depends on the input permutation — exactly
//!   what Eq. 7/8 ranking must not do). Use `f32::total_cmp` or the
//!   canonicalizing wrappers `gp_tensor::rank_asc`/`rank_desc`, which
//!   are bit-identical to `partial_cmp` on NaN-free data and rank NaN
//!   last otherwise.
//!
//! * **D3 — no unseeded randomness.** `thread_rng()`, `from_entropy()`
//!   and `rand::random()` draw from OS entropy; every run differs.
//!   All stochastic components take an explicit `u64` seed. Tests and
//!   benches are exempt (they already pin seeds by construction or
//!   measure wall time, not results).
//!
//! * **D4 — no wall-clock in result-affecting crates.**
//!   `Instant::now()`/`SystemTime::now()` in library code invites
//!   time-dependent behavior (timeouts, time-keyed caching). Timing
//!   belongs in `gp-obs`, `gp-bench` and binaries; the only sanctioned
//!   library uses are diagnostics fields that never feed a prediction,
//!   each carrying an `allow(D4)` pragma saying so.
//!
//! * **R1 — no `unwrap`/`expect`/`panic!`/`unreachable!` in library
//!   code.** Enforced as a **ratchet**, not an absolute ban: the
//!   committed `lint-baseline.toml` records today's per-crate counts;
//!   CI fails when a count rises and `--update-baseline` rewrites the
//!   file when counts fall. The floor only moves down.
//!
//! * **B1 — no unbounded channel/queue construction in library code.**
//!   `mpsc::channel()` and `VecDeque::new()` have no capacity bound, so
//!   a producer that outruns its consumer turns back-pressure into
//!   unbounded memory growth — the failure mode gp-serve's admission
//!   queue exists to prevent. Bound it (`mpsc::sync_channel(n)`,
//!   `gp_serve::BoundedQueue`), size it (`VecDeque::with_capacity(n)`
//!   plus an explicit cap check), or justify the site with
//!   `// gp-lint: allow(B1) — <why depth is bounded by construction>`.
//!   Ratcheted like R1: `lint-baseline.toml` records today's per-crate
//!   counts and the floor only moves down.
//!
//! * **O1 — no `println!`/`eprintln!` in library crates.** Libraries
//!   report through return values and `gp-obs`; stdout belongs to the
//!   binaries.
//!
//! * **A1 — no `std::arch`/`core::arch` outside the tensor backend.**
//!   Architecture-specific intrinsics live in exactly one place,
//!   `crates/tensor/src/backend`, behind the `ComputeBackend` dispatch
//!   with runtime feature detection and a scalar fallback. SIMD
//!   anywhere else bypasses that detection (an illegal-instruction
//!   trap on older hosts) and forks the numerics outside the
//!   reference-vs-fast tolerance contract.
//!
//! * **C1 — no lock-acquisition-order cycles.** Pass 2 (see
//!   [`crate::graph`]) builds the workspace lock-order graph from the
//!   per-function facts of [`crate::facts`] — an edge when a guard of
//!   lock A is live while lock B is acquired, locks identified by
//!   type+field path — and fails on any strongly connected component,
//!   reporting the full witness chain with file:line per edge. Two
//!   threads taking the same pair of locks in opposite orders is the
//!   one deadlock no test reliably reproduces.
//!
//! * **C2 — no guard held across a blocking operation.** A condvar
//!   wait that re-acquires a *different* lock, socket/file I/O, a
//!   `JoinHandle::join`, or a bounded-queue push/pop under a held
//!   guard turns one slow peer into a stall for every other holder —
//!   the exact shape that would freeze the request coalescer.
//!
//! * **E1 — no discarded `Result` in library code.** `let _ = f()` and
//!   bare `.ok();` erase failures the caller was owed; drain/shutdown
//!   paths that swallow join errors hide worker panics. Ratcheted
//!   per-crate in `lint-baseline.toml` exactly like R1.
//!
//! * **M1 — metric-manifest drift.** Every metric name registered via
//!   `gp-obs` must appear in the committed `METRICS.md` manifest and
//!   vice versa; both drift directions fail so the manifest stays the
//!   trustworthy observability reference.
//!
//! * **P1 — malformed suppression pragma.** `// gp-lint: allow(<rule>)
//!   — <reason>` requires a known rule id and a non-empty reason; a
//!   pragma that cannot be verified is itself an error (never silently
//!   ignored).

use crate::scanner::{scan, Scanned};

/// Crates whose code can change reported numbers: everything upstream
/// of an `EpisodeResult`. `gp-obs`, `gp-bench` and `gp-eval` only
/// observe/aggregate and are exempt from D1/D4.
pub const RESULT_AFFECTING_CRATES: &[&str] = &[
    "gp-core",
    "gp-tensor",
    "gp-nn",
    "gp-graph",
    "gp-datasets",
    "gp-baselines",
];

/// `(crate, module-path prefix)` pairs where D1 is allowed wholesale.
/// Deliberately empty: every real exception is documented at its site
/// with an inline `allow(D1)` pragma, which keeps the reason next to
/// the code it excuses. The mechanism stays so a future module whose
/// *entire purpose* is order-free (e.g. a counting sketch) can opt out
/// without a pragma on every line.
pub const D1_ALLOWED_MODULES: &[(&str, &str)] = &[];

/// Rule identifiers, in report order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Hash-order iteration in a result-affecting crate.
    D1,
    /// `partial_cmp` in a sort/max/min comparator or bare-unwrapped.
    D2,
    /// Unseeded randomness outside tests/benches.
    D3,
    /// Wall-clock reads in a result-affecting library crate.
    D4,
    /// `unwrap`/`expect`/`panic!`/`unreachable!` in library code (ratcheted).
    R1,
    /// Unbounded channel/queue construction in library code (ratcheted).
    B1,
    /// `println!`-family output from a library crate.
    O1,
    /// `std::arch`/`core::arch` outside `crates/tensor/src/backend`.
    A1,
    /// Lock-acquisition-order cycle across the workspace (pass 2).
    C1,
    /// Guard held across a blocking operation (pass 2).
    C2,
    /// Discarded `Result` in library code (ratcheted).
    E1,
    /// Metric name drift between registrations and `METRICS.md`.
    M1,
    /// Malformed or unknown suppression pragma.
    P1,
}

impl Rule {
    /// Stable id used in reports and pragmas.
    pub fn id(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::D3 => "D3",
            Rule::D4 => "D4",
            Rule::R1 => "R1",
            Rule::B1 => "B1",
            Rule::O1 => "O1",
            Rule::A1 => "A1",
            Rule::C1 => "C1",
            Rule::C2 => "C2",
            Rule::E1 => "E1",
            Rule::M1 => "M1",
            Rule::P1 => "P1",
        }
    }

    /// Human category shown before the id, e.g. `determinism[D1]`.
    pub fn category(self) -> &'static str {
        match self {
            Rule::D1 | Rule::D2 | Rule::D3 | Rule::D4 => "determinism",
            Rule::R1 | Rule::B1 => "robustness",
            Rule::C1 | Rule::C2 => "concurrency",
            Rule::E1 => "error-flow",
            Rule::M1 => "observability",
            Rule::O1 => "hygiene",
            Rule::A1 => "isolation",
            Rule::P1 => "pragma",
        }
    }

    /// All rules a pragma may name.
    pub fn suppressible() -> &'static [&'static str] {
        &["D1", "D2", "D3", "D4", "R1", "B1", "O1", "A1", "C1", "C2", "E1", "M1"]
    }

    /// One-line description for `--list-rules`.
    pub fn describe(self) -> &'static str {
        match self {
            Rule::D1 => "no HashMap/HashSet iteration in result-affecting crates",
            Rule::D2 => "no partial_cmp in float comparators; use total_cmp / rank_asc",
            Rule::D3 => "no unseeded randomness (thread_rng/from_entropy/rand::random)",
            Rule::D4 => "no Instant::now/SystemTime::now in result-affecting crates",
            Rule::R1 => "no unwrap/expect/panic!/unreachable! in library code (ratcheted)",
            Rule::B1 => "no unbounded channel/queue construction in library code (ratcheted)",
            Rule::O1 => "no println!/eprintln! in library crates",
            Rule::A1 => "no std::arch/core::arch outside crates/tensor/src/backend",
            Rule::C1 => "no lock-acquisition-order cycles across the workspace",
            Rule::C2 => "no guard held across a blocking operation (wait/IO/join/queue)",
            Rule::E1 => "no discarded Result in library code (let _ = / bare .ok();) (ratcheted)",
            Rule::M1 => "every registered metric name appears in METRICS.md and vice versa",
            Rule::P1 => "suppression pragmas must name known rules and give a reason",
        }
    }
}

/// How a file participates in the build, derived from its path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileKind {
    /// Library code — all rules apply.
    Lib,
    /// Binary target (`src/main.rs`, `src/bin/*`): D4/R1/O1 waived.
    Bin,
    /// Tests, benches, examples: only P1 applies.
    Harness,
}

/// Classify a repo-relative path.
pub fn classify(path: &str) -> FileKind {
    let p = path.replace('\\', "/");
    if p.contains("/tests/")
        || p.contains("/benches/")
        || p.contains("/examples/")
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/")
    {
        return FileKind::Harness;
    }
    if p.contains("/src/bin/")
        || p.starts_with("src/bin/")
        || p.ends_with("/src/main.rs")
        || p == "src/main.rs"
    {
        return FileKind::Bin;
    }
    FileKind::Lib
}

/// One finding at a source position.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Repo-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// What happened and what to do instead.
    pub message: String,
}

impl Violation {
    /// Stable report line: `file:line: category[ID] message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}[{}] {}",
            self.file,
            self.line,
            self.rule.category(),
            self.rule.id(),
            self.message
        )
    }
}

/// Everything the rules found in one file.
#[derive(Clone, Debug, Default)]
pub struct FileReport {
    /// Hard violations (D1–D4, O1, P1) — each one fails `--check`.
    pub violations: Vec<Violation>,
    /// R1 sites, reported only when the crate exceeds its baseline.
    pub r1_sites: Vec<Violation>,
    /// B1 sites (unbounded channel/queue), ratcheted like R1.
    pub b1_sites: Vec<Violation>,
    /// E1 sites (discarded `Result`), ratcheted like R1.
    pub e1_sites: Vec<Violation>,
    /// Sites silenced by a verified pragma (for `--json` stats).
    pub suppressed: usize,
}

/// Lint one file's source. `path` is used only for labeling; the
/// walker (see [`crate::runner`]) decides which paths get here.
pub fn lint_source(path: &str, crate_name: &str, kind: FileKind, source: &str) -> FileReport {
    let sc = scan(source);
    let mut rep = FileReport::default();

    // P1 first — a broken pragma must never silently un-suppress.
    for m in &sc.malformed {
        rep.violations.push(Violation {
            file: path.to_string(),
            line: m.line,
            rule: Rule::P1,
            message: m.why.clone(),
        });
    }
    for p in &sc.pragmas {
        for r in &p.rules {
            if !Rule::suppressible().contains(&r.as_str()) {
                rep.violations.push(Violation {
                    file: path.to_string(),
                    line: p.line,
                    rule: Rule::P1,
                    message: format!("pragma names unknown rule `{r}`"),
                });
            }
        }
    }
    if kind == FileKind::Harness {
        // Test/bench harnesses pin their own seeds and may panic freely;
        // only pragma hygiene applies there.
        return rep;
    }

    let chars: Vec<char> = sc.code.chars().collect();
    let lines = line_index(&chars);
    let words = collect_words(&chars);
    let result_affecting = RESULT_AFFECTING_CRATES.contains(&crate_name);

    let push = |rep: &mut FileReport, rule: Rule, line: usize, msg: String| {
        if sc.is_test_line(line) {
            return;
        }
        if is_suppressed(&sc, rule, line) {
            rep.suppressed += 1;
            return;
        }
        let v = Violation {
            file: path.to_string(),
            line,
            rule,
            message: msg,
        };
        if rule == Rule::R1 {
            rep.r1_sites.push(v);
        } else if rule == Rule::B1 {
            rep.b1_sites.push(v);
        } else if rule == Rule::E1 {
            rep.e1_sites.push(v);
        } else {
            rep.violations.push(v);
        }
    };

    if result_affecting && !d1_module_allowed(crate_name, &sc, &lines) {
        for (line, recv) in d1_hits(&chars, &lines, &words) {
            if d1_line_allowed(crate_name, &sc, line) {
                continue;
            }
            push(
                &mut rep,
                Rule::D1,
                line,
                format!(
                    "iteration over hash-ordered `{recv}` — order varies per process; \
                     sort first (AnyCache::sorted_iter, BTreeMap) or justify with \
                     `// gp-lint: allow(D1) — <reason>`"
                ),
            );
        }
    }
    for line in d2_hits(&chars, &lines, &words) {
        push(
            &mut rep,
            Rule::D2,
            line,
            "partial_cmp in a comparator (or bare-unwrapped): NaN makes the order \
             input-dependent or panics; use f32::total_cmp or gp_tensor::rank_asc/rank_desc"
                .to_string(),
        );
    }
    for (line, tok) in d3_hits(&chars, &lines, &words) {
        push(
            &mut rep,
            Rule::D3,
            line,
            format!("`{tok}` draws OS entropy — take an explicit u64 seed instead"),
        );
    }
    if result_affecting && kind == FileKind::Lib {
        for (line, tok) in d4_hits(&chars, &lines, &words) {
            push(
                &mut rep,
                Rule::D4,
                line,
                format!(
                    "`{tok}` in a result-affecting crate — move timing to gp-obs/gp-bench \
                     or justify with `// gp-lint: allow(D4) — <reason>`"
                ),
            );
        }
    }
    // A1 applies to libraries AND binaries (only the harness is exempt):
    // intrinsics in a bin would dodge runtime feature detection just as
    // badly. The backend module is the one sanctioned home.
    if kind != FileKind::Harness
        && !path
            .replace('\\', "/")
            .contains("crates/tensor/src/backend")
    {
        for (line, tok) in a1_hits(&chars, &lines, &words) {
            push(
                &mut rep,
                Rule::A1,
                line,
                format!(
                    "`{tok}` outside crates/tensor/src/backend — route SIMD through the \
                     gp_tensor ComputeBackend (runtime feature detection + scalar fallback) \
                     or justify with `// gp-lint: allow(A1) — <reason>`"
                ),
            );
        }
    }
    if kind == FileKind::Lib {
        for (line, tok) in r1_hits(&chars, &lines, &words) {
            push(
                &mut rep,
                Rule::R1,
                line,
                format!("`{tok}` in library code — return a Result or restructure"),
            );
        }
        for (line, tok) in o1_hits(&chars, &lines, &words) {
            push(
                &mut rep,
                Rule::O1,
                line,
                format!("`{tok}` from a library crate — report through gp-obs or return values"),
            );
        }
        for (line, tok) in b1_hits(&chars, &lines, &words) {
            push(
                &mut rep,
                Rule::B1,
                line,
                format!(
                    "`{tok}` has no capacity bound — use mpsc::sync_channel / \
                     gp_serve::BoundedQueue / VecDeque::with_capacity, or justify with \
                     `// gp-lint: allow(B1) — <reason>`"
                ),
            );
        }
        for d in crate::facts::find_discards(&sc) {
            push(
                &mut rep,
                Rule::E1,
                d.line,
                format!(
                    "`{}` discards a fallible result — handle the error, count it into \
                     an error counter, or justify with `// gp-lint: allow(E1) — <reason>`",
                    d.what
                ),
            );
        }
    }
    // Per-file stability: detectors run rule-by-rule, so line order
    // needs restoring before anything downstream sees the report.
    rep.violations
        .sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    rep.r1_sites.sort_by_key(|v| v.line);
    rep.b1_sites.sort_by_key(|v| v.line);
    rep.e1_sites.sort_by_key(|v| v.line);
    rep
}

fn is_suppressed(sc: &Scanned, rule: Rule, line: usize) -> bool {
    sc.suppressed_lines(rule.id()).contains(&line)
}

/// Whole-module D1 allowlist: true when *every* line's module path in
/// this file starts with an allowlisted prefix for this crate. (With
/// the table empty this is always false; kept for the documented
/// opt-out mechanism.)
fn d1_module_allowed(crate_name: &str, sc: &Scanned, _lines: &[usize]) -> bool {
    let prefixes: Vec<&str> = D1_ALLOWED_MODULES
        .iter()
        .filter(|(c, _)| *c == crate_name)
        .map(|(_, m)| *m)
        .collect();
    if prefixes.is_empty() {
        return false;
    }
    sc.module_path
        .iter()
        .all(|p| prefixes.iter().any(|pre| p.starts_with(pre)))
}

/// Per-line D1 allowlist check against the module path of `line`.
fn d1_line_allowed(crate_name: &str, sc: &Scanned, line: usize) -> bool {
    let Some(path) = sc.module_path.get(line.saturating_sub(1)) else {
        return false;
    };
    D1_ALLOWED_MODULES
        .iter()
        .any(|(c, m)| *c == crate_name && path.starts_with(m))
}

// ---------------------------------------------------------------------------
// Lexical helpers over stripped code.

/// Per-char 1-based line numbers.
pub(crate) fn line_index(chars: &[char]) -> Vec<usize> {
    let mut out = Vec::with_capacity(chars.len());
    let mut line = 1usize;
    for &c in chars {
        out.push(line);
        if c == '\n' {
            line += 1;
        }
    }
    out
}

/// `(start, end)` index ranges of identifier-ish words.
pub(crate) fn collect_words(chars: &[char]) -> Vec<(usize, usize)> {
    let mut words = Vec::new();
    let mut i = 0usize;
    while i < chars.len() {
        if chars[i].is_alphanumeric() || chars[i] == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            words.push((start, i));
        } else {
            i += 1;
        }
    }
    words
}

pub(crate) fn word_at<'a>(chars: &'a [char], w: (usize, usize)) -> String {
    chars[w.0..w.1].iter().collect::<String>()
}

pub(crate) fn line_of(lines: &[usize], idx: usize) -> usize {
    lines.get(idx).copied().unwrap_or(1)
}

/// Next non-whitespace char at or after `i`.
pub(crate) fn next_nonws(chars: &[char], mut i: usize) -> Option<(usize, char)> {
    while i < chars.len() {
        if !chars[i].is_whitespace() {
            return Some((i, chars[i]));
        }
        i += 1;
    }
    None
}

/// Previous non-whitespace char strictly before `i`.
pub(crate) fn prev_nonws(chars: &[char], i: usize) -> Option<(usize, char)> {
    let mut j = i;
    while j > 0 {
        j -= 1;
        if !chars[j].is_whitespace() {
            return Some((j, chars[j]));
        }
    }
    None
}

/// Identifier ending at (exclusive) `end`, scanned backward.
pub(crate) fn ident_before(chars: &[char], end: usize) -> Option<String> {
    let mut start = end;
    while start > 0 && (chars[start - 1].is_alphanumeric() || chars[start - 1] == '_') {
        start -= 1;
    }
    if start == end {
        None
    } else {
        Some(chars[start..end].iter().collect())
    }
}

// ---------------------------------------------------------------------------
// D1 — hash-order iteration.

const D1_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "retain",
    "into_keys",
    "into_values",
];

/// Identifiers the file binds to a HashMap/HashSet: `name: HashMap<…>`
/// (fields, params, ascriptions, incl. `&`/`&mut` borrows) and
/// `name = HashMap::…` (constructor bindings). Deliberately
/// conservative — a false positive costs one documented pragma; a
/// false negative costs silent nondeterminism.
fn hash_bound_idents(chars: &[char], words: &[(usize, usize)]) -> Vec<String> {
    // Non-whitespace separator chars between two adjacent words.
    let sep = |a: (usize, usize), b: (usize, usize)| -> String {
        chars[a.1..b.0]
            .iter()
            .filter(|c| !c.is_whitespace())
            .collect()
    };
    let mut bound = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let name = word_at(chars, w);
        if name != "HashMap" && name != "HashSet" {
            continue;
        }
        // Step back over `seg::` path qualifiers (`std::collections::`).
        let mut head = wi;
        while head > 0 && sep(words[head - 1], words[head]) == "::" {
            head -= 1;
        }
        if head == 0 {
            continue;
        }
        // `m: Map`, `m: &Map`, `m: &mut Map`, `m = Map::new()`.
        let mut prev = head - 1;
        let mut s = sep(words[prev], words[head]);
        if word_at(chars, words[prev]) == "mut" {
            if prev == 0 {
                continue;
            }
            s = format!("{}{}", sep(words[prev - 1], words[prev]), s);
            prev -= 1;
        }
        let shape_ok = (s.starts_with(':') && !s.starts_with("::"))
            || (s.starts_with('=') && !s.starts_with("=="));
        if !shape_ok {
            continue;
        }
        let ident = word_at(chars, words[prev]);
        if ident == "let" || ident == "mut" || ident.is_empty() {
            continue;
        }
        if !bound.contains(&ident) {
            bound.push(ident);
        }
    }
    bound
}

/// `(line, receiver)` for each hash-ordered iteration site.
fn d1_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<(usize, String)> {
    let bound = hash_bound_idents(chars, words);
    let mut hits = Vec::new();
    if bound.is_empty() {
        return d1_for_loop_hits(chars, lines, words, &bound);
    }
    for &w in words {
        let name = word_at(chars, w);
        if !D1_METHODS.contains(&name.as_str()) {
            continue;
        }
        // Must be a method call: `.name(`.
        let Some((_, prev)) = prev_nonws(chars, w.0) else {
            continue;
        };
        if prev != '.' {
            continue;
        }
        if next_nonws(chars, w.1).map(|(_, c)| c) != Some('(') {
            continue;
        }
        // Receiver identifier just before the dot.
        let Some((dot, _)) = prev_nonws(chars, w.0) else {
            continue;
        };
        let Some(recv) = ident_before(chars, dot).or_else(|| {
            prev_nonws(chars, dot).and_then(|(e, c)| {
                if c.is_alphanumeric() || c == '_' {
                    ident_before(chars, e + 1)
                } else {
                    None
                }
            })
        }) else {
            continue;
        };
        if bound.contains(&recv) {
            hits.push((line_of(lines, w.0), format!("{recv}.{name}()")));
        }
    }
    hits.extend(d1_for_loop_hits(chars, lines, words, &bound));
    hits
}

/// `for pat in [&[mut ]]path.ident {` where `ident` is hash-bound, or
/// the collection literally is `HashMap`/`HashSet` (e.g. a fresh temp).
fn d1_for_loop_hits(
    chars: &[char],
    lines: &[usize],
    words: &[(usize, usize)],
    bound: &[String],
) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    let mut wi = 0usize;
    while wi < words.len() {
        if word_at(chars, words[wi]) != "for" {
            wi += 1;
            continue;
        }
        // Find the matching `in` within the next few words (patterns can
        // be tuples: `for (k, v) in`).
        let mut ji = wi + 1;
        let mut found_in = None;
        while ji < words.len() && ji < wi + 12 {
            if word_at(chars, words[ji]) == "in" {
                found_in = Some(ji);
                break;
            }
            ji += 1;
        }
        let Some(in_i) = found_in else {
            wi += 1;
            continue;
        };
        // The iterated expression: words after `in` up to `{`. If it
        // contains a call `(`, the method rule already covers it.
        let expr_start = words[in_i].1;
        let mut k = expr_start;
        let mut expr = String::new();
        while k < chars.len() && chars[k] != '{' && chars[k] != '\n' && chars[k] != ';' {
            expr.push(chars[k]);
            k += 1;
        }
        if chars.get(k) == Some(&'{') && !expr.contains('(') {
            let last = expr
                .trim()
                .trim_start_matches('&')
                .trim_start_matches("mut ")
                .split('.')
                .next_back()
                .unwrap_or("")
                .trim()
                .to_string();
            if !last.is_empty() && bound.iter().any(|b| *b == last) {
                hits.push((line_of(lines, expr_start), format!("for .. in {last}")));
            }
        }
        wi = in_i + 1;
    }
    hits
}

// ---------------------------------------------------------------------------
// D2 — partial_cmp in comparators.

const D2_SORTERS: &[&str] = &[
    "sort_by(",
    "sort_unstable_by(",
    "max_by(",
    "min_by(",
    "binary_search_by(",
];

fn d2_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<usize> {
    let mut hits = Vec::new();
    for &w in words {
        if word_at(chars, w) != "partial_cmp" {
            continue;
        }
        let line = line_of(lines, w.0);
        // (a) inside a sorting comparator: a sorter call opens within a
        // bounded backward window (closures are short; 250 chars spans
        // any realistic comparator header). The window stops at the
        // nearest statement/block boundary so a standalone partial_cmp
        // that merely *follows* an unrelated sort is not implicated.
        let mut back_start = w.0.saturating_sub(250);
        for j in (back_start..w.0).rev() {
            if matches!(chars[j], ';' | '{' | '}') {
                back_start = j + 1;
                break;
            }
        }
        let window: String = chars[back_start..w.0].iter().collect();
        if D2_SORTERS.iter().any(|s| window.contains(s)) {
            hits.push(line);
            continue;
        }
        // (b) bare `.partial_cmp(..).unwrap()/expect()/unwrap_or(..)`:
        // skip the balanced argument list, then look at the next method.
        let Some((open, '(')) = next_nonws(chars, w.1) else {
            continue;
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < chars.len() {
            match chars[j] {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if j >= chars.len() {
            continue;
        }
        if let Some((dot, '.')) = next_nonws(chars, j + 1) {
            let after: String = chars[dot + 1..(dot + 12).min(chars.len())].iter().collect();
            if after.starts_with("unwrap") || after.starts_with("expect") {
                hits.push(line);
            }
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// D3 — unseeded randomness.

fn d3_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let name = word_at(chars, w);
        match name.as_str() {
            "thread_rng" | "from_entropy" => {
                hits.push((line_of(lines, w.0), format!("{name}()")));
            }
            "random" => {
                // Only `rand::random` — a method called `random` on a
                // seeded generator is fine.
                if wi >= 1
                    && word_at(chars, words[wi - 1]) == "rand"
                    && chars[words[wi - 1].1..w.0]
                        .iter()
                        .collect::<String>()
                        .trim()
                        == "::"
                {
                    hits.push((line_of(lines, w.0), "rand::random()".to_string()));
                }
            }
            _ => {}
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// D4 — wall-clock reads.

fn d4_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let name = word_at(chars, w);
        if name != "Instant" && name != "SystemTime" {
            continue;
        }
        let Some(&next) = words.get(wi + 1) else {
            continue;
        };
        let sep: String = chars[w.1..next.0]
            .iter()
            .collect::<String>()
            .trim()
            .to_string();
        if sep == "::" && word_at(chars, next) == "now" {
            hits.push((line_of(lines, w.0), format!("{name}::now()")));
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// A1 — architecture intrinsics outside the tensor backend module.

fn a1_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let name = word_at(chars, w);
        if name != "std" && name != "core" {
            continue;
        }
        let Some(&next) = words.get(wi + 1) else {
            continue;
        };
        let sep: String = chars[w.1..next.0]
            .iter()
            .collect::<String>()
            .trim()
            .to_string();
        if sep == "::" && word_at(chars, next) == "arch" {
            hits.push((line_of(lines, w.0), format!("{name}::arch")));
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// R1 — panicking constructs in library code.

fn r1_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for &w in words {
        let name = word_at(chars, w);
        match name.as_str() {
            "unwrap" | "expect" => {
                // Method-call shape: `.name(` — excludes unwrap_or,
                // expect_err etc. by word boundary, and bare fn names.
                let is_method = prev_nonws(chars, w.0).map(|(_, c)| c) == Some('.');
                let called = next_nonws(chars, w.1).map(|(_, c)| c) == Some('(');
                if is_method && called {
                    hits.push((line_of(lines, w.0), format!(".{name}()")));
                }
            }
            "panic" | "unreachable" | "todo" | "unimplemented" => {
                if next_nonws(chars, w.1).map(|(_, c)| c) == Some('!') {
                    // `#[should_panic]` never gets here (word boundary),
                    // but `debug_assert!`-style macros with other names
                    // are intentionally not counted.
                    hits.push((line_of(lines, w.0), format!("{name}!")));
                }
            }
            _ => {}
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// B1 — unbounded channel/queue construction.

fn b1_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<(usize, String)> {
    // Non-whitespace separator chars between two adjacent words.
    let sep = |a: (usize, usize), b: (usize, usize)| -> String {
        chars[a.1..b.0]
            .iter()
            .filter(|c| !c.is_whitespace())
            .collect()
    };
    let mut hits = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let name = word_at(chars, w);
        match name.as_str() {
            "channel" => {
                // Only `mpsc::channel(` (incl. turbofish) — `sync_channel`
                // is a different word, and a local fn named `channel`
                // without the mpsc qualifier is not implicated.
                let qualified = wi >= 1
                    && word_at(chars, words[wi - 1]) == "mpsc"
                    && sep(words[wi - 1], w) == "::";
                let invoked = matches!(
                    next_nonws(chars, w.1).map(|(_, c)| c),
                    Some('(') | Some(':')
                );
                if qualified && invoked {
                    hits.push((line_of(lines, w.0), "mpsc::channel()".to_string()));
                }
            }
            "VecDeque" => {
                // `VecDeque::new()` — `with_capacity` signals a conscious
                // size decision and is allowed (pair it with a cap check).
                if let Some(&next) = words.get(wi + 1) {
                    if sep(w, next) == "::"
                        && word_at(chars, next) == "new"
                        && next_nonws(chars, next.1).map(|(_, c)| c) == Some('(')
                    {
                        hits.push((line_of(lines, w.0), "VecDeque::new()".to_string()));
                    }
                }
            }
            _ => {}
        }
    }
    hits
}

// ---------------------------------------------------------------------------
// O1 — stdout/stderr from libraries.

fn o1_hits(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Vec<(usize, String)> {
    let mut hits = Vec::new();
    for &w in words {
        let name = word_at(chars, w);
        if matches!(name.as_str(), "println" | "eprintln" | "print" | "eprint")
            && next_nonws(chars, w.1).map(|(_, c)| c) == Some('!')
        {
            hits.push((line_of(lines, w.0), format!("{name}!")));
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_lib(src: &str) -> FileReport {
        lint_source("x/src/lib.rs", "gp-core", FileKind::Lib, src)
    }

    #[test]
    fn classify_paths() {
        assert_eq!(classify("crates/core/src/selector.rs"), FileKind::Lib);
        assert_eq!(classify("src/bin/gp.rs"), FileKind::Bin);
        assert_eq!(classify("crates/lint/src/main.rs"), FileKind::Bin);
        assert_eq!(classify("tests/pipeline.rs"), FileKind::Harness);
        assert_eq!(
            classify("crates/core/benches/infer_bench.rs"),
            FileKind::Harness
        );
    }

    #[test]
    fn d1_flags_bound_map_iteration() {
        let src = "struct C { entries: std::collections::HashMap<u64, u32> }\n\
                   impl C { fn f(&self) { for x in self.entries.iter() { use_(x); } } }\n";
        let rep = lint_lib(src);
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
        assert_eq!(rep.violations[0].rule, Rule::D1);
        assert_eq!(rep.violations[0].line, 2);
    }

    #[test]
    fn d1_flags_constructor_binding_and_for_loop() {
        let src = "fn f() { let mut m = HashMap::new(); m.insert(1, 2);\n\
                   for (k, v) in &m { sink(k, v); } }\n";
        let rep = lint_lib(src);
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
        assert_eq!(rep.violations[0].rule, Rule::D1);
    }

    #[test]
    fn d1_ignores_vec_iteration_and_other_crates() {
        let src = "fn f(v: &Vec<u32>, m: &HashMap<u32, u32>) { for x in v.iter() { m.get(x); } }\n";
        let rep = lint_lib(src);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        let rep2 = lint_source(
            "crates/obs/src/lib.rs",
            "gp-obs",
            FileKind::Lib,
            "fn f(m: &HashMap<u32, u32>) { for x in m.keys() { sink(x); } }",
        );
        assert!(rep2.violations.is_empty(), "gp-obs is not result-affecting");
    }

    #[test]
    fn d1_pragma_suppresses_with_reason() {
        let src = "fn f(m: &HashMap<u32, u32>) {\n\
                   // gp-lint: allow(D1) — membership only, order never escapes\n\
                   for x in m.keys() { sink(x); } }\n";
        let rep = lint_lib(src);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn d2_flags_partial_cmp_in_sort_and_bare_unwrap() {
        let src = "fn f(v: &mut Vec<f32>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }\n";
        let rep = lint_lib(src);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, Rule::D2);

        let bare = "fn g(a: f32, b: f32) -> std::cmp::Ordering { a.partial_cmp(&b).unwrap() }\n";
        let rep2 = lint_lib(bare);
        assert_eq!(rep2.violations.len(), 1);
        assert_eq!(rep2.violations[0].rule, Rule::D2);
    }

    #[test]
    fn d2_allows_total_cmp_and_standalone_partial_cmp() {
        let src = "fn f(v: &mut Vec<f32>) { v.sort_by(|a, b| a.total_cmp(b)); }\n\
                   fn g(a: f32, b: f32) -> Option<std::cmp::Ordering> { a.partial_cmp(&b) }\n";
        let rep = lint_lib(src);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
    }

    #[test]
    fn d3_flags_entropy_sources_everywhere_but_harness() {
        let src = "fn f() { let mut r = thread_rng(); let x: f32 = rand::random(); let s = StdRng::from_entropy(); }\n";
        let rep = lint_source("crates/obs/src/x.rs", "gp-obs", FileKind::Lib, src);
        assert_eq!(rep.violations.len(), 3, "{:?}", rep.violations);
        assert!(rep.violations.iter().all(|v| v.rule == Rule::D3));
        let harness = lint_source("crates/core/tests/t.rs", "gp-core", FileKind::Harness, src);
        assert!(harness.violations.is_empty());
    }

    #[test]
    fn d3_allows_seeded_random_method() {
        let src = "fn f(rng: &mut StdRng) { let x: f32 = rng.random(); }\n";
        assert!(lint_lib(src).violations.is_empty());
    }

    #[test]
    fn d4_flags_wall_clock_in_result_affecting_lib_only() {
        let src = "fn f() { let t = Instant::now(); let s = SystemTime::now(); }\n";
        let rep = lint_lib(src);
        assert_eq!(rep.violations.len(), 2);
        assert!(rep.violations.iter().all(|v| v.rule == Rule::D4));
        let obs = lint_source("crates/obs/src/l.rs", "gp-obs", FileKind::Lib, src);
        assert!(obs.violations.is_empty(), "gp-obs may read the clock");
        let bin = lint_source("src/bin/gp.rs", "graphprompter", FileKind::Bin, src);
        assert!(bin.violations.is_empty(), "binaries may read the clock");
    }

    #[test]
    fn r1_counts_panicking_constructs_with_word_boundaries() {
        let src = "fn f(o: Option<u32>) -> u32 {\n\
                   let a = o.unwrap();\n\
                   let b = o.expect(\"msg\");\n\
                   let c = o.unwrap_or(3);\n\
                   let d = o.unwrap_or_else(|| 4);\n\
                   if a > b { panic!(\"boom\") } else { unreachable!() }\n\
                   }\n";
        let rep = lint_lib(src);
        assert!(rep.violations.is_empty());
        assert_eq!(rep.r1_sites.len(), 4, "{:?}", rep.r1_sites);
    }

    #[test]
    fn r1_ignores_test_code_and_bins() {
        let src = "#[cfg(test)]\nmod tests { fn t() { None::<u32>.unwrap(); } }\n";
        assert!(lint_lib(src).r1_sites.is_empty());
        let bin = lint_source(
            "src/main.rs",
            "graphprompter",
            FileKind::Bin,
            "fn main() { std::fs::read(\"x\").unwrap(); }",
        );
        assert!(bin.r1_sites.is_empty());
    }

    #[test]
    fn b1_flags_unbounded_channel_and_vecdeque() {
        let src = "fn f() { let (tx, rx) = mpsc::channel::<u32>(); sink(tx, rx);\n\
                   let mut q = VecDeque::new(); q.push_back(1); }\n";
        let rep = lint_lib(src);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert_eq!(rep.b1_sites.len(), 2, "{:?}", rep.b1_sites);
        assert!(rep.b1_sites.iter().all(|v| v.rule == Rule::B1));
        assert_eq!(rep.b1_sites[0].line, 1);
        assert_eq!(rep.b1_sites[1].line, 2);
    }

    #[test]
    fn b1_allows_bounded_constructions() {
        let src = "fn f() { let (tx, rx) = mpsc::sync_channel(8); sink(tx, rx);\n\
                   let q: VecDeque<u32> = VecDeque::with_capacity(8); use_(q); }\n";
        let rep = lint_lib(src);
        assert!(rep.b1_sites.is_empty(), "{:?}", rep.b1_sites);
    }

    #[test]
    fn b1_ignores_harness_bins_and_unqualified_channel() {
        let src = "fn f() { let (tx, rx) = mpsc::channel(); sink(tx, rx); }\n";
        let harness = lint_source(
            "crates/serve/tests/t.rs",
            "gp-serve",
            FileKind::Harness,
            src,
        );
        assert!(harness.b1_sites.is_empty());
        let bin = lint_source("src/bin/gp.rs", "graphprompter", FileKind::Bin, src);
        assert!(bin.b1_sites.is_empty());
        // A fn merely named `channel` with no mpsc qualifier is fine.
        let local = lint_lib("fn f() { let c = channel(); use_(c); }\n");
        assert!(local.b1_sites.is_empty(), "{:?}", local.b1_sites);
    }

    #[test]
    fn b1_pragma_suppresses_with_reason() {
        let src = "fn f() {\n\
                   // gp-lint: allow(B1) — one message per worker, depth bounded by the pool budget\n\
                   let (tx, rx) = mpsc::channel(); sink(tx, rx); }\n";
        let rep = lint_lib(src);
        assert!(rep.b1_sites.is_empty(), "{:?}", rep.b1_sites);
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn o1_flags_println_in_lib_not_bin() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); }\n";
        let rep = lint_lib(src);
        assert_eq!(rep.violations.len(), 2);
        assert!(rep.violations.iter().all(|v| v.rule == Rule::O1));
        let bin = lint_source("src/bin/gp.rs", "graphprompter", FileKind::Bin, src);
        assert!(bin.violations.is_empty());
    }

    #[test]
    fn a1_flags_arch_intrinsics_outside_backend() {
        let src = "use std::arch::x86_64::*;\nfn f() { core::arch::asm!(\"nop\"); }\n";
        let rep = lint_lib(src);
        assert_eq!(rep.violations.len(), 2, "{:?}", rep.violations);
        assert!(rep.violations.iter().all(|v| v.rule == Rule::A1));
        // Binaries are NOT exempt — intrinsics there dodge detection too.
        let bin = lint_source("src/bin/gp.rs", "graphprompter", FileKind::Bin, src);
        assert_eq!(bin.violations.len(), 2, "{:?}", bin.violations);
        // Harness code may poke at intrinsics for test scaffolding.
        let harness = lint_source("tests/x.rs", "graphprompter", FileKind::Harness, src);
        assert!(harness.violations.is_empty(), "{:?}", harness.violations);
    }

    #[test]
    fn a1_exempts_the_tensor_backend_module() {
        let src = "#[cfg(target_arch = \"x86_64\")]\nuse std::arch::x86_64::*;\n";
        for path in [
            "crates/tensor/src/backend/fast.rs",
            "crates/tensor/src/backend/mod.rs",
        ] {
            let rep = lint_source(path, "gp-tensor", FileKind::Lib, src);
            assert!(rep.violations.is_empty(), "{path}: {:?}", rep.violations);
        }
        // The rest of gp-tensor is not exempt.
        let rep = lint_source(
            "crates/tensor/src/tensor.rs",
            "gp-tensor",
            FileKind::Lib,
            src,
        );
        assert_eq!(rep.violations.len(), 1, "{:?}", rep.violations);
        assert_eq!(rep.violations[0].rule, Rule::A1);
    }

    #[test]
    fn a1_is_suppressible_with_a_reason() {
        let src = "// gp-lint: allow(A1) — cpuid probe only, no numerics\n\
                   fn f() { std::arch::x86_64::__cpuid(0); }\n";
        let rep = lint_lib(src);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert_eq!(rep.suppressed, 1);
    }

    #[test]
    fn p1_fires_for_missing_reason_and_unknown_rule() {
        let src = "// gp-lint: allow(D1)\nfn f() {}\n// gp-lint: allow(Z9) — whatever\n";
        let rep = lint_lib(src);
        assert_eq!(rep.violations.len(), 2, "{:?}", rep.violations);
        assert!(rep.violations.iter().all(|v| v.rule == Rule::P1));
    }

    #[test]
    fn p1_applies_even_in_harness_files() {
        let src = "// gp-lint: allow(D1)\nfn t() {}\n";
        let rep = lint_source("tests/x.rs", "graphprompter", FileKind::Harness, src);
        assert_eq!(rep.violations.len(), 1);
        assert_eq!(rep.violations[0].rule, Rule::P1);
    }

    #[test]
    fn rule_mentions_in_comments_and_strings_do_not_fire() {
        let src = "// thread_rng() and partial_cmp and Instant::now()\n\
                   fn f() -> &'static str { \"println! unwrap() HashMap .iter()\" }\n";
        let rep = lint_lib(src);
        assert!(rep.violations.is_empty(), "{:?}", rep.violations);
        assert!(rep.r1_sites.is_empty());
    }

    #[test]
    fn render_is_stable_format() {
        let v = Violation {
            file: "crates/core/src/selector.rs".into(),
            line: 42,
            rule: Rule::D2,
            message: "msg".into(),
        };
        assert_eq!(
            v.render(),
            "crates/core/src/selector.rs:42: determinism[D2] msg"
        );
    }
}
