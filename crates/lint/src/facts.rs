//! Pass 1 of the two-pass workspace analysis: per-function fact
//! extraction on top of the panic-free [`crate::scanner`].
//!
//! The extractor never tries to be a full Rust parser. It walks the
//! position-preserving stripped code from [`scan`] and records a small,
//! conservative set of facts per function:
//!
//! - **lock acquisitions** (`x.lock()`, `x.read()`/`x.write()` on
//!   `RwLock` fields) with the set of guards live at that point,
//! - **condvar waits** (`cv.wait(g)` / `wait_timeout` / `wait_while`)
//!   and which guard they temporarily release,
//! - **blocking operations** (socket/file I/O on resolved receiver
//!   types, zero-arg `.join()`, process waits),
//! - **call sites** with a best-effort receiver type, so pass 2
//!   ([`crate::graph`]) can propagate locks and blocking behaviour
//!   across function and file boundaries,
//! - **struct shape**: which fields are `Mutex`/`RwLock`/`Condvar`,
//!   and every field's normalized type head (for dotted-path receiver
//!   resolution such as `task.job.done.lock()`),
//! - **metric registrations** (`Counter::new("…")` et al., names read
//!   from the *original* source via the scanner's position-preserving
//!   guarantee) and **discarded `Result`s** for the M1/E1 rules.
//!
//! Guard identity is *type + field path* (`Coalescer::state`), never a
//! variable name: two functions in different files that lock the same
//! field produce the same node in the lock-order graph. A guard known
//! only by its data type (a `MutexGuard<'_, State>` parameter) is kept
//! as [`LockRef::Data`] and resolved against the merged workspace
//! lock-field table in pass 2.
//!
//! Everything here is deliberately an under-approximation: temporaries
//! (`self.lock().closed = true`) are not tracked as live guards, moved
//! guards (`drop(g)`, `self.collect(st, …)`, `cv.wait(g)`) die at the
//! call site, and unresolvable receivers contribute no facts. False
//! negatives are acceptable; false positives in C1/C2 are not, because
//! those rules are hard failures.

use std::collections::HashMap;

use crate::rules::{collect_words, line_index, line_of, next_nonws, prev_nonws, word_at, FileKind};
use crate::scanner::{scan, Scanned};

/// Identity of a lock in the order graph.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockRef {
    /// Owner type + field path, e.g. `Coalescer::state`.
    Path(String),
    /// Known only by the guarded data type (e.g. a `MutexGuard<'_,
    /// State>` parameter); pass 2 resolves it to a `Path` when the
    /// workspace has exactly one `Mutex<State>` field.
    Data(String),
}

impl LockRef {
    /// Human-readable name used in reports before pass-2 resolution.
    pub fn label(&self) -> String {
        match self {
            LockRef::Path(p) => p.clone(),
            LockRef::Data(d) => format!("guard<{d}>"),
        }
    }
}

/// A lock acquisition with the guards live at that point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Acquire {
    pub lock: LockRef,
    pub line: usize,
    pub held: Vec<LockRef>,
}

/// A condvar wait: `target` is the lock of the guard handed to the
/// wait (re-acquired on wake), `held` are the *other* live guards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaitSite {
    pub target: Option<LockRef>,
    pub line: usize,
    pub held: Vec<LockRef>,
}

/// A directly blocking operation (I/O, join, process wait).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockSite {
    pub what: String,
    pub line: usize,
    pub held: Vec<LockRef>,
}

/// A call site pass 2 may resolve to a workspace function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Receiver type for method calls (`Some("Coalescer")`), `None`
    /// for plain free-function calls.
    pub recv: Option<String>,
    pub name: String,
    /// True when invoked through a receiver or `Type::` qualifier.
    pub method: bool,
    pub line: usize,
    pub held: Vec<LockRef>,
}

/// Facts for one function body.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnFacts {
    pub impl_type: Option<String>,
    pub name: String,
    pub line: usize,
    pub acquires: Vec<Acquire>,
    pub waits: Vec<WaitSite>,
    pub blocks: Vec<BlockSite>,
    pub calls: Vec<CallSite>,
}

/// A `Counter::new("…")` / `Gauge::new` / `Histogram::new` site.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricReg {
    pub kind: &'static str,
    pub name: String,
    pub line: usize,
}

/// A discarded fallible call: `let _ = f(…);` or a bare `….ok();`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Discard {
    pub line: usize,
    pub what: String,
}

/// Everything pass 1 extracts from one file.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FileFacts {
    pub path: String,
    pub crate_name: String,
    pub fns: Vec<FnFacts>,
    /// `(owner type, field, guarded data-type head)` for `Mutex` /
    /// `RwLock` fields.
    pub lock_fields: Vec<(String, String, String)>,
    /// `(owner type, field, normalized type head)` for every named
    /// struct field (wrappers `Option`/`Arc`/`Box`/`Rc` peeled).
    pub field_types: Vec<(String, String, String)>,
    /// Types that own a `Condvar` field (bounded-queue shape).
    pub condvar_owners: Vec<String>,
    pub metrics: Vec<MetricReg>,
    pub discards: Vec<Discard>,
    /// Lines carrying a verified `allow(C1)` / `allow(C2)` / `allow(M1)`.
    pub allow_c1: Vec<usize>,
    pub allow_c2: Vec<usize>,
    pub allow_m1: Vec<usize>,
}

/// Extract facts from one file. The runner never sends `Harness`
/// files here; test-gated lines inside lib files are dropped per fact.
pub fn extract(path: &str, crate_name: &str, _kind: FileKind, source: &str) -> FileFacts {
    let sc = scan(source);
    let chars: Vec<char> = sc.code.chars().collect();
    let orig: Vec<char> = source.chars().collect();
    let lines = line_index(&chars);
    let words = collect_words(&chars);

    let mut ff = FileFacts {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        allow_c1: sc.suppressed_lines("C1"),
        allow_c2: sc.suppressed_lines("C2"),
        allow_m1: sc.suppressed_lines("M1"),
        ..FileFacts::default()
    };

    let items = collect_items(&chars, &lines, &words);
    for st in &items.structs {
        if sc.is_test_line(st.line) {
            continue;
        }
        parse_struct_fields(&chars, st, &mut ff);
    }

    // Same-file helper classification: `fn lock(&self) -> MutexGuard<…>`
    // bodies that acquire `self.field.lock()` bind that lock for their
    // callers; wait-helpers re-acquire their guard parameter's lock.
    let helpers = classify_helpers(&chars, &items);

    for fd in &items.fns {
        if sc.is_test_line(fd.line) {
            continue;
        }
        ff.fns.push(walk_fn(&chars, &lines, fd, &items, &helpers, &ff));
    }

    ff.metrics = find_metrics(&chars, &orig, &lines, &words, &sc);
    ff.discards = find_discards_impl(&chars, &lines, &words, &sc);
    ff
}

///// E1 sites for [`crate::rules::lint_source`]: discarded `Result`s in
/// the stripped code of an already-scanned file. Suppression pragmas
/// are NOT applied here — the caller counts them so `--json` stats
/// stay honest.
pub fn find_discards(sc: &Scanned) -> Vec<Discard> {
    let chars: Vec<char> = sc.code.chars().collect();
    let lines = line_index(&chars);
    let words = collect_words(&chars);
    find_discards_impl(&chars, &lines, &words, sc)
}

// ---------------------------------------------------------------------------
// item inventory: structs, impls, fns, statics
// ---------------------------------------------------------------------------

struct StructDef {
    name: String,
    line: usize,
    body: (usize, usize),
}

struct ImplDef {
    type_name: String,
    body: (usize, usize),
}

struct FnDef {
    impl_type: Option<String>,
    name: String,
    line: usize,
    body: (usize, usize),
    /// `(param name, normalized type head)` for simple-ident params.
    params: Vec<(String, String)>,
    /// `(param name, guarded data type)` when a param is a guard.
    guard_params: Vec<(String, String)>,
    /// `(param name, data type)` for `&Mutex<D>`-shaped params.
    mutex_params: Vec<(String, String)>,
    /// Raw return-type text between `)` and the body brace.
    ret: String,
}

struct Items {
    structs: Vec<StructDef>,
    impls: Vec<ImplDef>,
    fns: Vec<FnDef>,
    /// module-level `static NAME: Type` heads.
    statics: HashMap<String, String>,
    /// free-function name → return-type head (for `registry().x.lock()`).
    fn_ret: HashMap<String, String>,
}

fn collect_items(chars: &[char], lines: &[usize], words: &[(usize, usize)]) -> Items {
    let mut items = Items {
        structs: Vec::new(),
        impls: Vec::new(),
        fns: Vec::new(),
        statics: HashMap::new(),
        fn_ret: HashMap::new(),
    };
    for &w in words {
        match word_at(chars, w).as_str() {
            "struct" => {
                if let Some(st) = parse_struct(chars, lines, w.1) {
                    items.structs.push(st);
                }
            }
            "impl" => {
                if let Some(im) = parse_impl(chars, w.1) {
                    items.impls.push(im);
                }
            }
            "fn" => {
                if let Some(fd) = parse_fn(chars, lines, w.0, w.1) {
                    items.fns.push(fd);
                }
            }
            "static" => {
                if let Some((name, head)) = parse_static(chars, w.1) {
                    items.statics.insert(name, head);
                }
            }
            _ => {}
        }
    }
    // Attribute each fn to the innermost impl containing it.
    for fd in &mut items.fns {
        let mut best: Option<&ImplDef> = None;
        for im in &items.impls {
            if im.body.0 < fd.body.0 && fd.body.1 <= im.body.1 {
                if best.map(|b| im.body.0 > b.body.0).unwrap_or(true) {
                    best = Some(im);
                }
            }
        }
        fd.impl_type = best.map(|im| im.type_name.clone());
    }
    for fd in &items.fns {
        if fd.impl_type.is_none() {
            if let Some(head) = ret_head(&fd.ret) {
                items.fn_ret.entry(fd.name.clone()).or_insert(head);
            }
        }
    }
    items
}

/// Head of a return-type string (`"-> &'static Registry where …"` →
/// `Registry`).
fn ret_head(ret: &str) -> Option<String> {
    let after = ret.split("->").nth(1)?;
    let after = after.split("where").next().unwrap_or(after);
    resolved_head(&peel_type(after))
}

/// Index just past a balanced `<…>` starting at `chars[i] == '<'`.
/// `->` / `=>` arrows inside (Fn bounds) are not closers.
fn skip_angles(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < chars.len() {
        match chars[i] {
            '<' => depth += 1,
            '>' if i > 0 && (chars[i - 1] == '-' || chars[i - 1] == '=') => {}
            '>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

/// Index of the `}` matching `chars[i] == '{'` (or `len` if unbalanced).
fn matching_brace(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < chars.len() {
        match chars[i] {
            '{' => depth += 1,
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len()
}

fn matching_paren(chars: &[char], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < chars.len() {
        match chars[i] {
            '(' => depth += 1,
            ')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    chars.len()
}

fn read_word(chars: &[char], start: usize) -> (String, usize) {
    let mut j = start;
    while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
        j += 1;
    }
    (chars[start..j].iter().collect(), j)
}

fn parse_struct(chars: &[char], lines: &[usize], after_kw: usize) -> Option<StructDef> {
    let (ni, nc) = next_nonws(chars, after_kw)?;
    if !(nc.is_alphabetic() || nc == '_') {
        return None;
    }
    let (name, mut j) = read_word(chars, ni);
    if let Some((gi, '<')) = next_nonws(chars, j) {
        j = skip_angles(chars, gi);
    }
    // Scan forward to `{` (fields), `(` (tuple struct: skip), or `;`.
    while j < chars.len() {
        match chars[j] {
            '{' => {
                let end = matching_brace(chars, j);
                return Some(StructDef {
                    name,
                    line: line_of(lines, ni),
                    body: (j + 1, end),
                });
            }
            '(' | ';' => return None,
            '<' => j = skip_angles(chars, j),
            _ => j += 1,
        }
    }
    None
}

fn parse_impl(chars: &[char], after_kw: usize) -> Option<ImplDef> {
    let mut j = after_kw;
    if let Some((gi, '<')) = next_nonws(chars, j) {
        j = skip_angles(chars, gi);
    }
    // Words until `{`; the subject type is the path after a `for` if
    // present, else the first path. Keep the last ident of that path.
    let mut current = String::new();
    let mut after_for = false;
    let mut name = String::new();
    while j < chars.len() {
        let c = chars[j];
        if c == '{' {
            let end = matching_brace(chars, j);
            let chosen = if after_for || name.is_empty() {
                &current
            } else {
                &name
            };
            if chosen.is_empty() {
                return None;
            }
            return Some(ImplDef {
                type_name: chosen.clone(),
                body: (j + 1, end),
            });
        } else if c == ';' {
            return None;
        } else if c == '<' {
            j = skip_angles(chars, j);
            continue;
        } else if c.is_alphabetic() || c == '_' {
            let (w, nj) = read_word(chars, j);
            j = nj;
            if w == "for" {
                after_for = true;
                if name.is_empty() {
                    name = current.clone();
                }
                current.clear();
            } else if w != "where" {
                current = w;
                if !after_for {
                    name = current.clone();
                }
            }
            continue;
        }
        j += 1;
    }
    None
}

fn parse_fn(chars: &[char], lines: &[usize], kw_start: usize, after_kw: usize) -> Option<FnDef> {
    let (ni, nc) = next_nonws(chars, after_kw)?;
    if !(nc.is_alphabetic() || nc == '_') {
        return None;
    }
    let (name, mut j) = read_word(chars, ni);
    if let Some((gi, '<')) = next_nonws(chars, j) {
        j = skip_angles(chars, gi);
    }
    let (pi, pc) = next_nonws(chars, j)?;
    if pc != '(' {
        return None;
    }
    let pend = matching_paren(chars, pi);
    // Between `)` and the body `{` (or `;` for a bodyless decl) lies
    // the return type and any where clause.
    let mut k = pend + 1;
    let mut ret = String::new();
    loop {
        if k >= chars.len() {
            return None;
        }
        match chars[k] {
            '{' => break,
            ';' => return None,
            '<' => {
                let nk = skip_angles(chars, k);
                ret.extend(chars[k..nk.min(chars.len())].iter());
                k = nk;
            }
            '(' => {
                let nk = (matching_paren(chars, k) + 1).min(chars.len());
                ret.extend(chars[k..nk].iter());
                k = nk;
            }
            c => {
                ret.push(c);
                k += 1;
            }
        }
    }
    let body_end = matching_brace(chars, k);
    let mut fd = FnDef {
        impl_type: None,
        name,
        line: line_of(lines, kw_start),
        body: (k + 1, body_end),
        params: Vec::new(),
        guard_params: Vec::new(),
        mutex_params: Vec::new(),
        ret,
    };
    parse_params(chars, pi + 1, pend, &mut fd);
    Some(fd)
}

fn parse_params(chars: &[char], start: usize, end: usize, fd: &mut FnDef) {
    for (a, b) in split_top_commas(chars, start, end) {
        let text: String = chars[a..b].iter().collect();
        let text = text.trim();
        if text.is_empty() || text.ends_with("self") {
            continue;
        }
        let Some(colon) = find_top_colon(text) else {
            continue;
        };
        let (pat, ty) = text.split_at(colon);
        let ty = &ty[1..];
        let pat = pat.trim().trim_start_matches("mut ").trim();
        if pat.is_empty() || !pat.chars().all(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let chain = peel_type(ty);
        match chain.first().map(String::as_str) {
            Some(h) if h.ends_with("Guard") => {
                if let Some(data) = chain.get(1) {
                    fd.guard_params.push((pat.to_string(), data.clone()));
                }
            }
            Some("Mutex") | Some("RwLock") => {
                if let Some(data) = chain.get(1) {
                    fd.mutex_params.push((pat.to_string(), data.clone()));
                }
            }
            _ => {}
        }
        if let Some(head) = resolved_head(&chain) {
            fd.params.push((pat.to_string(), head));
        }
    }
}

/// Byte offset of the first `:` at bracket depth 0 that is not part
/// of `::`, or None.
fn find_top_colon(text: &str) -> Option<usize> {
    let cs: Vec<char> = text.chars().collect();
    let mut depth = 0i32;
    let mut i = 0;
    while i < cs.len() {
        match cs[i] {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth -= 1,
            ':' if depth == 0 => {
                if i + 1 < cs.len() && cs[i + 1] == ':' {
                    i += 2;
                    continue;
                }
                if i > 0 && cs[i - 1] == ':' {
                    i += 1;
                    continue;
                }
                return Some(cs[..i].iter().map(|c| c.len_utf8()).sum());
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn split_top_commas(chars: &[char], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut depth = 0i32;
    let mut a = start;
    let mut i = start;
    while i < end.min(chars.len()) {
        match chars[i] {
            '<' | '(' | '[' | '{' => depth += 1,
            '>' if i > 0 && (chars[i - 1] == '-' || chars[i - 1] == '=') => {}
            '>' | ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                spans.push((a, i));
                a = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if a < end {
        spans.push((a, end));
    }
    spans
}

/// Peel a type expression into its head chain, e.g.
/// `&Option<Arc<Mutex<State>>>` → `["Option", "Arc", "Mutex", "State"]`
/// (refs, `mut`, `dyn` and lifetimes stripped; descends only through
/// known containers).
fn peel_type(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    peel_into(text, &mut out, 0);
    out
}

fn peel_into(text: &str, out: &mut Vec<String>, depth: usize) {
    if depth > 8 {
        return;
    }
    let mut t = text.trim();
    loop {
        let before = t;
        t = t.trim_start_matches(['&', ' ']).trim();
        for kw in ["mut ", "dyn ", "impl "] {
            if let Some(rest) = t.strip_prefix(kw) {
                t = rest.trim();
            }
        }
        while t.starts_with('\'') {
            let skip = t[1..]
                .find(|c: char| !(c.is_alphanumeric() || c == '_'))
                .map(|p| p + 1)
                .unwrap_or(t.len());
            t = t[skip..].trim();
        }
        if t == before {
            break;
        }
    }
    let cs: Vec<char> = t.chars().collect();
    let mut head_end = 0;
    let mut seg_start = 0;
    while head_end < cs.len() {
        let c = cs[head_end];
        if c.is_alphanumeric() || c == '_' {
            head_end += 1;
        } else if c == ':' {
            head_end += 1;
            seg_start = head_end;
        } else {
            break;
        }
    }
    if head_end == 0 || seg_start >= head_end {
        return;
    }
    let head: String = cs[seg_start..head_end].iter().collect();
    out.push(head.clone());
    if !matches!(
        head.as_str(),
        "Option"
            | "Arc"
            | "Box"
            | "Rc"
            | "Mutex"
            | "RwLock"
            | "Vec"
            | "MutexGuard"
            | "RwLockReadGuard"
            | "RwLockWriteGuard"
    ) {
        return;
    }
    let Some((gi, '<')) = next_nonws(&cs, head_end) else {
        return;
    };
    let gend = skip_angles(&cs, gi);
    if gend <= gi + 1 {
        return;
    }
    let inner: Vec<char> = cs[gi + 1..gend - 1].to_vec();
    for (a, b) in split_top_commas(&inner, 0, inner.len()) {
        let s: String = inner[a..b].iter().collect();
        let s = s.trim().to_string();
        if !s.is_empty() && !s.starts_with('\'') {
            peel_into(&s, out, depth + 1);
            return;
        }
    }
}

/// First element of the chain that is not a transparent wrapper —
/// the type a dotted field path "lands on".
fn resolved_head(chain: &[String]) -> Option<String> {
    chain
        .iter()
        .find(|h| !matches!(h.as_str(), "Option" | "Arc" | "Box" | "Rc"))
        .cloned()
}

fn parse_struct_fields(chars: &[char], st: &StructDef, ff: &mut FileFacts) {
    for (a, b) in split_top_commas(chars, st.body.0, st.body.1) {
        let text: String = chars[a..b].iter().collect();
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        let Some(colon) = find_top_colon(text) else {
            continue;
        };
        let (pat, ty) = text.split_at(colon);
        let ty = &ty[1..];
        // field name = last word of the pattern side (skips `pub`,
        // `pub(crate)`)
        let name = pat
            .rsplit(|c: char| !(c.is_alphanumeric() || c == '_'))
            .find(|s| !s.is_empty())
            .unwrap_or("")
            .to_string();
        if name.is_empty() || name == "pub" {
            continue;
        }
        let chain = peel_type(ty);
        // first Mutex/RwLock/Condvar reached through wrappers
        let mut idx = 0;
        while idx < chain.len() && matches!(chain[idx].as_str(), "Option" | "Arc" | "Box" | "Rc") {
            idx += 1;
        }
        if idx < chain.len() {
            let h = chain[idx].as_str();
            if h == "Mutex" || h == "RwLock" {
                let data = chain[idx + 1..]
                    .iter()
                    .find(|x| !matches!(x.as_str(), "Option" | "Arc" | "Box" | "Rc"))
                    .cloned()
                    .unwrap_or_else(|| "?".into());
                ff.lock_fields.push((st.name.clone(), name.clone(), data));
            }
            if h == "Condvar" && !ff.condvar_owners.contains(&st.name) {
                ff.condvar_owners.push(st.name.clone());
            }
        }
        if let Some(head) = resolved_head(&chain) {
            ff.field_types.push((st.name.clone(), name, head));
        }
    }
}

fn parse_static(chars: &[char], after_kw: usize) -> Option<(String, String)> {
    let (ni, nc) = next_nonws(chars, after_kw)?;
    if !(nc.is_alphabetic() || nc == '_') {
        return None;
    }
    let (mut name, mut j) = read_word(chars, ni);
    if name == "mut" {
        let (ni2, _) = next_nonws(chars, j)?;
        let (n2, j2) = read_word(chars, ni2);
        name = n2;
        j = j2;
    }
    let (ci, cc) = next_nonws(chars, j)?;
    if cc != ':' {
        return None;
    }
    // type text up to `=` or `;`
    let mut k = ci + 1;
    let mut ty = String::new();
    while k < chars.len() {
        match chars[k] {
            '=' | ';' => break,
            '<' => {
                let nk = skip_angles(chars, k).min(chars.len());
                ty.extend(chars[k..nk].iter());
                k = nk;
            }
            c => {
                ty.push(c);
                k += 1;
            }
        }
    }
    let chain = peel_type(&ty);
    resolved_head(&chain).map(|h| (name, h))
}

// ---------------------------------------------------------------------------
// helper classification
// ---------------------------------------------------------------------------

enum Helper {
    /// Returns a fresh guard of this lock (`fn lock(&self) -> MutexGuard<…>`).
    Guard(LockRef),
    /// Takes a guard param and returns it re-acquired (condvar wait wrapper).
    Wait,
}

type HelperMap = HashMap<(String, String), Helper>;

fn classify_helpers(chars: &[char], items: &Items) -> HelperMap {
    let mut map = HelperMap::new();
    for fd in &items.fns {
        let Some(impl_type) = fd.impl_type.clone() else {
            continue;
        };
        if !fd.ret.contains("Guard") {
            continue;
        }
        let body: String = chars[fd.body.0..fd.body.1.min(chars.len())]
            .iter()
            .collect();
        if !fd.guard_params.is_empty()
            && (body.contains(".wait(") || body.contains(".wait_timeout("))
        {
            map.insert((impl_type, fd.name.clone()), Helper::Wait);
            continue;
        }
        // find `self.<field>.lock(` (or `.read(`/`.write(`) in the body
        if let Some(field) = first_self_lock_field(&body) {
            map.insert(
                (impl_type.clone(), fd.name.clone()),
                Helper::Guard(LockRef::Path(format!("{impl_type}::{field}"))),
            );
        }
    }
    map
}

fn first_self_lock_field(body: &str) -> Option<String> {
    for method in [".lock(", ".read(", ".write("] {
        if let Some(pos) = body.find(method) {
            let head = &body[..pos];
            let field: String = head
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect();
            let rest = head[..head.len() - field.len()].trim_end();
            if rest.ends_with("self.") && !field.is_empty() {
                return Some(field);
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// per-fn body walk
// ---------------------------------------------------------------------------

struct Guard {
    name: String,
    lock: LockRef,
    depth: usize,
}

const IO_TYPES: &[&str] = &[
    "TcpStream",
    "TcpListener",
    "UdpSocket",
    "UnixStream",
    "UnixListener",
    "File",
    "BufReader",
    "BufWriter",
    "Stdin",
    "Stdout",
    "Stderr",
    "ChildStdin",
    "ChildStdout",
];

const IO_METHODS: &[&str] = &[
    "read",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write",
    "write_all",
    "flush",
    "sync_all",
    "sync_data",
    "set_len",
    "accept",
    "connect",
    "recv",
    "recv_from",
    "send",
    "send_to",
];

/// Chained methods that return the guard itself, so a `let` binding
/// through them still names a guard.
const GUARD_CHAIN: &[&str] = &["unwrap", "unwrap_or_else", "expect"];

fn walk_fn(
    chars: &[char],
    lines: &[usize],
    fd: &FnDef,
    items: &Items,
    helpers: &HelperMap,
    ff: &FileFacts,
) -> FnFacts {
    let mut out = FnFacts {
        impl_type: fd.impl_type.clone(),
        name: fd.name.clone(),
        line: fd.line,
        ..FnFacts::default()
    };
    let mut guards: Vec<Guard> = fd
        .guard_params
        .iter()
        .map(|(n, d)| Guard {
            name: n.clone(),
            lock: LockRef::Data(d.clone()),
            depth: 1,
        })
        .collect();
    let mut locals: HashMap<String, String> = fd.params.iter().cloned().collect();
    // a guard variable resolves (for field hops) to its data type
    for (n, d) in &fd.guard_params {
        locals.insert(n.clone(), d.clone());
    }
    let mutex_locals: HashMap<String, String> = fd.mutex_params.iter().cloned().collect();

    let mut depth = 1usize;
    let mut paren = 0usize;
    let mut pending: Option<String> = None;
    let mut stmt_start = true;
    let mut i = fd.body.0;
    let end = fd.body.1.min(chars.len());
    while i < end {
        let c = chars[i];
        match c {
            '{' => {
                depth += 1;
                stmt_start = true;
                pending = None;
                i += 1;
                continue;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                stmt_start = true;
                pending = None;
                i += 1;
                continue;
            }
            ';' => {
                pending = None;
                stmt_start = true;
                i += 1;
                continue;
            }
            '(' => {
                paren += 1;
                stmt_start = false;
                i += 1;
                continue;
            }
            ')' => {
                paren = paren.saturating_sub(1);
                stmt_start = false;
                i += 1;
                continue;
            }
            _ => {}
        }
        if !(c.is_alphanumeric() || c == '_') {
            if !c.is_whitespace() {
                stmt_start = false;
            }
            i += 1;
            continue;
        }
        let (w, wend) = read_word(chars, i);
        let wstart = i;
        let at_stmt = stmt_start;
        stmt_start = false;
        i = wend;
        if w.chars().next().is_some_and(|x| x.is_ascii_digit()) {
            continue;
        }
        match w.as_str() {
            "let" => {
                handle_let(chars, wend, &mut pending, &mut locals, ff, items);
                continue;
            }
            "if" | "else" | "while" | "for" | "loop" | "match" | "return" | "in" | "mut"
            | "ref" | "move" | "as" | "break" | "continue" | "unsafe" | "fn" | "pub"
            | "true" | "false" => continue,
            _ => {}
        }
        // reassignment at statement start: `g = …` rebinds the guard
        if at_stmt && paren == 0 {
            if let Some((ei, '=')) = next_nonws(chars, wend) {
                if chars.get(ei + 1) != Some(&'=') && guards.iter().any(|g| g.name == w) {
                    pending = Some(w.clone());
                    continue;
                }
            }
        }
        let Some((open, '(')) = next_nonws(chars, wend) else {
            continue;
        };
        let close = matching_paren(chars, open);
        let line = line_of(lines, wstart);
        let prev = prev_nonws(chars, wstart).map(|(_, pc)| pc);
        let (recv_path, qualified) = receiver_path(chars, wstart);
        let moved = moved_guards(chars, open, close, &guards);
        let held = held_refs(&guards, &moved);
        let consumes = pending.take();
        let classified = classify_call(CallCx {
            name: &w,
            prev,
            recv_path: &recv_path,
            qualified,
            open,
            close,
            chars,
            moved: &moved,
            guards: &guards,
            locals: &locals,
            mutex_locals: &mutex_locals,
            ff,
            items,
            helpers,
            fd,
        });
        // guards moved by value die at the call site; a rebind in the
        // Wait arm below brings the awaited one back
        if !moved.is_empty() {
            guards.retain(|g| !moved.contains(&g.name));
        }
        match classified {
            Classified::Acquire(lock) => {
                out.acquires.push(Acquire {
                    lock: lock.clone(),
                    line,
                    held,
                });
                // bind only a plain `let g = …lock()[.unwrap()];`
                // statement; chains like `.get(…)` return non-guards
                let chain_ok = guard_chain_ok(chars, close);
                if paren == 0 && chain_ok {
                    if let Some(name) = consumes {
                        if let LockRef::Path(p) = &lock {
                            if let Some((owner, field)) = p.split_once("::") {
                                if let Some((_, _, data)) = ff
                                    .lock_fields
                                    .iter()
                                    .find(|(o, f, _)| o == owner && f == field)
                                {
                                    locals.insert(name.clone(), data.clone());
                                }
                            }
                        }
                        bind_guard(&mut guards, name, lock, depth);
                    }
                } else {
                    pending = consumes;
                }
            }
            Classified::Wait(target) => {
                out.waits.push(WaitSite {
                    target: target.clone(),
                    line,
                    held,
                });
                match (target, consumes) {
                    (Some(t), Some(name)) => bind_guard(&mut guards, name, t, depth),
                    (_, c) => pending = c,
                }
            }
            Classified::Block(what) => {
                out.blocks.push(BlockSite { what, line, held });
                pending = consumes;
            }
            Classified::Call(recv, name, method) => {
                out.calls.push(CallSite {
                    recv,
                    name,
                    method,
                    line,
                    held,
                });
                pending = consumes;
            }
            Classified::Skip => {
                pending = consumes;
            }
        }
        // the walker continues into the argument list naturally
    }
    out
}

/// After an acquisition's closing paren: `;`/`)`/`,`/`?` keep the
/// binding a guard, and so do guard-returning chain methods.
fn guard_chain_ok(chars: &[char], close: usize) -> bool {
    match next_nonws(chars, close + 1) {
        Some((di, '.')) => match next_nonws(chars, di + 1) {
            Some((mi, mc)) if mc.is_alphabetic() || mc == '_' => {
                let (m, _) = read_word(chars, mi);
                GUARD_CHAIN.contains(&m.as_str())
            }
            _ => false,
        },
        Some((_, '?')) | Some((_, ';')) | None => true,
        _ => false,
    }
}

fn bind_guard(guards: &mut Vec<Guard>, name: String, lock: LockRef, depth: usize) {
    if name == "_" {
        return;
    }
    guards.retain(|g| g.name != name);
    guards.push(Guard { name, lock, depth });
}

fn held_refs(guards: &[Guard], moved: &[String]) -> Vec<LockRef> {
    let mut v: Vec<LockRef> = guards
        .iter()
        .filter(|g| !moved.contains(&g.name))
        .map(|g| g.lock.clone())
        .collect();
    v.sort();
    v.dedup();
    v
}

/// Guard names passed by value as a top-level argument in `(open..close)`.
fn moved_guards(chars: &[char], open: usize, close: usize, guards: &[Guard]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = open + 1;
    while i < close.min(chars.len()) {
        let c = chars[i];
        if c.is_alphabetic() || c == '_' {
            let (w, wend) = read_word(chars, i);
            if guards.iter().any(|g| g.name == w) {
                let prev = prev_nonws(chars, i).map(|(_, x)| x);
                let next = next_nonws(chars, wend).map(|(_, x)| x);
                if matches!(prev, Some('(') | Some(','))
                    && matches!(next, Some(',') | Some(')'))
                    && !out.contains(&w)
                {
                    out.push(w);
                }
            }
            i = wend;
            continue;
        }
        if c == '(' {
            // nested call: its args are not top-level arguments here
            i = matching_paren(chars, i) + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Dotted receiver path before a method word, e.g. `["self","state"]`
/// for `self.state.lock(`. A leading free-fn call (`registry().x`)
/// becomes a `ret:<fname>` segment. Returns `(segments, qualifier)`
/// where the qualifier is the `Type::` head of `Type::method(` calls.
fn receiver_path(chars: &[char], word_start: usize) -> (Vec<String>, Option<String>) {
    let mut segs: Vec<String> = Vec::new();
    let mut i = word_start;
    loop {
        let Some((pi, pc)) = prev_nonws(chars, i) else {
            break;
        };
        if pc == '.' {
            let Some((si, sc)) = prev_nonws(chars, pi) else {
                return (Vec::new(), None);
            };
            if sc.is_alphanumeric() || sc == '_' {
                let mut s = si;
                while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
                    s -= 1;
                }
                segs.push(chars[s..=si].iter().collect());
                i = s;
                continue;
            }
            if sc == ')' {
                // `fname(…).field.method(` — resolve via return type
                let mut k = si;
                let mut pdepth = 0i32;
                loop {
                    match chars[k] {
                        ')' => pdepth += 1,
                        '(' => {
                            pdepth -= 1;
                            if pdepth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    if k == 0 {
                        return (Vec::new(), None);
                    }
                    k -= 1;
                }
                let Some((fi, fc)) = prev_nonws(chars, k) else {
                    return (Vec::new(), None);
                };
                if !(fc.is_alphanumeric() || fc == '_') {
                    return (Vec::new(), None);
                }
                let mut s = fi;
                while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
                    s -= 1;
                }
                // only a plain free fn (not a method/path tail)
                if let Some((_, bc)) = prev_nonws(chars, s) {
                    if bc == '.' || bc == ':' {
                        return (Vec::new(), None);
                    }
                }
                let fname: String = chars[s..=fi].iter().collect();
                segs.push(format!("ret:{fname}"));
                break;
            }
            return (Vec::new(), None);
        }
        if pc == ':' {
            // `Type::method(` — read the path head
            let Some((ci, cc)) = prev_nonws(chars, pi) else {
                break;
            };
            if cc != ':' {
                break;
            }
            let Some((si, sc)) = prev_nonws(chars, ci) else {
                break;
            };
            if !(sc.is_alphanumeric() || sc == '_') {
                break;
            }
            let mut s = si;
            while s > 0 && (chars[s - 1].is_alphanumeric() || chars[s - 1] == '_') {
                s -= 1;
            }
            let head: String = chars[s..=si].iter().collect();
            segs.reverse();
            return (segs, Some(head));
        }
        break;
    }
    segs.reverse();
    (segs, None)
}

enum Classified {
    Acquire(LockRef),
    Wait(Option<LockRef>),
    Block(String),
    Call(Option<String>, String, bool),
    Skip,
}

struct CallCx<'a> {
    name: &'a str,
    prev: Option<char>,
    recv_path: &'a [String],
    qualified: Option<String>,
    open: usize,
    close: usize,
    chars: &'a [char],
    moved: &'a [String],
    guards: &'a [Guard],
    locals: &'a HashMap<String, String>,
    mutex_locals: &'a HashMap<String, String>,
    ff: &'a FileFacts,
    items: &'a Items,
    helpers: &'a HelperMap,
    fd: &'a FnDef,
}

fn classify_call(cx: CallCx<'_>) -> Classified {
    let is_method = cx.prev == Some('.');
    let args_empty = matches!(next_nonws(cx.chars, cx.open + 1), Some((j, ')')) if j == cx.close);

    // `Type::method(…)` — treated as a method on Type for resolution
    if let Some(q) = cx.qualified {
        if q == "Self" {
            if let Some(t) = cx.fd.impl_type.clone() {
                return Classified::Call(Some(t), cx.name.to_string(), true);
            }
            return Classified::Skip;
        }
        if q == "fs" {
            if cx.name.starts_with("read")
                || cx.name.starts_with("write")
                || matches!(cx.name, "copy" | "rename" | "remove_file" | "create_dir_all")
            {
                return Classified::Block(format!("fs::{}", cx.name));
            }
            return Classified::Skip;
        }
        if q.chars().next().is_some_and(|c| c.is_uppercase()) {
            if matches!(
                q.as_str(),
                "Arc" | "Vec" | "Box" | "Rc" | "String" | "HashMap" | "HashSet" | "VecDeque"
                    | "Option" | "Some" | "Ok" | "Err" | "Mutex" | "Condvar" | "Duration"
                    | "Instant" | "PathBuf" | "Default"
            ) {
                return Classified::Skip;
            }
            return Classified::Call(Some(q), cx.name.to_string(), true);
        }
        return Classified::Skip;
    }

    if is_method {
        let owner_and_field = resolve_owner_field(cx.recv_path, cx.locals, cx.ff, cx.items, cx.fd);
        let full_type = resolve_path_type(cx.recv_path, cx.locals, cx.ff, cx.items, cx.fd);

        match cx.name {
            "lock" => {
                if let Some((owner, field)) = owner_and_field {
                    return Classified::Acquire(LockRef::Path(format!("{owner}::{field}")));
                }
                if cx.recv_path.len() == 1 {
                    if let Some(d) = cx.mutex_locals.get(&cx.recv_path[0]) {
                        return Classified::Acquire(LockRef::Data(d.clone()));
                    }
                }
                if let Some(t) = &full_type {
                    if let Some(Helper::Guard(l)) = cx.helpers.get(&(t.clone(), "lock".into())) {
                        return Classified::Acquire(l.clone());
                    }
                    return Classified::Call(Some(t.clone()), "lock".into(), true);
                }
                return Classified::Skip;
            }
            "read" | "write" => {
                // RwLock acquisition vs I/O: decide by receiver type
                if let Some((owner, field)) = &owner_and_field {
                    if cx
                        .ff
                        .lock_fields
                        .iter()
                        .any(|(o, f, _)| o == owner && f == field)
                    {
                        return Classified::Acquire(LockRef::Path(format!("{owner}::{field}")));
                    }
                }
                if let Some(t) = &full_type {
                    if IO_TYPES.contains(&t.as_str()) {
                        return Classified::Block(format!("{t}::{}", cx.name));
                    }
                }
                return Classified::Skip;
            }
            "wait" | "wait_timeout" | "wait_while" | "wait_timeout_while" => {
                if let Some(mg) = cx.moved.first() {
                    let target = cx
                        .guards
                        .iter()
                        .find(|g| &g.name == mg)
                        .map(|g| g.lock.clone());
                    return Classified::Wait(target);
                }
                if let Some(t) = &full_type {
                    if let Some(Helper::Wait) = cx.helpers.get(&(t.clone(), cx.name.to_string())) {
                        return Classified::Wait(None);
                    }
                }
                if args_empty {
                    // `child.wait()` — blocking process wait
                    return Classified::Block("process wait()".into());
                }
                return Classified::Wait(None);
            }
            "join" if args_empty => {
                return Classified::Block("JoinHandle::join()".into());
            }
            _ => {}
        }
        // same-file helper calls through `self`
        if cx.recv_path == ["self"] {
            if let Some(t) = cx.fd.impl_type.clone() {
                match cx.helpers.get(&(t.clone(), cx.name.to_string())) {
                    Some(Helper::Guard(l)) => return Classified::Acquire(l.clone()),
                    Some(Helper::Wait) => {
                        let target = cx
                            .moved
                            .first()
                            .and_then(|mg| cx.guards.iter().find(|g| &g.name == mg))
                            .map(|g| g.lock.clone());
                        return Classified::Wait(target);
                    }
                    None => {}
                }
                return Classified::Call(Some(t), cx.name.to_string(), true);
            }
            return Classified::Skip;
        }
        if IO_METHODS.contains(&cx.name) {
            if let Some(t) = &full_type {
                if IO_TYPES.contains(&t.as_str()) {
                    return Classified::Block(format!("{t}::{}", cx.name));
                }
            }
        }
        if let Some(t) = full_type {
            // same-file guard helpers reached through a typed receiver
            match cx.helpers.get(&(t.clone(), cx.name.to_string())) {
                Some(Helper::Guard(l)) => return Classified::Acquire(l.clone()),
                Some(Helper::Wait) => {
                    let target = cx
                        .moved
                        .first()
                        .and_then(|mg| cx.guards.iter().find(|g| &g.name == mg))
                        .map(|g| g.lock.clone());
                    return Classified::Wait(target);
                }
                None => {}
            }
            return Classified::Call(Some(t), cx.name.to_string(), true);
        }
        return Classified::Skip;
    }

    // plain free-function call
    if cx.name == "drop" {
        return Classified::Skip; // handled by moved-guard bookkeeping
    }
    Classified::Call(None, cx.name.to_string(), false)
}

/// `a.b.c` → `Some((TypeOf(a.b), "c"))` when the prefix resolves.
fn resolve_owner_field(
    path: &[String],
    locals: &HashMap<String, String>,
    ff: &FileFacts,
    items: &Items,
    fd: &FnDef,
) -> Option<(String, String)> {
    if path.len() < 2 {
        return None;
    }
    let prefix = resolve_path_type(&path[..path.len() - 1], locals, ff, items, fd)?;
    Some((prefix, path[path.len() - 1].clone()))
}

/// Resolve the type a dotted path lands on (`self` → impl type,
/// locals/params, same-file statics, free-fn returns, field hops).
fn resolve_path_type(
    path: &[String],
    locals: &HashMap<String, String>,
    ff: &FileFacts,
    items: &Items,
    fd: &FnDef,
) -> Option<String> {
    let first = path.first()?;
    let mut t = if first == "self" {
        fd.impl_type.clone()?
    } else if let Some(r) = first.strip_prefix("ret:") {
        items.fn_ret.get(r)?.clone()
    } else if let Some(l) = locals.get(first) {
        l.clone()
    } else if let Some(s) = items.statics.get(first) {
        s.clone()
    } else {
        return None;
    };
    for seg in &path[1..] {
        t = ff
            .field_types
            .iter()
            .find(|(o, f, _)| o == &t && f == seg)
            .map(|(_, _, h)| h.clone())?;
    }
    Some(t)
}

/// `let` bindings: track pending guard names and local types.
fn handle_let(
    chars: &[char],
    after_kw: usize,
    pending: &mut Option<String>,
    locals: &mut HashMap<String, String>,
    ff: &FileFacts,
    items: &Items,
) {
    let Some((ni, nc)) = next_nonws(chars, after_kw) else {
        return;
    };
    if !(nc.is_alphabetic() || nc == '_') {
        return;
    }
    let (mut w, mut j) = read_word(chars, ni);
    if w == "mut" {
        let Some((ni2, nc2)) = next_nonws(chars, j) else {
            return;
        };
        if !(nc2.is_alphabetic() || nc2 == '_') {
            return;
        }
        let (w2, j2) = read_word(chars, ni2);
        w = w2;
        j = j2;
    }
    if w == "_" {
        return;
    }
    // `let Some(x) = path.as_mut()` / `if let Ok(x) = …`
    if (w == "Some" || w == "Ok") && matches!(next_nonws(chars, j), Some((_, '('))) {
        let Some((oi, _)) = next_nonws(chars, j) else {
            return;
        };
        let Some((ii, ic)) = next_nonws(chars, oi + 1) else {
            return;
        };
        if !(ic.is_alphabetic() || ic == '_') {
            return;
        }
        let (mut inner, _) = read_word(chars, ii);
        if inner == "mut" {
            if let Some((i2, c2)) = next_nonws(chars, ii + 3) {
                if c2.is_alphabetic() || c2 == '_' {
                    inner = read_word(chars, i2).0;
                }
            }
        }
        let close = matching_paren(chars, oi);
        let Some((eqi, '=')) = next_nonws(chars, close + 1) else {
            return;
        };
        if let Some(t) = rhs_path_type(chars, eqi + 1, locals, ff, items) {
            locals.insert(inner, t);
        }
        return;
    }
    let bind = w;
    match next_nonws(chars, j) {
        Some((ci, ':')) if chars.get(ci + 1) != Some(&':') => {
            // explicit ascription: read the type up to `=` or `;`
            let mut k = ci + 1;
            let mut ty = String::new();
            while k < chars.len() {
                match chars[k] {
                    '=' | ';' => break,
                    '<' => {
                        let nk = skip_angles(chars, k).min(chars.len());
                        ty.extend(chars[k..nk].iter());
                        k = nk;
                    }
                    c => {
                        ty.push(c);
                        k += 1;
                    }
                }
            }
            if let Some(h) = resolved_head(&peel_type(&ty)) {
                locals.insert(bind.clone(), h);
            }
            *pending = Some(bind);
        }
        Some((eqi, '=')) if chars.get(eqi + 1) != Some(&'=') => {
            if let Some(t) = rhs_constructor_type(chars, eqi + 1, items) {
                locals.insert(bind.clone(), t);
            }
            *pending = Some(bind);
        }
        _ => {
            *pending = Some(bind);
        }
    }
}

/// Type of a plain dotted-path RHS (`inner.disk.as_mut()` → the field
/// type of `disk`, wrappers peeled).
fn rhs_path_type(
    chars: &[char],
    start: usize,
    locals: &HashMap<String, String>,
    ff: &FileFacts,
    items: &Items,
) -> Option<String> {
    let mut segs = Vec::new();
    let mut i = start;
    loop {
        let (si, sc) = next_nonws(chars, i)?;
        if !(sc.is_alphabetic() || sc == '_') {
            break;
        }
        let (w, wend) = read_word(chars, si);
        match next_nonws(chars, wend) {
            Some((di, '.')) => {
                segs.push(w);
                i = di + 1;
            }
            Some((_, '(')) => {
                // method tail: only as_ref/as_mut keep the path type
                if w == "as_ref" || w == "as_mut" {
                    break;
                }
                return None;
            }
            _ => {
                segs.push(w);
                break;
            }
        }
    }
    if segs.is_empty() {
        return None;
    }
    let mut t = if let Some(l) = locals.get(&segs[0]) {
        l.clone()
    } else if let Some(s) = items.statics.get(&segs[0]) {
        s.clone()
    } else {
        return None;
    };
    for seg in &segs[1..] {
        t = ff
            .field_types
            .iter()
            .find(|(o, f, _)| o == &t && f == seg)
            .map(|(_, _, h)| h.clone())?;
    }
    Some(t)
}

/// Constructor-shaped RHS: `Type::new(…)`, `Arc::new(Type { … })`, or
/// a free-fn call resolved by return type (`registry()` → `Registry`).
fn rhs_constructor_type(chars: &[char], start: usize, items: &Items) -> Option<String> {
    let (si, sc) = next_nonws(chars, start)?;
    if !(sc.is_alphabetic() || sc == '_') {
        return None;
    }
    let (w1, j1) = read_word(chars, si);
    match next_nonws(chars, j1) {
        Some((ci, ':')) if chars.get(ci + 1) == Some(&':') => {
            let (mi, mc) = next_nonws(chars, ci + 2)?;
            if !(mc.is_alphabetic() || mc == '_') {
                return None;
            }
            let (w2, j2) = read_word(chars, mi);
            if matches!(w1.as_str(), "Arc" | "Box" | "Rc") {
                if w2 != "new" {
                    return None;
                }
                let (oi, oc) = next_nonws(chars, j2)?;
                if oc != '(' {
                    return None;
                }
                let (ii, ic) = next_nonws(chars, oi + 1)?;
                if !ic.is_uppercase() {
                    return None;
                }
                return Some(read_word(chars, ii).0);
            }
            if sc.is_uppercase()
                && !matches!(
                    w1.as_str(),
                    "Vec" | "String" | "HashMap" | "HashSet" | "VecDeque" | "Option" | "Some"
                        | "Ok" | "Err" | "Duration" | "Instant"
                )
            {
                return Some(w1);
            }
            None
        }
        Some((_, '(')) if sc.is_lowercase() => {
            // free-fn call: resolve by same-file return type
            items.fn_ret.get(&w1).cloned()
        }
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// metrics & discards (whole-file)
// ---------------------------------------------------------------------------

fn find_metrics(
    chars: &[char],
    orig: &[char],
    lines: &[usize],
    words: &[(usize, usize)],
    sc: &Scanned,
) -> Vec<MetricReg> {
    let mut out = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        let kind = match word_at(chars, w).as_str() {
            "Counter" => "counter",
            "Gauge" => "gauge",
            "Histogram" => "histogram",
            _ => continue,
        };
        // expect `::new(` then a string literal in the original text
        let Some((c1, ':')) = next_nonws(chars, w.1) else {
            continue;
        };
        if chars.get(c1 + 1) != Some(&':') {
            continue;
        }
        let Some(&nw) = words.get(wi + 1) else {
            continue;
        };
        if nw.0 <= c1 || word_at(chars, nw) != "new" {
            continue;
        }
        let Some((oi, '(')) = next_nonws(chars, nw.1) else {
            continue;
        };
        let line = line_of(lines, w.0);
        if sc.is_test_line(line) {
            continue;
        }
        // the literal was stripped to spaces; read it from the original
        let Some((qi, '"')) = next_nonws(orig, oi + 1) else {
            continue;
        };
        let mut name = String::new();
        let mut k = qi + 1;
        while k < orig.len() && orig[k] != '"' {
            name.push(orig[k]);
            k += 1;
        }
        if !name.is_empty() {
            out.push(MetricReg { kind, name, line });
        }
    }
    out
}

fn find_discards_impl(
    chars: &[char],
    lines: &[usize],
    words: &[(usize, usize)],
    sc: &Scanned,
) -> Vec<Discard> {
    let mut out = Vec::new();
    for (wi, &w) in words.iter().enumerate() {
        match word_at(chars, w).as_str() {
            "let" => {
                // `let _ = <expr with a call>;`
                let Some(&nw) = words.get(wi + 1) else { continue };
                if word_at(chars, nw) != "_" {
                    continue;
                }
                let Some((ei, '=')) = next_nonws(chars, nw.1) else {
                    continue;
                };
                if chars.get(ei + 1) == Some(&'=') {
                    continue;
                }
                let mut k = ei + 1;
                let mut depth = 0i32;
                let mut has_call = false;
                let mut snippet = String::new();
                while k < chars.len() {
                    let c = chars[k];
                    match c {
                        '(' => {
                            depth += 1;
                            has_call = true;
                        }
                        '[' | '{' => depth += 1,
                        ')' | ']' | '}' => depth -= 1,
                        ';' if depth <= 0 => break,
                        _ => {}
                    }
                    if snippet.len() < 64 {
                        snippet.push(c);
                    }
                    k += 1;
                }
                if !has_call {
                    continue;
                }
                let line = line_of(lines, w.0);
                if sc.is_test_line(line) {
                    continue;
                }
                out.push(Discard {
                    line,
                    what: format!("let _ = {}", tidy_snippet(&snippet, 48)),
                });
            }
            "ok" => {
                // statement-terminated `expr.ok();` not bound by a let
                if prev_nonws(chars, w.0).map(|(_, c)| c) != Some('.') {
                    continue;
                }
                let Some((oi, '(')) = next_nonws(chars, w.1) else {
                    continue;
                };
                let Some((ci, ')')) = next_nonws(chars, oi + 1) else {
                    continue;
                };
                if next_nonws(chars, ci + 1).map(|(_, c)| c) != Some(';') {
                    continue;
                }
                // walk back to the statement boundary
                let mut b = w.0;
                let mut depth = 0i32;
                while b > 0 {
                    let c = chars[b - 1];
                    match c {
                        ')' | ']' => depth += 1,
                        '(' | '[' => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                        }
                        ';' | '{' | '}' | ',' if depth == 0 => break,
                        _ => {}
                    }
                    b -= 1;
                }
                let stmt: String = chars[b..w.0].iter().collect();
                let stmt = stmt.trim();
                if stmt.is_empty()
                    || stmt.starts_with("let ")
                    || stmt.starts_with("return ")
                    || stmt.contains('=')
                {
                    continue;
                }
                let line = line_of(lines, w.0);
                if sc.is_test_line(line) {
                    continue;
                }
                let mut snip = tidy_snippet(stmt, 48);
                while snip.ends_with('.') {
                    snip.pop();
                }
                snip.push_str(".ok()");
                out.push(Discard { line, what: snip });
            }
            _ => {}
        }
    }
    out
}

/// Human-readable excerpt of stripped code: whitespace runs collapse
/// to one space (string contents were blanked by the scanner, which
/// otherwise leaves ragged gaps) and the result is capped at `max`.
fn tidy_snippet(raw: &str, max: usize) -> String {
    let mut out = String::with_capacity(raw.len().min(max));
    let mut in_ws = false;
    for c in raw.trim().chars() {
        if c.is_whitespace() {
            in_ws = true;
            continue;
        }
        if in_ws && !out.is_empty() {
            out.push(' ');
        }
        in_ws = false;
        out.push(c);
        if out.len() >= max {
            out.push('…');
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(src: &str) -> FileFacts {
        extract("crates/x/src/lib.rs", "x", FileKind::Lib, src)
    }

    #[test]
    fn struct_lock_and_condvar_fields() {
        let f = facts(
            "struct Q { inner: Mutex<Inner>, ready: Condvar, cap: usize }\n\
             struct S { disk: Option<DiskTier> }\n",
        );
        assert_eq!(
            f.lock_fields,
            vec![("Q".into(), "inner".into(), "Inner".into())]
        );
        assert_eq!(f.condvar_owners, vec!["Q".to_string()]);
        assert!(f
            .field_types
            .contains(&("S".into(), "disk".into(), "DiskTier".into())));
    }

    #[test]
    fn nested_acquisition_records_held_guard() {
        let f = facts(
            "struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl P { fn ab(&self) { let g = self.a.lock().unwrap(); let h = self.b.lock().unwrap(); drop(h); drop(g); } }\n",
        );
        let fnf = &f.fns[0];
        assert_eq!(fnf.acquires.len(), 2, "{:?}", fnf.acquires);
        assert_eq!(fnf.acquires[0].lock, LockRef::Path("P::a".into()));
        assert!(fnf.acquires[0].held.is_empty());
        assert_eq!(fnf.acquires[1].lock, LockRef::Path("P::b".into()));
        assert_eq!(fnf.acquires[1].held, vec![LockRef::Path("P::a".into())]);
    }

    #[test]
    fn moved_guard_is_released_at_call() {
        let f = facts(
            "struct P { a: Mutex<u32>, b: Mutex<u32> }\n\
             impl P {\n\
               fn go(&self) { let g = self.a.lock().unwrap(); self.take(g); let h = self.b.lock().unwrap(); drop(h); }\n\
               fn take(&self, _g: std::sync::MutexGuard<'_, u32>) {}\n\
             }\n",
        );
        let go = f.fns.iter().find(|x| x.name == "go").unwrap();
        assert!(go.acquires[1].held.is_empty(), "{:?}", go.acquires[1]);
    }

    #[test]
    fn condvar_wait_releases_only_its_guard() {
        let f = facts(
            "struct W { m: Mutex<u32>, aux: Mutex<u32>, cv: Condvar }\n\
             impl W { fn bad(&self) { let a = self.aux.lock().unwrap(); let mut g = self.m.lock().unwrap(); g = self.cv.wait(g).unwrap(); drop(g); drop(a); } }\n",
        );
        let w = &f.fns[0].waits[0];
        assert_eq!(w.target, Some(LockRef::Path("W::m".into())));
        assert_eq!(w.held, vec![LockRef::Path("W::aux".into())]);
    }

    #[test]
    fn guard_helper_binds_callers() {
        let f = facts(
            "struct C { state: Mutex<St>, cv: Condvar }\n\
             impl C {\n\
               fn lock(&self) -> std::sync::MutexGuard<'_, St> { self.state.lock().unwrap() }\n\
               fn submit(&self) { let st = self.lock(); drop(st); }\n\
             }\n",
        );
        let submit = f.fns.iter().find(|x| x.name == "submit").unwrap();
        assert_eq!(submit.acquires[0].lock, LockRef::Path("C::state".into()));
    }

    #[test]
    fn chained_non_guard_call_is_not_bound() {
        // `let eng = self.lock_sessions().get(k).cloned()` must not
        // leave `eng` tracked as a live guard
        let f = facts(
            "struct H { sessions: Mutex<Map> }\n\
             impl H {\n\
               fn lock_sessions(&self) -> std::sync::MutexGuard<'_, Map> { self.sessions.lock().unwrap() }\n\
               fn get(&self) { let eng = self.lock_sessions().get(1).cloned(); let g = self.sessions.lock().unwrap(); drop(g); drop(eng); }\n\
             }\n",
        );
        let get = f.fns.iter().find(|x| x.name == "get").unwrap();
        // second acquisition must not report `eng` as held
        let last = get.acquires.last().unwrap();
        assert!(last.held.is_empty(), "{last:?}");
    }

    #[test]
    fn join_and_io_block_sites() {
        let f = facts(
            "struct H { s: TcpStream }\n\
             impl H { fn go(&mut self, t: JoinHandle<()>) { let _r = t.join(); self.s.write_all(b\"x\").unwrap(); } }\n",
        );
        let go = &f.fns[0];
        assert!(go.blocks.iter().any(|b| b.what.contains("join")), "{:?}", go.blocks);
        assert!(go.blocks.iter().any(|b| b.what == "TcpStream::write_all"));
    }

    #[test]
    fn free_fn_return_type_resolves_registry_pattern() {
        let f = facts(
            "struct Registry { counters: Mutex<Map> }\n\
             fn registry() -> &'static Registry { todo() }\n\
             fn slot() { let c = registry().counters.lock().unwrap(); drop(c); }\n",
        );
        let slot = f.fns.iter().find(|x| x.name == "slot").unwrap();
        assert_eq!(
            slot.acquires[0].lock,
            LockRef::Path("Registry::counters".into())
        );
    }

    #[test]
    fn metric_names_read_from_original_source() {
        let f = facts(
            "static C: Counter = Counter::new(\"x.hits\");\n\
             static G: Gauge = Gauge::new(\"x.depth\");\n",
        );
        let names: Vec<&str> = f.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["x.hits", "x.depth"]);
        assert_eq!(f.metrics[0].kind, "counter");
    }

    #[test]
    fn discards_found_and_test_code_exempt() {
        let src = "fn f() { let _ = std::fs::write(\"a\", b\"b\"); g().ok(); }\n\
                   fn okstmt() { let x = h().ok(); drop(x); }\n\
                   #[cfg(test)]\nmod tests { fn t() { let _ = f(); } }\n";
        let f = facts(src);
        assert_eq!(f.discards.len(), 2, "{:?}", f.discards);
        assert!(f.discards[0].what.contains("fs::write"));
        assert!(f.discards[1].what.ends_with(".ok()"));
    }

    #[test]
    fn pragma_lines_collected() {
        let f = facts(
            "fn f() {\n// gp-lint: allow(C2) - flush under lock is the consistency point\nlet _x = 1;\n}\n",
        );
        assert_eq!(f.allow_c2, vec![3]);
    }

    #[test]
    fn wait_helper_and_reassignment_keep_guard_alive() {
        let f = facts(
            "struct C { state: Mutex<St>, cv: Condvar }\n\
             impl C {\n\
               fn wait<'a>(&'a self, g: MutexGuard<'a, St>, d: Duration) -> MutexGuard<'a, St> { self.cv.wait_timeout(g, d).unwrap().0 }\n\
               fn lead(&self, mut st: MutexGuard<'_, St>) { st = self.wait(st, D); drop(st); }\n\
             }\n",
        );
        let lead = f.fns.iter().find(|x| x.name == "lead").unwrap();
        assert_eq!(lead.waits.len(), 1, "{:?}", lead.waits);
        assert!(lead.waits[0].held.is_empty());
    }

    // Offline stand-in for the CI proptests: deterministic token soup
    // must never panic, and extraction from the stripped code must be
    // structurally identical (literal contents live only in the
    // original text, so compare shapes).
    #[test]
    fn fuzz_token_soup_never_panics() {
        let atoms = [
            "let ", "mut ", "= ", "self.", ".lock()", ".unwrap()", "Mutex<", ">", "struct ",
            "impl ", "fn ", "{", "}", "(", ")", ";", ",", "\"s\"", "'a'", "// c\n", "/*", "*/",
            "Condvar", ".wait(", "g", "st", "drop(", "#[cfg(test)]", "->", "::", "r#\"x\"#",
            "b'\\n'", "Counter::new(\"m.x\")", "let _ = f();", ".ok();", "&", "'static",
            "JoinHandle", ".join()", "for ", "match ", "=>",
        ];
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let n = (rng() % 60) as usize + 1;
            let mut s = String::new();
            for _ in 0..n {
                s.push_str(atoms[(rng() % atoms.len() as u64) as usize]);
            }
            let f1 = extract("x/src/lib.rs", "x", FileKind::Lib, &s);
            let stripped = scan(&s).code;
            let f2 = extract("x/src/lib.rs", "x", FileKind::Lib, &stripped);
            assert_eq!(f1.fns, f2.fns);
            assert_eq!(f1.lock_fields, f2.lock_fields);
            assert_eq!(f1.discards.len(), f2.discards.len());
            assert_eq!(f1.metrics.len(), f2.metrics.len());
        }
    }
}
