//! `gp-lint` binary: thin shell over [`gp_lint::run_cli`]. All logic —
//! and all testability — lives in the library; the binary only prints
//! and sets the exit code.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (report, code) = gp_lint::run_cli(&args);
    if code == 0 {
        print!("{report}");
    } else {
        eprint!("{report}");
    }
    std::process::exit(code);
}
