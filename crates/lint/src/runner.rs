//! Workspace walker, aggregation, ratchet enforcement and the CLI.
//!
//! Library-side everything is pure: [`run`] returns an [`Outcome`] and
//! [`run_cli`] returns `(report_text, exit_code)` — printing is the
//! binary's job, so gp-lint passes its own O1 rule ("no `println!` in
//! library crates") and its own R1/B1/E1 ratchets (zero panicking
//! constructs, zero unbounded queues, zero swallowed Results: every
//! fallible step routes through `Result<_, String>`).
//!
//! Since v2 the runner is **two-pass**: while walking it both lints
//! each file ([`crate::rules::lint_source`]) and extracts its facts
//! ([`crate::facts::extract`]); after the walk it runs the cross-file
//! concurrency rules ([`crate::graph::analyze`]) and the M1
//! metric-manifest check over the merged fact base.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::baseline::{Baseline, RatchetReport};
use crate::facts::{self, FileFacts};
use crate::rules::{classify, lint_source, FileKind, Rule, Violation};

/// Default name of the committed ratchet file, at the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.toml";

/// Name of the committed metric manifest M1 checks, at the workspace
/// root.
pub const METRICS_FILE: &str = "METRICS.md";

/// Parsed command line.
#[derive(Clone, Debug)]
pub struct Options {
    /// Workspace root (autodetected from cwd when not given).
    pub root: PathBuf,
    /// Emit the report as JSON instead of text.
    pub json: bool,
    /// Emit the report as SARIF 2.1.0 (for CI code-scanning upload).
    pub sarif: bool,
    /// Rewrite the baseline file with the observed R1/B1/E1 counts.
    pub update_baseline: bool,
    /// Path to the baseline file (default `<root>/lint-baseline.toml`).
    pub baseline: PathBuf,
    /// Only report findings in files changed since this git ref. The
    /// whole workspace is still analyzed (pass 2 needs every file);
    /// ratchet regressions stay global — a rising count fails even if
    /// the offending file predates the ref.
    pub changed: Option<String>,
}

/// Everything one lint run produced.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Hard violations (D1–D4, O1, P1 plus over-baseline R1/B1), sorted
    /// by `(file, line, rule)` so output is byte-stable across runs.
    pub violations: Vec<Violation>,
    /// Per-crate observed R1 counts (library code, unsuppressed), sorted.
    pub r1_counts: Vec<(String, usize)>,
    /// Per-crate observed B1 counts (library code, unsuppressed), sorted.
    pub b1_counts: Vec<(String, usize)>,
    /// Per-crate observed E1 counts (library code, unsuppressed), sorted.
    pub e1_counts: Vec<(String, usize)>,
    /// R1 ratchet comparison against the committed baseline.
    pub ratchet: RatchetReport,
    /// B1 ratchet comparison against the committed baseline.
    pub ratchet_b1: RatchetReport,
    /// E1 ratchet comparison against the committed baseline.
    pub ratchet_e1: RatchetReport,
    /// Total sites silenced by verified pragmas.
    pub suppressed: usize,
    /// Number of `.rs` files linted.
    pub files_scanned: usize,
    /// True when the baseline file was rewritten this run.
    pub baseline_updated: bool,
}

impl Outcome {
    /// Did the run pass (no hard violations, no ratchet regressions)?
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lint every `.rs` file under `opts.root` (skipping `target/`, dot
/// directories and the linter's own fixture corpus), run the pass-2
/// workspace rules (C1/C2/M1) over the merged facts, and enforce the
/// R1/B1/E1 ratchets against `opts.baseline`.
pub fn run(opts: &Options) -> Result<Outcome, String> {
    let files = collect_rs_files(&opts.root)?;
    let mut crate_names: CrateNameCache = HashMap::new();
    let mut out = Outcome::default();
    let mut r1_by_crate: Vec<(String, usize)> = Vec::new();
    let mut r1_sites_by_crate: Vec<(String, Vec<Violation>)> = Vec::new();
    let mut b1_by_crate: Vec<(String, usize)> = Vec::new();
    let mut b1_sites_by_crate: Vec<(String, Vec<Violation>)> = Vec::new();
    let mut e1_by_crate: Vec<(String, usize)> = Vec::new();
    let mut e1_sites_by_crate: Vec<(String, Vec<Violation>)> = Vec::new();
    let mut fact_files: Vec<FileFacts> = Vec::new();

    for path in &files {
        let rel = rel_label(&opts.root, path);
        let crate_name = crate_name_for(&mut crate_names, &opts.root, path)?;
        let kind = classify(&rel);
        let source =
            fs::read_to_string(path).map_err(|e| format!("gp-lint: cannot read {rel}: {e}"))?;
        let rep = lint_source(&rel, &crate_name, kind, &source);
        if kind != FileKind::Harness {
            // Pass-1 fact extraction: C1/C2/M1 cover binaries too — a
            // deadlock in `gp serve` is no less a deadlock.
            fact_files.push(facts::extract(&rel, &crate_name, kind, &source));
        }
        out.files_scanned += 1;
        out.suppressed += rep.suppressed;
        out.violations.extend(rep.violations);
        if !rep.r1_sites.is_empty() {
            bump(&mut r1_by_crate, &crate_name, rep.r1_sites.len());
            match r1_sites_by_crate.iter_mut().find(|(c, _)| c == &crate_name) {
                Some((_, sites)) => sites.extend(rep.r1_sites),
                None => r1_sites_by_crate.push((crate_name.clone(), rep.r1_sites)),
            }
        } else if kind == FileKind::Lib {
            // Record the crate with zero sites so clean crates appear in
            // the baseline and stay ratcheted at zero.
            bump(&mut r1_by_crate, &crate_name, 0);
        }
        if !rep.b1_sites.is_empty() {
            bump(&mut b1_by_crate, &crate_name, rep.b1_sites.len());
            match b1_sites_by_crate.iter_mut().find(|(c, _)| c == &crate_name) {
                Some((_, sites)) => sites.extend(rep.b1_sites),
                None => b1_sites_by_crate.push((crate_name.clone(), rep.b1_sites)),
            }
        } else if kind == FileKind::Lib {
            bump(&mut b1_by_crate, &crate_name, 0);
        }
        if !rep.e1_sites.is_empty() {
            bump(&mut e1_by_crate, &crate_name, rep.e1_sites.len());
            match e1_sites_by_crate.iter_mut().find(|(c, _)| c == &crate_name) {
                Some((_, sites)) => sites.extend(rep.e1_sites),
                None => e1_sites_by_crate.push((crate_name.clone(), rep.e1_sites)),
            }
        } else if kind == FileKind::Lib {
            bump(&mut e1_by_crate, &crate_name, 0);
        }
    }
    r1_by_crate.sort_by(|a, b| a.0.cmp(&b.0));
    out.r1_counts = r1_by_crate;
    b1_by_crate.sort_by(|a, b| a.0.cmp(&b.0));
    out.b1_counts = b1_by_crate;
    e1_by_crate.sort_by(|a, b| a.0.cmp(&b.0));
    out.e1_counts = e1_by_crate;

    // Pass 2: cross-file concurrency rules over the merged fact base.
    let analysis = crate::graph::analyze(&fact_files);
    out.suppressed += analysis.suppressed;
    out.violations.extend(analysis.violations);

    // M1: registered metric names vs the committed manifest.
    let (m1_violations, m1_suppressed) = check_metrics_manifest(&opts.root, &fact_files);
    out.suppressed += m1_suppressed;
    out.violations.extend(m1_violations);

    // Ratchet: load the committed baseline (absent file = empty = all
    // zeros, so a fresh workspace must start clean or commit a baseline).
    let baseline = match fs::read_to_string(&opts.baseline) {
        Ok(text) => Baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Baseline::default(),
        Err(e) => {
            return Err(format!(
                "gp-lint: cannot read {}: {e}",
                opts.baseline.display()
            ))
        }
    };
    out.ratchet = RatchetReport::compare(&baseline.r1, &out.r1_counts);
    out.ratchet_b1 = RatchetReport::compare(&baseline.b1, &out.b1_counts);
    out.ratchet_e1 = RatchetReport::compare(&baseline.e1, &out.e1_counts);

    if opts.update_baseline {
        let next = Baseline::from_counts(&out.r1_counts, &out.b1_counts, &out.e1_counts);
        fs::write(&opts.baseline, next.render())
            .map_err(|e| format!("gp-lint: cannot write {}: {e}", opts.baseline.display()))?;
        out.baseline_updated = true;
    } else {
        // Regressions become hard violations: the per-crate summary plus
        // every site in the regressed crate (the new one is among them).
        let baseline_label = rel_label(&opts.root, &opts.baseline);
        for (name, allowed, observed) in &out.ratchet.regressed {
            out.violations.push(Violation {
                file: baseline_label.clone(),
                line: 1,
                rule: Rule::R1,
                message: format!(
                    "crate {name} has {observed} panicking sites but the ratchet allows \
                     {allowed} — remove the new unwrap/expect/panic (all {name} sites listed)"
                ),
            });
            if let Some((_, sites)) = r1_sites_by_crate.iter().find(|(c, _)| c == name) {
                out.violations.extend(sites.iter().cloned());
            }
        }
        for (name, allowed, observed) in &out.ratchet_b1.regressed {
            out.violations.push(Violation {
                file: baseline_label.clone(),
                line: 1,
                rule: Rule::B1,
                message: format!(
                    "crate {name} has {observed} unbounded channel/queue sites but the \
                     ratchet allows {allowed} — bound the new queue (all {name} sites listed)"
                ),
            });
            if let Some((_, sites)) = b1_sites_by_crate.iter().find(|(c, _)| c == name) {
                out.violations.extend(sites.iter().cloned());
            }
        }
        for (name, allowed, observed) in &out.ratchet_e1.regressed {
            out.violations.push(Violation {
                file: baseline_label.clone(),
                line: 1,
                rule: Rule::E1,
                message: format!(
                    "crate {name} has {observed} discarded-Result sites but the ratchet \
                     allows {allowed} — handle or count the new error (all {name} sites listed)"
                ),
            });
            if let Some((_, sites)) = e1_sites_by_crate.iter().find(|(c, _)| c == name) {
                out.violations.extend(sites.iter().cloned());
            }
        }
    }

    if let Some(git_ref) = &opts.changed {
        let changed = changed_files(&opts.root, git_ref)?;
        let baseline_label = rel_label(&opts.root, &opts.baseline);
        out.violations.retain(|v| {
            // Ratchet summaries are global: a rising count must fail a
            // pre-commit run even when the new site is the only change.
            if v.file == baseline_label {
                return true;
            }
            if changed.contains(&v.file) {
                return true;
            }
            // A C1 cycle's anchor file may be unchanged while a changed
            // file contributed the closing edge — keep it if any changed
            // file appears in the witness chain.
            v.rule == Rule::C1 && changed.iter().any(|f| v.message.contains(f.as_str()))
        });
    }

    out.violations
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(out)
}

/// Repo-relative paths changed since `git_ref`, from `git diff
/// --name-only` plus untracked files (a brand-new file must not dodge
/// a pre-commit lint).
fn changed_files(root: &Path, git_ref: &str) -> Result<Vec<String>, String> {
    let mut out: Vec<String> = Vec::new();
    for args in [
        vec!["diff", "--name-only", git_ref, "--"],
        vec!["ls-files", "--others", "--exclude-standard"],
    ] {
        let cmd = std::process::Command::new("git")
            .args(&args)
            .current_dir(root)
            .output()
            .map_err(|e| format!("gp-lint: cannot run git for --changed: {e}"))?;
        if !cmd.status.success() {
            return Err(format!(
                "gp-lint: git {} failed: {}",
                args.join(" "),
                String::from_utf8_lossy(&cmd.stderr).trim()
            ));
        }
        for line in String::from_utf8_lossy(&cmd.stdout).lines() {
            let line = line.trim();
            if !line.is_empty() {
                out.push(line.replace('\\', "/"));
            }
        }
    }
    out.sort();
    out.dedup();
    Ok(out)
}

/// M1: every metric name registered via gp-obs appears in the committed
/// `METRICS.md` and vice versa. Returns `(violations, suppressed)`.
fn check_metrics_manifest(root: &Path, fact_files: &[FileFacts]) -> (Vec<Violation>, usize) {
    let mut registered: Vec<(&str, &str, &str, usize, bool)> = Vec::new(); // name, kind, file, line, allowed
    for f in fact_files {
        for m in &f.metrics {
            registered.push((
                &m.name,
                m.kind,
                &f.path,
                m.line,
                f.allow_m1.contains(&m.line),
            ));
        }
    }
    if registered.is_empty() {
        return (Vec::new(), 0);
    }
    let mut violations = Vec::new();
    let mut suppressed = 0usize;
    let manifest_path = root.join(METRICS_FILE);
    let text = match fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(_) => {
            violations.push(Violation {
                file: METRICS_FILE.to_string(),
                line: 1,
                rule: Rule::M1,
                message: format!(
                    "{} metric names are registered but {METRICS_FILE} does not exist — \
                     commit the manifest (name, type, subsystem, meaning per metric)",
                    registered.len()
                ),
            });
            return (violations, 0);
        }
    };
    let manifest = manifest_metric_names(&text);
    for (name, kind, file, line, allowed) in &registered {
        if manifest.iter().any(|(n, _)| n == name) {
            continue;
        }
        if *allowed {
            suppressed += 1;
            continue;
        }
        violations.push(Violation {
            file: (*file).to_string(),
            line: *line,
            rule: Rule::M1,
            message: format!(
                "{kind} `{name}` is registered but missing from {METRICS_FILE} — \
                 document it (or justify with `// gp-lint: allow(M1) — <reason>`)"
            ),
        });
    }
    for (name, line) in &manifest {
        if registered.iter().any(|(n, ..)| n == name) {
            continue;
        }
        violations.push(Violation {
            file: METRICS_FILE.to_string(),
            line: *line,
            rule: Rule::M1,
            message: format!(
                "`{name}` is documented in {METRICS_FILE} but no code registers it — \
                 remove the stale manifest row"
            ),
        });
    }
    (violations, suppressed)
}

/// Metric names out of the manifest: the first cell of each markdown
/// table row, backticks stripped; header and separator rows skipped.
fn manifest_metric_names(text: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let Some(rest) = line.strip_prefix('|') else {
            continue;
        };
        let Some(cell) = rest.split('|').next() else {
            continue;
        };
        let name = cell.trim().trim_matches('`').trim();
        if name.is_empty()
            || name.chars().all(|c| c == '-' || c == ':' || c == ' ')
            || name.eq_ignore_ascii_case("name")
            || name.eq_ignore_ascii_case("metric")
        {
            continue;
        }
        out.push((name.to_string(), i + 1));
    }
    out
}

type CrateNameCache = HashMap<PathBuf, String>;

fn bump(counts: &mut Vec<(String, usize)>, name: &str, by: usize) {
    match counts.iter_mut().find(|(c, _)| c == name) {
        Some((_, n)) => *n += by,
        None => counts.push((name.to_string(), by)),
    }
}

/// Repo-relative, `/`-separated label for reports.
fn rel_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// All `.rs` files under `root`, deterministically sorted. Skips
/// `target/`, dot-directories and `crates/lint/tests/fixtures` (the
/// deliberately-dirty corpus the integration tests lint by hand).
fn collect_rs_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let rd = fs::read_dir(&dir)
            .map_err(|e| format!("gp-lint: cannot list {}: {e}", dir.display()))?;
        let mut entries: Vec<PathBuf> = Vec::new();
        for entry in rd {
            let entry =
                entry.map_err(|e| format!("gp-lint: walk error in {}: {e}", dir.display()))?;
            entries.push(entry.path());
        }
        entries.sort();
        for path in entries {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                if rel_label(root, &path) == "crates/lint/tests/fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Package name from the nearest ancestor `Cargo.toml` (cached per
/// directory). Falls back to the directory name if no manifest declares
/// a `[package] name`.
fn crate_name_for(cache: &mut CrateNameCache, root: &Path, file: &Path) -> Result<String, String> {
    let mut dir = file.parent().map(Path::to_path_buf);
    while let Some(d) = dir {
        if let Some(name) = cache.get(&d) {
            return Ok(name.clone());
        }
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("gp-lint: cannot read {}: {e}", manifest.display()))?;
            if let Some(name) = package_name(&text) {
                cache.insert(d, name.clone());
                return Ok(name);
            }
        }
        if d == root {
            break;
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    Ok(file
        .parent()
        .and_then(Path::file_name)
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string()))
}

/// `name = "…"` out of a manifest's `[package]` section.
fn package_name(manifest: &str) -> Option<String> {
    let mut in_package = false;
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        if key.trim() == "name" {
            return Some(value.trim().trim_matches('"').to_string());
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Reports.

/// Stable text report: sorted violations, ratchet notices, a summary line.
pub fn render_text(out: &Outcome) -> String {
    let mut s = String::new();
    for v in &out.violations {
        s.push_str(&v.render());
        s.push('\n');
    }
    for (name, allowed, observed) in &out.ratchet.improved {
        s.push_str(&format!(
            "notice: crate {name} improved to {observed} panicking sites (baseline {allowed}) — \
             run `gp-lint --update-baseline` to ratchet\n"
        ));
    }
    for (name, allowed, observed) in &out.ratchet_b1.improved {
        s.push_str(&format!(
            "notice: crate {name} improved to {observed} unbounded-queue sites (baseline \
             {allowed}) — run `gp-lint --update-baseline` to ratchet\n"
        ));
    }
    for (name, allowed, observed) in &out.ratchet_e1.improved {
        s.push_str(&format!(
            "notice: crate {name} improved to {observed} discarded-Result sites (baseline \
             {allowed}) — run `gp-lint --update-baseline` to ratchet\n"
        ));
    }
    if out.baseline_updated {
        s.push_str("baseline updated\n");
    }
    if out.ok() {
        s.push_str(&format!(
            "gp-lint: clean — {} files, {} suppressed sites, R1 total {}, B1 total {}, E1 total {}\n",
            out.files_scanned,
            out.suppressed,
            out.r1_counts.iter().map(|(_, n)| n).sum::<usize>(),
            out.b1_counts.iter().map(|(_, n)| n).sum::<usize>(),
            out.e1_counts.iter().map(|(_, n)| n).sum::<usize>()
        ));
    } else {
        s.push_str(&format!(
            "gp-lint: {} violations in {} files\n",
            out.violations.len(),
            out.files_scanned
        ));
    }
    s
}

/// Hand-rolled JSON report (the linter is dependency-free by design).
pub fn render_json(out: &Outcome) -> String {
    let mut s = String::from("{\n  \"ok\": ");
    s.push_str(if out.ok() { "true" } else { "false" });
    s.push_str(&format!(
        ",\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"violations\": [",
        out.files_scanned, out.suppressed
    ));
    for (i, v) in out.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"category\": {}, \"message\": {}}}",
            json_str(&v.file),
            v.line,
            json_str(v.rule.id()),
            json_str(v.rule.category()),
            json_str(&v.message)
        ));
    }
    s.push_str("\n  ],\n  \"r1_counts\": {");
    for (i, (name, n)) in out.r1_counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    {}: {}", json_str(name), n));
    }
    s.push_str("\n  },\n  \"b1_counts\": {");
    for (i, (name, n)) in out.b1_counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    {}: {}", json_str(name), n));
    }
    s.push_str("\n  },\n  \"e1_counts\": {");
    for (i, (name, n)) in out.e1_counts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\n    {}: {}", json_str(name), n));
    }
    s.push_str("\n  }\n}\n");
    s
}

/// SARIF 2.1.0 report for CI code-scanning upload. Hand-rolled like
/// [`render_json`]; the shape matches what
/// `github/codeql-action/upload-sarif` consumes: one run, one driver,
/// a rule table, and `results` with physical locations.
pub fn render_sarif(out: &Outcome) -> String {
    let mut s = String::from(
        "{\n  \"version\": \"2.1.0\",\n  \"$schema\": \
         \"https://json.schemastore.org/sarif-2.1.0.json\",\n  \"runs\": [\n    {\n      \
         \"tool\": {\n        \"driver\": {\n          \"name\": \"gp-lint\",\n          \
         \"informationUri\": \"https://github.com/graphprompter/graphprompter\",\n          \
         \"rules\": [",
    );
    for (i, r) in ALL_RULES.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n            {{\"id\": {}, \"shortDescription\": {{\"text\": {}}}}}",
            json_str(r.id()),
            json_str(r.describe())
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n      \"results\": [");
    for (i, v) in out.violations.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n        {{\"ruleId\": {}, \"level\": \"error\", \"message\": {{\"text\": {}}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": {}}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}",
            json_str(v.rule.id()),
            json_str(&v.message),
            json_str(&v.file),
            v.line.max(1)
        ));
    }
    s.push_str("\n      ]\n    }\n  ]\n}\n");
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---------------------------------------------------------------------------
// CLI.

const USAGE: &str = "\
gp-lint — GraphPrompter determinism & robustness linter (zero deps)

USAGE:
    gp-lint [--check] [--json] [--sarif] [--update-baseline]
            [--changed <ref>] [--root <dir>] [--baseline <file>]
            [--list-rules]

    --check              lint and exit nonzero on violations (default)
    --json               machine-readable report
    --sarif              SARIF 2.1.0 report (CI code-scanning upload)
    --update-baseline    rewrite the R1/B1/E1 ratchet file with observed counts
    --changed <ref>      report only findings in files changed since <ref>
                         (whole workspace still analyzed; ratchets stay global)
    --root <dir>         workspace root (default: autodetect from cwd)
    --baseline <file>    ratchet file (default: <root>/lint-baseline.toml)
    --list-rules         print the rule table and exit
";

/// Parse args and run. Returns `(text_to_print, exit_code)`; the binary
/// prints — the library never touches stdout (its own O1 rule).
pub fn run_cli(args: &[String]) -> (String, i32) {
    let mut root: Option<PathBuf> = None;
    let mut baseline: Option<PathBuf> = None;
    let mut json = false;
    let mut sarif = false;
    let mut update_baseline = false;
    let mut changed: Option<String> = None;
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--check" => {}
            "--json" => json = true,
            "--sarif" => sarif = true,
            "--update-baseline" => update_baseline = true,
            "--changed" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return (format!("gp-lint: --changed needs a git ref\n{USAGE}"), 2);
                };
                changed = Some(v.clone());
            }
            "--root" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return (format!("gp-lint: --root needs a value\n{USAGE}"), 2);
                };
                root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                i += 1;
                let Some(v) = args.get(i) else {
                    return (format!("gp-lint: --baseline needs a value\n{USAGE}"), 2);
                };
                baseline = Some(PathBuf::from(v));
            }
            "--list-rules" => return (list_rules(), 0),
            "--help" | "-h" => return (USAGE.to_string(), 0),
            other => {
                return (format!("gp-lint: unknown argument `{other}`\n{USAGE}"), 2);
            }
        }
        i += 1;
    }
    let root = match root.map(Ok).unwrap_or_else(detect_root) {
        Ok(r) => r,
        Err(e) => return (format!("{e}\n"), 2),
    };
    let baseline = baseline.unwrap_or_else(|| root.join(BASELINE_FILE));
    let opts = Options {
        root,
        json,
        sarif,
        update_baseline,
        baseline,
        changed,
    };
    match run(&opts) {
        Ok(out) => {
            let text = if opts.sarif {
                render_sarif(&out)
            } else if opts.json {
                render_json(&out)
            } else {
                render_text(&out)
            };
            (text, if out.ok() { 0 } else { 1 })
        }
        Err(e) => (format!("{e}\n"), 2),
    }
}

/// Every rule, in report order (also the SARIF driver rule table).
const ALL_RULES: &[Rule] = &[
    Rule::D1,
    Rule::D2,
    Rule::D3,
    Rule::D4,
    Rule::R1,
    Rule::B1,
    Rule::O1,
    Rule::A1,
    Rule::C1,
    Rule::C2,
    Rule::E1,
    Rule::M1,
    Rule::P1,
];

fn list_rules() -> String {
    let mut s = String::new();
    for r in ALL_RULES {
        s.push_str(&format!(
            "{:14}[{}] {}\n",
            r.category(),
            r.id(),
            r.describe()
        ));
    }
    s
}

/// Walk up from the cwd to the manifest that declares `[workspace]`.
fn detect_root() -> Result<PathBuf, String> {
    let cwd = std::env::current_dir().map_err(|e| format!("gp-lint: cannot determine cwd: {e}"))?;
    let mut dir = Some(cwd.as_path());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            let text = fs::read_to_string(&manifest)
                .map_err(|e| format!("gp-lint: cannot read {}: {e}", manifest.display()))?;
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err("gp-lint: no workspace root found above the cwd (pass --root)".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn package_name_parses_the_package_section_only() {
        let m = "[workspace]\nmembers = [\"x\"]\n[package]\nname = \"gp-core\"\n\
                 [dependencies]\nname = \"decoy\"\n";
        assert_eq!(package_name(m), Some("gp-core".to_string()));
        assert_eq!(package_name("[workspace]\n"), None);
    }

    #[test]
    fn json_strings_are_escaped() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn cli_rejects_unknown_flags() {
        let (msg, code) = run_cli(&["--frobnicate".to_string()]);
        assert_eq!(code, 2);
        assert!(msg.contains("unknown argument"));
    }

    #[test]
    fn cli_lists_rules() {
        let (msg, code) = run_cli(&["--list-rules".to_string()]);
        assert_eq!(code, 0);
        for id in [
            "D1", "D2", "D3", "D4", "R1", "B1", "O1", "A1", "C1", "C2", "E1", "M1", "P1",
        ] {
            assert!(msg.contains(&format!("[{id}]")), "missing {id}");
        }
    }

    #[test]
    fn manifest_names_parse_table_rows_only() {
        let md = "# Metrics\n\nprose mentioning `serve.fake` is ignored\n\n\
                  | Name | Type | Subsystem | Meaning |\n\
                  |------|------|-----------|---------|\n\
                  | `serve.accepted` | counter | gp-serve | accepted requests |\n\
                  | serve.rejected | counter | gp-serve | rejected requests |\n";
        let names = manifest_metric_names(md);
        assert_eq!(
            names,
            vec![
                ("serve.accepted".to_string(), 7),
                ("serve.rejected".to_string(), 8)
            ]
        );
    }

    #[test]
    fn sarif_shape_has_required_fields() {
        let out = Outcome {
            violations: vec![Violation {
                file: "crates/core/src/x.rs".into(),
                line: 3,
                rule: Rule::C2,
                message: "held across \"join\"".into(),
            }],
            ..Outcome::default()
        };
        let s = render_sarif(&out);
        for needle in [
            "\"version\": \"2.1.0\"",
            "\"$schema\"",
            "\"runs\"",
            "\"driver\"",
            "\"name\": \"gp-lint\"",
            "\"ruleId\": \"C2\"",
            "\"level\": \"error\"",
            "\"artifactLocation\"",
            "\"startLine\": 3",
        ] {
            assert!(s.contains(needle), "missing {needle} in {s}");
        }
    }
}
