//! The ratchet baseline: a committed TOML file recording, per crate,
//! how many sites of each *ratcheted* rule its library code still
//! contains — `[R1]` counts `unwrap`/`expect`/`panic!`/`unreachable!`
//! sites, `[B1]` counts unbounded channel/queue constructions, `[E1]`
//! counts discarded `Result`s (`let _ =` / bare `.ok();`).
//!
//! Semantics (see [`crate::rules::Rule::R1`] / [`crate::rules::Rule::B1`]):
//! * a crate's current count **above** its baseline fails `--check`
//!   (new panicking / unbounded-queue code was added);
//! * a count **below** its baseline passes but prints a notice — run
//!   `gp-lint --update-baseline` to lower the floor and lock in the
//!   improvement;
//! * a crate missing from the file has baseline **0** (new crates start
//!   clean; gp-lint itself is pinned there).
//!
//! The file is a deliberately tiny TOML subset so the linter stays
//! dependency-free: `#` comments, the `[R1]`/`[B1]`/`[E1]` tables, and
//! bare `crate-name = count` pairs (hyphens are legal in bare TOML
//! keys). [`Baseline::render`] writes sections in fixed order and
//! crates sorted by name so regeneration is byte-stable. A pre-E1
//! two-section file still parses (absent `[E1]` means every crate's
//! E1 floor is 0), so upgrading the linter cannot brick a checkout.

/// Parsed baseline: per-crate counts for each ratcheted rule.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(crate, allowed R1 count)`, sorted by crate name.
    pub r1: Vec<(String, usize)>,
    /// `(crate, allowed B1 count)`, sorted by crate name.
    pub b1: Vec<(String, usize)>,
    /// `(crate, allowed E1 count)`, sorted by crate name.
    pub e1: Vec<(String, usize)>,
}

fn lookup(section: &[(String, usize)], crate_name: &str) -> usize {
    section
        .iter()
        .find(|(c, _)| c == crate_name)
        .map(|(_, n)| *n)
        .unwrap_or(0)
}

fn sorted_dedup(counts: &[(String, usize)]) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = counts.to_vec();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

impl Baseline {
    /// The ratcheted R1 ceiling for `crate_name` (0 when absent).
    pub fn get(&self, crate_name: &str) -> usize {
        lookup(&self.r1, crate_name)
    }

    /// The ratcheted B1 ceiling for `crate_name` (0 when absent).
    pub fn get_b1(&self, crate_name: &str) -> usize {
        lookup(&self.b1, crate_name)
    }

    /// The ratcheted E1 ceiling for `crate_name` (0 when absent).
    pub fn get_e1(&self, crate_name: &str) -> usize {
        lookup(&self.e1, crate_name)
    }

    /// Build a baseline from observed counts (zeros are written out too,
    /// so a clean crate's cleanliness is itself ratcheted).
    pub fn from_counts(
        r1: &[(String, usize)],
        b1: &[(String, usize)],
        e1: &[(String, usize)],
    ) -> Self {
        Baseline {
            r1: sorted_dedup(r1),
            b1: sorted_dedup(b1),
            e1: sorted_dedup(e1),
        }
    }

    /// Parse the TOML subset. Unknown sections are rejected rather than
    /// skipped — a typo like `[R2]` must not silently drop the ratchet.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut section: Option<String> = None;
        let mut r1: Vec<(String, usize)> = Vec::new();
        let mut b1: Vec<(String, usize)> = Vec::new();
        let mut e1: Vec<(String, usize)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = match raw.find('#') {
                Some(i) => &raw[..i],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(format!(
                        "baseline line {}: unterminated section header",
                        lineno + 1
                    ));
                };
                let name = name.trim();
                if name != "R1" && name != "B1" && name != "E1" {
                    return Err(format!(
                        "baseline line {}: unknown section [{name}] (only [R1], [B1] and [E1] are ratcheted)",
                        lineno + 1
                    ));
                }
                section = Some(name.to_string());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "baseline line {}: expected `crate = count`",
                    lineno + 1
                ));
            };
            let into = match section.as_deref() {
                Some("R1") => &mut r1,
                Some("B1") => &mut b1,
                Some("E1") => &mut e1,
                _ => {
                    return Err(format!(
                        "baseline line {}: entry outside the [R1]/[B1]/[E1] sections",
                        lineno + 1
                    ));
                }
            };
            let key = key.trim();
            let ok_key = !key.is_empty()
                && key
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
            if !ok_key {
                return Err(format!(
                    "baseline line {}: `{key}` is not a bare key",
                    lineno + 1
                ));
            }
            let count: usize = value.trim().parse().map_err(|_| {
                format!(
                    "baseline line {}: `{}` is not a count",
                    lineno + 1,
                    value.trim()
                )
            })?;
            if into.iter().any(|(c, _)| c == key) {
                return Err(format!(
                    "baseline line {}: duplicate crate `{key}`",
                    lineno + 1
                ));
            }
            into.push((key.to_string(), count));
        }
        r1.sort_by(|a, b| a.0.cmp(&b.0));
        b1.sort_by(|a, b| a.0.cmp(&b.0));
        e1.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(Baseline { r1, b1, e1 })
    }

    /// Byte-stable rendering (fixed section order, sorted crates,
    /// fixed header).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# gp-lint ratchet baseline — per-crate counts of non-test library-code\n\
             # sites for the ratcheted rules: [R1] unwrap/expect/panic!/unreachable!,\n\
             # [B1] unbounded channel/queue construction, [E1] discarded Results\n\
             # (let _ = / bare .ok();). CI fails when a count rises; run\n\
             # `gp-lint --update-baseline` after lowering one.\n\
             \n\
             [R1]\n",
        );
        let mut r1 = self.r1.clone();
        r1.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, count) in &r1 {
            out.push_str(&format!("{name} = {count}\n"));
        }
        out.push_str("\n[B1]\n");
        let mut b1 = self.b1.clone();
        b1.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, count) in &b1 {
            out.push_str(&format!("{name} = {count}\n"));
        }
        out.push_str("\n[E1]\n");
        let mut e1 = self.e1.clone();
        e1.sort_by(|a, b| a.0.cmp(&b.0));
        for (name, count) in &e1 {
            out.push_str(&format!("{name} = {count}\n"));
        }
        out
    }
}

/// Outcome of comparing one rule's observed counts to its baseline
/// section.
#[derive(Clone, Debug, Default)]
pub struct RatchetReport {
    /// Crates whose count rose: `(crate, baseline, observed)` — errors.
    pub regressed: Vec<(String, usize, usize)>,
    /// Crates whose count fell: `(crate, baseline, observed)` — notices.
    pub improved: Vec<(String, usize, usize)>,
}

impl RatchetReport {
    /// Compare observed per-crate counts against one baseline section
    /// (`baseline.r1` or `baseline.b1`).
    pub fn compare(allowed: &[(String, usize)], observed: &[(String, usize)]) -> Self {
        let mut rep = RatchetReport::default();
        for (name, n) in observed {
            let ceiling = lookup(allowed, name);
            if *n > ceiling {
                rep.regressed.push((name.clone(), ceiling, *n));
            } else if *n < ceiling {
                rep.improved.push((name.clone(), ceiling, *n));
            }
        }
        rep.regressed.sort();
        rep.improved.sort();
        rep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip_is_stable() {
        let b = Baseline::from_counts(
            &[
                ("gp-core".into(), 12),
                ("gp-lint".into(), 0),
                ("gp-tensor".into(), 3),
            ],
            &[("gp-bench".into(), 2), ("gp-core".into(), 0)],
            &[("gp-serve".into(), 4), ("gp-eval".into(), 7)],
        );
        let text = b.render();
        let b2 = Baseline::parse(&text).unwrap();
        assert_eq!(b, b2);
        assert_eq!(text, b2.render(), "render is byte-stable");
        assert_eq!(b2.get_e1("gp-eval"), 7);
    }

    #[test]
    fn pre_e1_two_section_file_still_parses() {
        // The exact shape committed before the E1 ratchet existed.
        let old = "# gp-lint ratchet baseline\n\n[R1]\ngp-core = 2\n\n[B1]\ngp-serve = 1\n";
        let b = Baseline::parse(old).unwrap();
        assert_eq!(b.get("gp-core"), 2);
        assert_eq!(b.get_b1("gp-serve"), 1);
        assert_eq!(b.get_e1("gp-core"), 0, "absent [E1] section means 0");
        // Re-rendering upgrades it to the three-section format, and the
        // upgraded text round-trips byte-stably.
        let upgraded = b.render();
        assert!(upgraded.contains("\n[E1]\n"));
        let b2 = Baseline::parse(&upgraded).unwrap();
        assert_eq!(b, b2);
        assert_eq!(upgraded, b2.render());
    }

    #[test]
    fn comments_and_whitespace_are_tolerated() {
        let text = "# header\n\n[R1]\n  gp-core = 4  # trailing note\n\ngp_x = 0\n\n[B1]\ngp-core = 1\n";
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.get("gp-core"), 4);
        assert_eq!(b.get("gp_x"), 0);
        assert_eq!(b.get_b1("gp-core"), 1);
    }

    #[test]
    fn missing_crate_defaults_to_zero() {
        let b = Baseline::parse("[R1]\ngp-core = 2\n").unwrap();
        assert_eq!(b.get("gp-new-crate"), 0);
        assert_eq!(b.get_b1("gp-core"), 0, "absent [B1] section means 0");
    }

    #[test]
    fn same_crate_may_appear_in_both_sections() {
        let b = Baseline::parse("[R1]\ngp-core = 2\n[B1]\ngp-core = 3\n").unwrap();
        assert_eq!(b.get("gp-core"), 2);
        assert_eq!(b.get_b1("gp-core"), 3);
    }

    #[test]
    fn e1_section_round_trips_and_ratchets() {
        let b = Baseline::parse("[R1]\na = 1\n[E1]\na = 3\nb = 0\n").unwrap();
        assert_eq!(b.get_e1("a"), 3);
        assert_eq!(b.get_e1("b"), 0);
        let rep = RatchetReport::compare(&b.e1, &[("a".into(), 5), ("b".into(), 0)]);
        assert_eq!(rep.regressed, vec![("a".into(), 3, 5)]);
        assert!(rep.improved.is_empty());
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        for bad in [
            "[R2]\ngp-core = 1\n",              // unknown section
            "gp-core = 1\n",                    // entry before any section
            "[R1]\ngp core = 1\n",              // not a bare key
            "[R1]\ngp-core = many\n",           // not a count
            "[R1]\ngp-core = 1\ngp-core = 2\n", // duplicate
            "[B1]\ngp-core = 1\ngp-core = 2\n", // duplicate within [B1]
            "[R1\ngp-core = 1\n",               // unterminated header
        ] {
            assert!(Baseline::parse(bad).is_err(), "{bad:?} must fail");
        }
    }

    #[test]
    fn ratchet_classifies_rises_and_falls() {
        let b = Baseline::parse("[R1]\na = 5\nb = 2\n").unwrap();
        let rep =
            RatchetReport::compare(&b.r1, &[("a".into(), 7), ("b".into(), 1), ("c".into(), 0)]);
        assert_eq!(rep.regressed, vec![("a".into(), 5, 7)]);
        assert_eq!(rep.improved, vec![("b".into(), 2, 1)]);
    }

    #[test]
    fn new_crate_with_sites_regresses_against_zero() {
        let b = Baseline::default();
        let rep = RatchetReport::compare(&b.b1, &[("fresh".into(), 1)]);
        assert_eq!(rep.regressed, vec![("fresh".into(), 0, 1)]);
    }
}
