//! Integration tests: run the linter over the deliberately-dirty fixture
//! corpus (as text — the fixtures are never compiled) and over a
//! synthetic on-disk workspace exercising the walker + ratchet end to end.

use gp_lint::{lint_source, runner, Baseline, FileKind, Options, Rule};

const DIRTY_RNG: &str = include_str!("fixtures/dirty_rng.rs");
const DIRTY_MAP: &str = include_str!("fixtures/dirty_map_iter.rs");
const DIRTY_SORT: &str = include_str!("fixtures/dirty_sort.rs");
const DIRTY_MISC: &str = include_str!("fixtures/dirty_misc.rs");

fn hits(src: &str, rule: Rule) -> Vec<usize> {
    let rep = lint_source("fixture.rs", "gp-core", FileKind::Lib, src);
    let pool = if rule == Rule::R1 {
        &rep.r1_sites
    } else {
        &rep.violations
    };
    pool.iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn catches_unseeded_randomness_in_fixture() {
    assert_eq!(hits(DIRTY_RNG, Rule::D3), vec![6, 7, 8]);
    // Nothing else fires: the seeded path is clean.
    let rep = lint_source("f.rs", "gp-core", FileKind::Lib, DIRTY_RNG);
    assert_eq!(rep.violations.len(), 3, "{:?}", rep.violations);
}

#[test]
fn catches_hashmap_iteration_in_fixture() {
    assert_eq!(hits(DIRTY_MAP, Rule::D1), vec![14, 19, 27]);
    // Point lookups (`get`) stay clean, and the same file linted as a
    // non-result-affecting crate raises nothing.
    let rep = lint_source("f.rs", "gp-obs", FileKind::Lib, DIRTY_MAP);
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
}

#[test]
fn catches_partial_cmp_sorts_in_fixture() {
    assert_eq!(hits(DIRTY_SORT, Rule::D2), vec![5, 10, 15]);
}

#[test]
fn catches_clock_panics_prints_and_bad_pragmas_in_fixture() {
    assert_eq!(
        hits(DIRTY_MISC, Rule::D4),
        vec![7, 8],
        "suppressed site must not appear"
    );
    assert_eq!(
        hits(DIRTY_MISC, Rule::R1),
        vec![15, 16, 18],
        "test-mod unwraps exempt"
    );
    assert_eq!(hits(DIRTY_MISC, Rule::O1), vec![25]);
    assert_eq!(
        hits(DIRTY_MISC, Rule::P1),
        vec![28],
        "reason-less pragma is an error"
    );
    let rep = lint_source("f.rs", "gp-core", FileKind::Lib, DIRTY_MISC);
    assert_eq!(
        rep.suppressed, 1,
        "the justified allow(D4) counts as suppressed"
    );
}

#[test]
fn fixtures_are_rule_free_when_linted_as_harness_code() {
    for src in [DIRTY_RNG, DIRTY_MAP, DIRTY_SORT] {
        let rep = lint_source("crates/x/tests/t.rs", "gp-core", FileKind::Harness, src);
        assert!(rep.violations.is_empty());
        assert!(rep.r1_sites.is_empty());
    }
    // …except pragma hygiene, which holds everywhere.
    let rep = lint_source(
        "crates/x/tests/t.rs",
        "gp-core",
        FileKind::Harness,
        DIRTY_MISC,
    );
    assert_eq!(rep.violations.len(), 1);
    assert_eq!(rep.violations[0].rule, Rule::P1);
}

#[test]
fn report_lines_are_sorted_and_stably_formatted() {
    let rep = lint_source("crates/core/src/x.rs", "gp-core", FileKind::Lib, DIRTY_MISC);
    let rendered: Vec<String> = rep.violations.iter().map(|v| v.render()).collect();
    for line in &rendered {
        assert!(
            line.starts_with("crates/core/src/x.rs:"),
            "bad prefix: {line}"
        );
    }
    assert!(rendered.iter().any(|l| l.contains("determinism[D4]")));
    assert!(rendered.iter().any(|l| l.contains("hygiene[O1]")));
    assert!(rendered.iter().any(|l| l.contains("pragma[P1]")));
}

// ---------------------------------------------------------------------------
// End-to-end: walker + crate resolution + ratchet on a synthetic workspace.

struct TempWs {
    root: std::path::PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("gp-lint-it-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let p = self.root.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(p, content).unwrap();
    }

    fn opts(&self) -> Options {
        Options {
            root: self.root.clone(),
            json: false,
            update_baseline: false,
            baseline: self.root.join(runner::BASELINE_FILE),
        }
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn mini_workspace(tag: &str) -> TempWs {
    let ws = TempWs::new(tag);
    ws.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    ws.write(
        "crates/core/Cargo.toml",
        "[package]\nname = \"gp-core\"\nversion = \"0.1.0\"\n",
    );
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
    );
    ws.write(
        "crates/core/tests/t.rs",
        "#[test]\nfn t() { assert_eq!(gp_core::f(Some(1)), 1); }\n",
    );
    // target/ and dotdirs must be skipped even when full of horrors.
    ws.write("target/debug/gen.rs", "pub fn x() { thread_rng(); }\n");
    ws.write(".hidden/x.rs", "pub fn x() { thread_rng(); }\n");
    ws
}

#[test]
fn walker_ratchet_end_to_end() {
    let ws = mini_workspace("e2e");
    // 1. No baseline: the single unwrap regresses against an implicit 0.
    let out = runner::run(&ws.opts()).unwrap();
    assert_eq!(out.files_scanned, 2, "target/ and .hidden/ are skipped");
    assert!(!out.ok());
    assert_eq!(out.r1_counts, vec![("gp-core".to_string(), 1)]);
    assert_eq!(out.ratchet.regressed, vec![("gp-core".to_string(), 0, 1)]);

    // 2. --update-baseline writes the ratchet; a rerun is clean.
    let mut upd = ws.opts();
    upd.update_baseline = true;
    let out = runner::run(&upd).unwrap();
    assert!(out.baseline_updated);
    let text = std::fs::read_to_string(ws.root.join(runner::BASELINE_FILE)).unwrap();
    let parsed = Baseline::parse(&text).unwrap();
    assert_eq!(parsed.get("gp-core"), 1);
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);

    // 3. A new unwrap in the same crate regresses the ratchet again.
    ws.write(
        "crates/core/src/extra.rs",
        "pub fn g(o: Option<u32>) -> u32 { o.expect(\"x\") }\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(!out.ok());
    assert_eq!(out.ratchet.regressed, vec![("gp-core".to_string(), 1, 2)]);
    // The summary + both candidate sites are reported.
    assert!(out
        .violations
        .iter()
        .any(|v| v.file == "lint-baseline.toml"));
    assert!(out
        .violations
        .iter()
        .any(|v| v.file == "crates/core/src/extra.rs" && v.line == 1));

    // 4. Fixing both sites makes the run pass and report an improvement.
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }\n",
    );
    ws.write(
        "crates/core/src/extra.rs",
        "pub fn g(o: Option<u32>) -> u32 { o.unwrap_or(0) }\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok());
    assert_eq!(out.ratchet.improved, vec![("gp-core".to_string(), 1, 0)]);
    let text = runner::render_text(&out);
    assert!(text.contains("--update-baseline"), "{text}");
}

#[test]
fn b1_ratchet_end_to_end() {
    let ws = mini_workspace("b1");
    ws.write(
        "crates/core/src/chan.rs",
        "pub fn c() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); drop((tx, rx)); }\n",
    );
    // Both ratchets regress against the implicit all-zero baseline.
    let out = runner::run(&ws.opts()).unwrap();
    assert_eq!(out.b1_counts, vec![("gp-core".to_string(), 1)]);
    assert_eq!(out.ratchet_b1.regressed, vec![("gp-core".to_string(), 0, 1)]);
    assert!(out.violations.iter().any(|v| v.rule == Rule::B1));

    // --update-baseline records both sections; the rerun is clean.
    let mut upd = ws.opts();
    upd.update_baseline = true;
    runner::run(&upd).unwrap();
    let text = std::fs::read_to_string(ws.root.join(runner::BASELINE_FILE)).unwrap();
    let parsed = Baseline::parse(&text).unwrap();
    assert_eq!(parsed.get("gp-core"), 1, "[R1] section: the seeded unwrap");
    assert_eq!(parsed.get_b1("gp-core"), 1, "[B1] section: the channel");
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);

    // Bounding the channel passes and reports a B1 improvement.
    ws.write(
        "crates/core/src/chan.rs",
        "pub fn c() { let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(1); drop((tx, rx)); }\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);
    assert_eq!(out.ratchet_b1.improved, vec![("gp-core".to_string(), 1, 0)]);
    let text = runner::render_text(&out);
    assert!(text.contains("unbounded-queue"), "{text}");
}

#[test]
fn hard_violations_fail_regardless_of_baseline() {
    let ws = mini_workspace("hard");
    ws.write(
        "crates/core/src/rngy.rs",
        "pub fn r() -> u64 { let mut g = thread_rng(); g.next_u64() }\n",
    );
    let mut upd = ws.opts();
    upd.update_baseline = true;
    runner::run(&upd).unwrap(); // ratchet the unwrap away
    let out = runner::run(&ws.opts()).unwrap();
    assert!(!out.ok(), "D3 is not ratcheted — it always fails");
    assert_eq!(out.violations.len(), 1);
    assert_eq!(out.violations[0].rule, Rule::D3);
    assert_eq!(out.violations[0].file, "crates/core/src/rngy.rs");
}

#[test]
fn json_report_is_well_formed_enough() {
    let ws = mini_workspace("json");
    let out = runner::run(&ws.opts()).unwrap();
    let json = runner::render_json(&out);
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("\"rule\": \"R1\""));
    assert!(json.contains("\"gp-core\": 1"));
    // Balanced braces/brackets as a cheap structural check.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
