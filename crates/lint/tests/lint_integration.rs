//! Integration tests: run the linter over the deliberately-dirty fixture
//! corpus (as text — the fixtures are never compiled) and over a
//! synthetic on-disk workspace exercising the walker + ratchet end to end.

use gp_lint::{analyze, extract, lint_source, runner, Baseline, FileKind, Options, Rule};

const DIRTY_RNG: &str = include_str!("fixtures/dirty_rng.rs");
const DIRTY_MAP: &str = include_str!("fixtures/dirty_map_iter.rs");
const DIRTY_SORT: &str = include_str!("fixtures/dirty_sort.rs");
const DIRTY_MISC: &str = include_str!("fixtures/dirty_misc.rs");
const DIRTY_CYCLE_A: &str = include_str!("fixtures/dirty_lock_cycle_a.rs");
const DIRTY_CYCLE_B: &str = include_str!("fixtures/dirty_lock_cycle_b.rs");
const DIRTY_WAIT: &str = include_str!("fixtures/dirty_wait_hold.rs");
const DIRTY_DISCARD: &str = include_str!("fixtures/dirty_discard.rs");
const DIRTY_METRIC: &str = include_str!("fixtures/dirty_metric_drift.rs");

fn hits(src: &str, rule: Rule) -> Vec<usize> {
    let rep = lint_source("fixture.rs", "gp-core", FileKind::Lib, src);
    let pool = match rule {
        Rule::R1 => &rep.r1_sites,
        Rule::E1 => &rep.e1_sites,
        _ => &rep.violations,
    };
    pool.iter()
        .filter(|v| v.rule == rule)
        .map(|v| v.line)
        .collect()
}

#[test]
fn catches_unseeded_randomness_in_fixture() {
    assert_eq!(hits(DIRTY_RNG, Rule::D3), vec![6, 7, 8]);
    // Nothing else fires: the seeded path is clean.
    let rep = lint_source("f.rs", "gp-core", FileKind::Lib, DIRTY_RNG);
    assert_eq!(rep.violations.len(), 3, "{:?}", rep.violations);
}

#[test]
fn catches_hashmap_iteration_in_fixture() {
    assert_eq!(hits(DIRTY_MAP, Rule::D1), vec![14, 19, 27]);
    // Point lookups (`get`) stay clean, and the same file linted as a
    // non-result-affecting crate raises nothing.
    let rep = lint_source("f.rs", "gp-obs", FileKind::Lib, DIRTY_MAP);
    assert!(rep.violations.is_empty(), "{:?}", rep.violations);
}

#[test]
fn catches_partial_cmp_sorts_in_fixture() {
    assert_eq!(hits(DIRTY_SORT, Rule::D2), vec![5, 10, 15]);
}

#[test]
fn catches_clock_panics_prints_and_bad_pragmas_in_fixture() {
    assert_eq!(
        hits(DIRTY_MISC, Rule::D4),
        vec![7, 8],
        "suppressed site must not appear"
    );
    assert_eq!(
        hits(DIRTY_MISC, Rule::R1),
        vec![15, 16, 18],
        "test-mod unwraps exempt"
    );
    assert_eq!(hits(DIRTY_MISC, Rule::O1), vec![25]);
    assert_eq!(
        hits(DIRTY_MISC, Rule::P1),
        vec![28],
        "reason-less pragma is an error"
    );
    let rep = lint_source("f.rs", "gp-core", FileKind::Lib, DIRTY_MISC);
    assert_eq!(
        rep.suppressed, 1,
        "the justified allow(D4) counts as suppressed"
    );
}

#[test]
fn fixtures_are_rule_free_when_linted_as_harness_code() {
    for src in [DIRTY_RNG, DIRTY_MAP, DIRTY_SORT] {
        let rep = lint_source("crates/x/tests/t.rs", "gp-core", FileKind::Harness, src);
        assert!(rep.violations.is_empty());
        assert!(rep.r1_sites.is_empty());
    }
    // …except pragma hygiene, which holds everywhere.
    let rep = lint_source(
        "crates/x/tests/t.rs",
        "gp-core",
        FileKind::Harness,
        DIRTY_MISC,
    );
    assert_eq!(rep.violations.len(), 1);
    assert_eq!(rep.violations[0].rule, Rule::P1);
}

#[test]
fn report_lines_are_sorted_and_stably_formatted() {
    let rep = lint_source("crates/core/src/x.rs", "gp-core", FileKind::Lib, DIRTY_MISC);
    let rendered: Vec<String> = rep.violations.iter().map(|v| v.render()).collect();
    for line in &rendered {
        assert!(
            line.starts_with("crates/core/src/x.rs:"),
            "bad prefix: {line}"
        );
    }
    assert!(rendered.iter().any(|l| l.contains("determinism[D4]")));
    assert!(rendered.iter().any(|l| l.contains("hygiene[O1]")));
    assert!(rendered.iter().any(|l| l.contains("pragma[P1]")));
}

// ---------------------------------------------------------------------------
// Two-pass (facts → graph) rules over the dirty cross-file fixtures.

#[test]
fn catches_two_file_lock_cycle_in_fixtures() {
    let a = extract(
        "crates/core/src/cycle_a.rs",
        "gp-core",
        FileKind::Lib,
        DIRTY_CYCLE_A,
    );
    let b = extract(
        "crates/core/src/cycle_b.rs",
        "gp-core",
        FileKind::Lib,
        DIRTY_CYCLE_B,
    );
    // Each half alone is a consistent order…
    assert!(analyze(std::slice::from_ref(&a)).violations.is_empty());
    assert!(analyze(std::slice::from_ref(&b)).violations.is_empty());
    // …and only the merged workspace pass sees the inversion.
    let out = analyze(&[a, b]);
    let c1: Vec<_> = out
        .violations
        .iter()
        .filter(|v| v.rule == Rule::C1)
        .collect();
    assert_eq!(c1.len(), 1, "{:?}", out.violations);
    let msg = &c1[0].message;
    assert!(msg.contains("lock-order cycle"), "{msg}");
    assert!(
        msg.contains("Pair::first") && msg.contains("Pair::second"),
        "full chain names both locks: {msg}"
    );
    assert!(
        msg.contains("crates/core/src/cycle_a.rs:15") && msg.contains("crates/core/src/cycle_b.rs:8"),
        "each witness edge carries file:line: {msg}"
    );
}

#[test]
fn catches_wait_holding_second_guard_in_fixture() {
    let f = extract(
        "crates/core/src/queue.rs",
        "gp-core",
        FileKind::Lib,
        DIRTY_WAIT,
    );
    let out = analyze(std::slice::from_ref(&f));
    assert!(
        out.violations.iter().any(|v| v.rule == Rule::C2
            && v.message.contains("condvar wait")
            && v.message.contains("Queue::stats")
            && v.message.contains("Queue::items")),
        "{:?}",
        out.violations
    );
    assert!(
        !out.violations.iter().any(|v| v.rule == Rule::C1),
        "the consistent stats-then-items order is not a cycle: {:?}",
        out.violations
    );
}

#[test]
fn catches_discarded_results_in_fixture() {
    assert_eq!(hits(DIRTY_DISCARD, Rule::E1), vec![6, 10]);
    let rep = lint_source("f.rs", "gp-core", FileKind::Lib, DIRTY_DISCARD);
    assert_eq!(rep.suppressed, 1, "the justified allow(E1) is counted");
    // Harness code may discard freely: nothing fires there.
    let rep = lint_source("crates/x/tests/t.rs", "gp-core", FileKind::Harness, DIRTY_DISCARD);
    assert!(rep.e1_sites.is_empty(), "{:?}", rep.e1_sites);
}

// ---------------------------------------------------------------------------
// End-to-end: walker + crate resolution + ratchet on a synthetic workspace.

struct TempWs {
    root: std::path::PathBuf,
}

impl TempWs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("gp-lint-it-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let p = self.root.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(p, content).unwrap();
    }

    fn opts(&self) -> Options {
        Options {
            root: self.root.clone(),
            json: false,
            sarif: false,
            update_baseline: false,
            baseline: self.root.join(runner::BASELINE_FILE),
            changed: None,
        }
    }
}

impl Drop for TempWs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

fn mini_workspace(tag: &str) -> TempWs {
    let ws = TempWs::new(tag);
    ws.write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    ws.write(
        "crates/core/Cargo.toml",
        "[package]\nname = \"gp-core\"\nversion = \"0.1.0\"\n",
    );
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap() }\n",
    );
    ws.write(
        "crates/core/tests/t.rs",
        "#[test]\nfn t() { assert_eq!(gp_core::f(Some(1)), 1); }\n",
    );
    // target/ and dotdirs must be skipped even when full of horrors.
    ws.write("target/debug/gen.rs", "pub fn x() { thread_rng(); }\n");
    ws.write(".hidden/x.rs", "pub fn x() { thread_rng(); }\n");
    ws
}

#[test]
fn walker_ratchet_end_to_end() {
    let ws = mini_workspace("e2e");
    // 1. No baseline: the single unwrap regresses against an implicit 0.
    let out = runner::run(&ws.opts()).unwrap();
    assert_eq!(out.files_scanned, 2, "target/ and .hidden/ are skipped");
    assert!(!out.ok());
    assert_eq!(out.r1_counts, vec![("gp-core".to_string(), 1)]);
    assert_eq!(out.ratchet.regressed, vec![("gp-core".to_string(), 0, 1)]);

    // 2. --update-baseline writes the ratchet; a rerun is clean.
    let mut upd = ws.opts();
    upd.update_baseline = true;
    let out = runner::run(&upd).unwrap();
    assert!(out.baseline_updated);
    let text = std::fs::read_to_string(ws.root.join(runner::BASELINE_FILE)).unwrap();
    let parsed = Baseline::parse(&text).unwrap();
    assert_eq!(parsed.get("gp-core"), 1);
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);

    // 3. A new unwrap in the same crate regresses the ratchet again.
    ws.write(
        "crates/core/src/extra.rs",
        "pub fn g(o: Option<u32>) -> u32 { o.expect(\"x\") }\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(!out.ok());
    assert_eq!(out.ratchet.regressed, vec![("gp-core".to_string(), 1, 2)]);
    // The summary + both candidate sites are reported.
    assert!(out
        .violations
        .iter()
        .any(|v| v.file == "lint-baseline.toml"));
    assert!(out
        .violations
        .iter()
        .any(|v| v.file == "crates/core/src/extra.rs" && v.line == 1));

    // 4. Fixing both sites makes the run pass and report an improvement.
    ws.write(
        "crates/core/src/lib.rs",
        "pub fn f(o: Option<u32>) -> u32 { o.unwrap_or(0) }\n",
    );
    ws.write(
        "crates/core/src/extra.rs",
        "pub fn g(o: Option<u32>) -> u32 { o.unwrap_or(0) }\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok());
    assert_eq!(out.ratchet.improved, vec![("gp-core".to_string(), 1, 0)]);
    let text = runner::render_text(&out);
    assert!(text.contains("--update-baseline"), "{text}");
}

#[test]
fn b1_ratchet_end_to_end() {
    let ws = mini_workspace("b1");
    ws.write(
        "crates/core/src/chan.rs",
        "pub fn c() { let (tx, rx) = std::sync::mpsc::channel::<u32>(); drop((tx, rx)); }\n",
    );
    // Both ratchets regress against the implicit all-zero baseline.
    let out = runner::run(&ws.opts()).unwrap();
    assert_eq!(out.b1_counts, vec![("gp-core".to_string(), 1)]);
    assert_eq!(out.ratchet_b1.regressed, vec![("gp-core".to_string(), 0, 1)]);
    assert!(out.violations.iter().any(|v| v.rule == Rule::B1));

    // --update-baseline records both sections; the rerun is clean.
    let mut upd = ws.opts();
    upd.update_baseline = true;
    runner::run(&upd).unwrap();
    let text = std::fs::read_to_string(ws.root.join(runner::BASELINE_FILE)).unwrap();
    let parsed = Baseline::parse(&text).unwrap();
    assert_eq!(parsed.get("gp-core"), 1, "[R1] section: the seeded unwrap");
    assert_eq!(parsed.get_b1("gp-core"), 1, "[B1] section: the channel");
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);

    // Bounding the channel passes and reports a B1 improvement.
    ws.write(
        "crates/core/src/chan.rs",
        "pub fn c() { let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(1); drop((tx, rx)); }\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);
    assert_eq!(out.ratchet_b1.improved, vec![("gp-core".to_string(), 1, 0)]);
    let text = runner::render_text(&out);
    assert!(text.contains("unbounded-queue"), "{text}");
}

#[test]
fn hard_violations_fail_regardless_of_baseline() {
    let ws = mini_workspace("hard");
    ws.write(
        "crates/core/src/rngy.rs",
        "pub fn r() -> u64 { let mut g = thread_rng(); g.next_u64() }\n",
    );
    let mut upd = ws.opts();
    upd.update_baseline = true;
    runner::run(&upd).unwrap(); // ratchet the unwrap away
    let out = runner::run(&ws.opts()).unwrap();
    assert!(!out.ok(), "D3 is not ratcheted — it always fails");
    assert_eq!(out.violations.len(), 1);
    assert_eq!(out.violations[0].rule, Rule::D3);
    assert_eq!(out.violations[0].file, "crates/core/src/rngy.rs");
}

#[test]
fn e1_ratchet_end_to_end() {
    let ws = mini_workspace("e1");
    ws.write(
        "crates/core/src/drop_err.rs",
        "pub fn d() { let _ = std::fs::remove_file(\"x\"); }\n",
    );
    // Regresses against the implicit all-zero baseline.
    let out = runner::run(&ws.opts()).unwrap();
    assert_eq!(out.e1_counts, vec![("gp-core".to_string(), 1)]);
    assert_eq!(out.ratchet_e1.regressed, vec![("gp-core".to_string(), 0, 1)]);
    assert!(out.violations.iter().any(|v| v.rule == Rule::E1));
    assert!(out
        .violations
        .iter()
        .any(|v| v.file == "crates/core/src/drop_err.rs" && v.rule == Rule::E1));

    // --update-baseline records the [E1] section byte-stably.
    let mut upd = ws.opts();
    upd.update_baseline = true;
    runner::run(&upd).unwrap();
    let text = std::fs::read_to_string(ws.root.join(runner::BASELINE_FILE)).unwrap();
    assert!(text.contains("[E1]"), "{text}");
    let parsed = Baseline::parse(&text).unwrap();
    assert_eq!(parsed.get_e1("gp-core"), 1, "[E1] records the discard");
    assert_eq!(parsed.render(), text, "render(parse(file)) == file");
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);

    // Handling the error passes and reports an E1 improvement.
    ws.write(
        "crates/core/src/drop_err.rs",
        "pub fn d() -> std::io::Result<()> { std::fs::remove_file(\"x\") }\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);
    assert_eq!(out.ratchet_e1.improved, vec![("gp-core".to_string(), 1, 0)]);
    let text = runner::render_text(&out);
    assert!(text.contains("discarded-Result"), "{text}");
}

#[test]
fn metric_manifest_drift_fails_both_directions() {
    let ws = mini_workspace("m1");
    ws.write("crates/core/src/metrics.rs", DIRTY_METRIC);
    // Ratchet away the seeded unwrap so only M1 is in play.
    let mut upd = ws.opts();
    upd.update_baseline = true;
    runner::run(&upd).unwrap();

    // 1. No METRICS.md at all: one M1 pointing at the missing manifest.
    let out = runner::run(&ws.opts()).unwrap();
    let m1: Vec<_> = out
        .violations
        .iter()
        .filter(|v| v.rule == Rule::M1)
        .collect();
    assert_eq!(m1.len(), 1, "{:?}", out.violations);
    assert_eq!(m1[0].file, runner::METRICS_FILE);
    assert!(m1[0].message.contains("does not exist"), "{}", m1[0].message);

    // 2. A manifest that misses the registered name fails at the
    //    registration site, and its stale row fails at the row.
    ws.write(
        "METRICS.md",
        "| Name | Type |\n|------|------|\n| `fixture.other` | counter |\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(
        out.violations.iter().any(|v| v.rule == Rule::M1
            && v.file == "crates/core/src/metrics.rs"
            && v.message.contains("fixture.ghost_total")),
        "{:?}",
        out.violations
    );
    assert!(
        out.violations.iter().any(|v| v.rule == Rule::M1
            && v.file == runner::METRICS_FILE
            && v.line == 3
            && v.message.contains("stale")),
        "{:?}",
        out.violations
    );

    // 3. A manifest matching the registrations exactly is clean.
    ws.write(
        "METRICS.md",
        "| Name | Type |\n|------|------|\n| `fixture.ghost_total` | counter |\n",
    );
    let out = runner::run(&ws.opts()).unwrap();
    assert!(out.ok(), "{:?}", out.violations);
}

fn git(root: &std::path::Path, args: &[&str]) {
    let st = std::process::Command::new("git")
        .args(["-c", "user.email=t@t", "-c", "user.name=t"])
        .args(args)
        .current_dir(root)
        .status()
        .unwrap();
    assert!(st.success(), "git {args:?} failed");
}

#[test]
fn changed_filter_scopes_report_to_touched_files() {
    let ws = mini_workspace("chg");
    let mut upd = ws.opts();
    upd.update_baseline = true;
    runner::run(&upd).unwrap();
    git(&ws.root, &["init", "-q"]);
    git(&ws.root, &["add", "-A"]);
    git(&ws.root, &["commit", "-qm", "seed"]);

    // A committed hard violation predates the ref…
    ws.write(
        "crates/core/src/rngy.rs",
        "pub fn r() -> u64 { let mut g = thread_rng(); g.next_u64() }\n",
    );
    git(&ws.root, &["add", "-A"]);
    git(&ws.root, &["commit", "-qm", "dirty"]);
    let mut chg = ws.opts();
    chg.changed = Some("HEAD".to_string());
    // …so a HEAD-relative run is clean even though the full run fails.
    let out = runner::run(&chg).unwrap();
    assert!(out.ok(), "{:?}", out.violations);
    let out = runner::run(&ws.opts()).unwrap();
    assert!(!out.ok(), "the full run keeps the backstop");

    // An untracked new file with a violation IS caught pre-commit.
    ws.write(
        "crates/core/src/rngy2.rs",
        "pub fn r2() -> u64 { let mut g = thread_rng(); g.next_u64() }\n",
    );
    let out = runner::run(&chg).unwrap();
    assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
    assert_eq!(out.violations[0].file, "crates/core/src/rngy2.rs");
    assert_eq!(out.violations[0].rule, Rule::D3);
}

#[test]
fn sarif_output_from_workspace_run_is_well_formed() {
    let ws = mini_workspace("sarif");
    let out = runner::run(&ws.opts()).unwrap();
    assert!(!out.ok(), "the seeded unwrap regresses");
    let s = runner::render_sarif(&out);
    assert!(s.contains("\"version\": \"2.1.0\""), "{s}");
    assert!(s.contains("sarif-2.1.0.json"), "{s}");
    assert!(s.contains("\"gp-lint\""), "{s}");
    assert!(s.contains("\"results\""), "{s}");
    assert!(s.contains("\"R1\""), "the ratchet summary lands in results: {s}");
    assert_eq!(s.matches('{').count(), s.matches('}').count());
    assert_eq!(s.matches('[').count(), s.matches(']').count());
}

#[test]
fn json_report_is_well_formed_enough() {
    let ws = mini_workspace("json");
    let out = runner::run(&ws.opts()).unwrap();
    let json = runner::render_json(&out);
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("\"rule\": \"R1\""));
    assert!(json.contains("\"gp-core\": 1"));
    // Balanced braces/brackets as a cheap structural check.
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
