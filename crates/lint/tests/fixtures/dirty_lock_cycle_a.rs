//! Dirty fixture (never compiled): file A of a two-file lock-order
//! cycle. Takes `Pair::first` before `Pair::second`; the reverse order
//! lives in `dirty_lock_cycle_b.rs`, and C1 must connect the two.

use std::sync::Mutex;

pub struct Pair {
    pub first: Mutex<u32>,
    pub second: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.first.lock().unwrap();
        let b = self.second.lock().unwrap();
        *a + *b
    }
}
