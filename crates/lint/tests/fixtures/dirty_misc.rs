// Fixture: D4 / R1 / O1 / P1 material in one file. Text-only corpus.

use std::time::{Instant, SystemTime};

pub fn timed() -> u64 {
    // D4 violation: wall clock in a result-affecting library crate.
    let t = Instant::now();
    let s = SystemTime::now();
    drop(s);
    t.elapsed().as_nanos() as u64
}

pub fn risky(o: Option<u32>) -> u32 {
    // R1 sites: unwrap, expect, panic!.
    let a = o.unwrap();
    let b = o.expect("present");
    if a != b {
        panic!("impossible");
    }
    a
}

pub fn noisy() {
    // O1 violation.
    println!("debug output from a library");
}

// gp-lint: allow(D1)
pub fn bad_pragma_above() {}

pub fn suppressed() -> u64 {
    // gp-lint: allow(D4) — feeds a diagnostics field only, never a result
    let t = SystemTime::now();
    t.duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        None::<u32>.unwrap_or(1);
        Some(2u32).unwrap();
    }
}
