//! Dirty fixture (never compiled): a condvar wait that re-acquires one
//! lock while a guard of a *different* lock stays live — the classic
//! shape C2 exists for. A lost wakeup here stalls every `stats` user.

use std::sync::{Condvar, Mutex};

pub struct Queue {
    pub items: Mutex<Vec<u32>>,
    pub stats: Mutex<u64>,
    pub ready: Condvar,
}

impl Queue {
    pub fn drain_counted(&self) -> u64 {
        let mut count = self.stats.lock().unwrap();
        let mut g = self.items.lock().unwrap();
        while g.is_empty() {
            g = self.ready.wait(g).unwrap();
        }
        *count += g.len() as u64;
        g.clear();
        *count
    }
}
