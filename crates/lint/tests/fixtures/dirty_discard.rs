//! Dirty fixture (never compiled): swallowed `Result`s for E1 — one
//! `let _ =` bind, one bare `.ok();`, and one justified suppression
//! that must count as suppressed rather than vanish.

pub fn persist(path: &std::path::Path, data: &[u8]) {
    let _ = std::fs::write(path, data);
}

pub fn evict(path: &std::path::Path) {
    std::fs::remove_file(path).ok();
}

pub fn cleanup(path: &std::path::Path) {
    // gp-lint: allow(E1) — best-effort temp cleanup; a leftover file is re-deleted on the next run
    let _ = std::fs::remove_file(path);
}
