// Fixture: D1 violations — hash-order iteration in a result-affecting
// crate. Fed to the linter as text, never compiled.

use std::collections::{HashMap, HashSet};

pub struct Scores {
    by_node: HashMap<u64, f32>,
    seen: HashSet<u64>,
}

impl Scores {
    pub fn total(&self) -> f32 {
        // Violation: float accumulation in hash order.
        self.by_node.values().sum()
    }

    pub fn first_seen(&self) -> Option<u64> {
        // Violation: `for .. in &set` walks hash order.
        for id in &self.seen {
            return Some(*id);
        }
        None
    }

    pub fn drained(&mut self) -> Vec<(u64, f32)> {
        // Violation: drain order is hash order.
        self.by_node.drain().collect()
    }

    pub fn lookup(&self, id: u64) -> Option<f32> {
        // No violation: point lookups are order-free.
        self.by_node.get(&id).copied()
    }
}
