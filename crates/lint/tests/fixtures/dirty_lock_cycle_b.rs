//! Dirty fixture (never compiled): file B of the two-file lock-order
//! cycle — takes `Pair::second` before `Pair::first`, closing the loop
//! opened by `dirty_lock_cycle_a.rs`. Guard identity is type+field
//! path, so this file needs no struct definition of its own.

pub fn backward(p: &Pair) -> u32 {
    let b = p.second.lock().unwrap();
    let a = p.first.lock().unwrap();
    *b - *a
}
