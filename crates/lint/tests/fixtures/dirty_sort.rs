// Fixture: D2 violations — partial_cmp comparators. Text-only corpus.

pub fn rank(scores: &mut Vec<(usize, f32)>) {
    // Violation: NaN turns this comparator order-dependent.
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn best(xs: &[f32]) -> Option<f32> {
    // Violation: max_by with partial_cmp.
    xs.iter().copied().max_by(|a, b| a.partial_cmp(b).unwrap())
}

pub fn bare(a: f32, b: f32) -> std::cmp::Ordering {
    // Violation: bare partial_cmp().unwrap() panics on NaN.
    a.partial_cmp(&b).unwrap()
}

pub fn fine(scores: &mut Vec<(usize, f32)>) -> Option<std::cmp::Ordering> {
    // No violation: total_cmp comparator, and a standalone partial_cmp
    // whose Option is handled by the caller.
    scores.sort_by(|a, b| a.1.total_cmp(&b.1));
    scores.first().map(|a| a.1.total_cmp(&1.0))
}
