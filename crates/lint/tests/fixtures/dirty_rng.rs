// Fixture: every line here is a deliberate D3 violation.
// This file is NOT compiled — the integration test feeds it to the
// linter as text. The walker skips crates/lint/tests/fixtures entirely.

pub fn roll() -> f32 {
    let mut rng = thread_rng();
    let seeded_elsewhere = StdRng::from_entropy();
    let x: f32 = rand::random();
    drop(seeded_elsewhere);
    rng.r#gen()
}

pub fn seeded_ok(seed: u64) -> StdRng {
    // A seeded generator is the sanctioned pattern — no violation here.
    StdRng::seed_from_u64(seed)
}
