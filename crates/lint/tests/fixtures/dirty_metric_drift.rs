//! Dirty fixture (never compiled): registers a gp-obs metric name that
//! no manifest documents. The M1 integration test drops this file into
//! a synthetic workspace with and without a matching `METRICS.md` row
//! to prove both drift directions fail.

pub static GHOST_TOTAL: Counter = Counter::new("fixture.ghost_total");

pub fn observe(n: u64) {
    GHOST_TOTAL.add(n);
}
