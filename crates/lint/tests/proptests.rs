//! Property tests for the token scanner: on *arbitrary* input — not
//! just valid Rust — scanning never panics, preserves line structure,
//! and is idempotent (stripped output re-strips to itself).
//!
//! These mirror the deterministic xorshift fuzz test in
//! `scanner::tests` with proptest's shrinking on top; they only build
//! where the registry is reachable (CI), like the other crates'
//! proptest suites.

use gp_lint::{lint_source, scan, FileKind};
use proptest::prelude::*;

/// Token soup biased toward the scanner's tricky atoms.
fn soup() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("\"".to_string()),
        Just("'".to_string()),
        Just("\\".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("r#ident".to_string()),
        Just("b\"".to_string()),
        Just("br##\"".to_string()),
        Just("//".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("\n".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just(";".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("mod tests".to_string()),
        Just("'a".to_string()),
        Just("'\\''".to_string()),
        Just("gp-lint: allow(D1) — reason".to_string()),
        Just("partial_cmp".to_string()),
        Just(".unwrap()".to_string()),
        "[ -~]{0,6}",
        "\\PC{0,4}",
    ];
    proptest::collection::vec(atom, 0..64).prop_map(|v| v.concat())
}

proptest! {
    #[test]
    fn scan_never_panics_and_preserves_lines(src in soup()) {
        let out = scan(&src);
        prop_assert_eq!(
            out.code.chars().filter(|&c| c == '\n').count(),
            src.chars().filter(|&c| c == '\n').count(),
            "stripping must keep the newline structure"
        );
        prop_assert_eq!(out.in_test.len(), out.module_path.len());
    }

    #[test]
    fn scan_is_idempotent(src in soup()) {
        let once = scan(&src);
        let twice = scan(&once.code);
        prop_assert_eq!(&once.code, &twice.code);
        prop_assert_eq!(&once.in_test, &twice.in_test);
    }

    #[test]
    fn lint_never_panics_on_soup(src in soup()) {
        // Full rule pass on garbage: must terminate without panicking,
        // for every file kind.
        for kind in [FileKind::Lib, FileKind::Bin, FileKind::Harness] {
            let _ = lint_source("soup.rs", "gp-core", kind, &src);
        }
    }
}
