//! Property tests for the token scanner: on *arbitrary* input — not
//! just valid Rust — scanning never panics, preserves line structure,
//! and is idempotent (stripped output re-strips to itself).
//!
//! These mirror the deterministic xorshift fuzz test in
//! `scanner::tests` with proptest's shrinking on top; they only build
//! where the registry is reachable (CI), like the other crates'
//! proptest suites.

use gp_lint::{analyze, extract, lint_source, scan, FileKind};
use proptest::prelude::*;

/// Token soup biased toward the scanner's tricky atoms.
fn soup() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("\"".to_string()),
        Just("'".to_string()),
        Just("\\".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("r#ident".to_string()),
        Just("b\"".to_string()),
        Just("br##\"".to_string()),
        Just("//".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("\n".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just(";".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("mod tests".to_string()),
        Just("'a".to_string()),
        Just("'\\''".to_string()),
        Just("gp-lint: allow(D1) — reason".to_string()),
        Just("partial_cmp".to_string()),
        Just(".unwrap()".to_string()),
        "[ -~]{0,6}",
        "\\PC{0,4}",
    ];
    proptest::collection::vec(atom, 0..64).prop_map(|v| v.concat())
}

/// Soup biased toward the fact extractor's atoms on top of the
/// scanner's: fn/struct/impl headers, lock and condvar shapes, call
/// chains, discards, metric registrations.
fn fact_soup() -> impl Strategy<Value = String> {
    let atom = prop_oneof![
        Just("fn f".to_string()),
        Just("fn".to_string()),
        Just("struct S".to_string()),
        Just("impl S".to_string()),
        Just("for".to_string()),
        Just("static X:".to_string()),
        Just("Mutex<".to_string()),
        Just("RwLock<State>".to_string()),
        Just("Condvar".to_string()),
        Just("MutexGuard<'_, T>".to_string()),
        Just("(&self)".to_string()),
        Just("self.state.lock()".to_string()),
        Just(".lock()".to_string()),
        Just(".read(".to_string()),
        Just(".write(".to_string()),
        Just(".wait(g)".to_string()),
        Just(".wait_timeout(".to_string()),
        Just(".join()".to_string()),
        Just("let g =".to_string()),
        Just("let mut".to_string()),
        Just("let _ =".to_string()),
        Just(".ok();".to_string()),
        Just("drop(g)".to_string()),
        Just("Counter::new(\"m.x\")".to_string()),
        Just("-> MutexGuard<'_, u32>".to_string()),
        Just("::".to_string()),
        Just("<".to_string()),
        Just(">".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just(";".to_string()),
        Just(",".to_string()),
        Just("\n".to_string()),
        Just("\"".to_string()),
        Just("/*".to_string()),
        Just("gp-lint: allow(C2) — reason".to_string()),
        "[ -~]{0,6}",
        "\\PC{0,4}",
    ];
    proptest::collection::vec(atom, 0..64).prop_map(|v| v.concat())
}

proptest! {
    #[test]
    fn scan_never_panics_and_preserves_lines(src in soup()) {
        let out = scan(&src);
        prop_assert_eq!(
            out.code.chars().filter(|&c| c == '\n').count(),
            src.chars().filter(|&c| c == '\n').count(),
            "stripping must keep the newline structure"
        );
        prop_assert_eq!(out.in_test.len(), out.module_path.len());
    }

    #[test]
    fn scan_is_idempotent(src in soup()) {
        let once = scan(&src);
        let twice = scan(&once.code);
        prop_assert_eq!(&once.code, &twice.code);
        prop_assert_eq!(&once.in_test, &twice.in_test);
    }

    #[test]
    fn lint_never_panics_on_soup(src in soup()) {
        // Full rule pass on garbage: must terminate without panicking,
        // for every file kind.
        for kind in [FileKind::Lib, FileKind::Bin, FileKind::Harness] {
            let _ = lint_source("soup.rs", "gp-core", kind, &src);
        }
    }

    #[test]
    fn fact_extraction_never_panics_and_is_deterministic(src in fact_soup()) {
        // Pass 1 on garbage: must terminate, and two extractions of the
        // same bytes must agree fact-for-fact (the ratchet and the
        // lock-order graph both depend on that stability).
        let f1 = extract("soup.rs", "gp-core", FileKind::Lib, &src);
        let f2 = extract("soup.rs", "gp-core", FileKind::Lib, &src);
        prop_assert_eq!(&f1, &f2);
        // And pass 2 must swallow whatever pass 1 produced.
        let _ = analyze(&[f1, f2]);
    }

    #[test]
    fn fact_extraction_never_panics_on_scanner_soup(src in soup()) {
        // The scanner-focused soup exercises string/comment edge cases
        // the fact soup does not.
        let f = extract("soup.rs", "gp-core", FileKind::Lib, &src);
        let _ = analyze(std::slice::from_ref(&f));
    }
}
