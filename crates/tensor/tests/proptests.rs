//! Property-based tests: algebra laws and randomized finite-difference
//! gradient checks over arbitrary shapes.

use gp_tensor::{EdgeList, Tape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

fn shape_strategy() -> impl Strategy<Value = (usize, usize)> {
    (1usize..5, 1usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_add(
        (n, k) in shape_strategy(),
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut mk = |r: usize, c: usize| {
            Tensor::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect())
        };
        let a = mk(n, k);
        let b = mk(n, k);
        let c = mk(k, m);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involution((n, m) in shape_strategy(), t in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| tensor_strategy(r, c))) {
        let _ = (n, m);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn softmax_rows_are_distributions(t in (1usize..6, 2usize..6).prop_flat_map(|(r, c)| tensor_strategy(r, c))) {
        let s = t.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn gather_rows_preserves_content(
        t in (2usize..6, 1usize..4).prop_flat_map(|(r, c)| tensor_strategy(r, c)),
        idx_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(idx_seed);
        let idx: Vec<usize> = (0..4).map(|_| rng.gen_range(0..t.rows())).collect();
        let g = t.gather_rows(&idx);
        for (out_r, &src_r) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_r), t.row(src_r));
        }
    }

    #[test]
    fn linear_layer_gradient_matches_finite_difference(
        x in tensor_strategy(2, 3),
        w in tensor_strategy(3, 2),
    ) {
        let eval = |xv: &Tensor, wv: &Tensor| -> (f32, Tensor) {
            let mut tape = Tape::new();
            let xi = tape.input(xv.clone());
            let wi = tape.input(wv.clone());
            let y = tape.matmul(xi, wi);
            let s = tape.tanh(y);
            let loss = tape.mean_all(s);
            let g = tape.backward(loss).get(wi);
            (tape.value(loss).item(), g)
        };
        let (_, analytic) = eval(&x, &w);
        let eps = 1e-2f32;
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let (lp, _) = eval(&x, &wp);
            let (lm, _) = eval(&x, &wm);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            prop_assert!((a - numeric).abs() < 5e-2 * (1.0 + numeric.abs()),
                "elem {}: analytic {} numeric {}", i, a, numeric);
        }
    }

    #[test]
    fn spmm_without_weights_equals_unit_weights(
        x in tensor_strategy(4, 3),
    ) {
        let edges = EdgeList::from_pairs([(0u32, 1u32), (2, 3), (3, 0), (1, 1), (2, 0)]).into_shared();
        let mut t1 = Tape::new();
        let xi = t1.input(x.clone());
        let y1 = t1.spmm(edges.clone(), xi, None, 4);
        let mut t2 = Tape::new();
        let xi2 = t2.input(x.clone());
        let ones = t2.input(Tensor::full(edges.len(), 1, 1.0));
        let y2 = t2.spmm(edges.clone(), xi2, Some(ones), 4);
        prop_assert_eq!(t1.value(y1).clone(), t2.value(y2).clone());
    }

    #[test]
    fn l2_normalized_rows_are_unit_or_zero(t in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| tensor_strategy(r, c))) {
        let n = t.l2_normalize_rows(1e-8);
        for r in 0..n.rows() {
            let norm: f32 = n.row(r).iter().map(|&x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_is_bit_identical_to_serial(
        n in 1usize..24,
        k in 1usize..12,
        m in 1usize..12,
        workers in 2usize..9,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, n, k, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, k, m, 1.0);
        let serial = a.matmul_workers(&b, 1);
        let blocked = a.matmul_workers(&b, workers);
        for (x, y) in serial.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (workers={})", workers);
        }
    }

    #[test]
    fn blocked_matmul_tb_is_bit_identical_to_serial(
        n in 1usize..24,
        k in 1usize..12,
        m in 1usize..12,
        workers in 2usize..9,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, n, k, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, m, k, 1.0);
        let serial = a.matmul_tb_workers(&b, 1);
        let blocked = a.matmul_tb_workers(&b, workers);
        for (x, y) in serial.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (workers={})", workers);
        }
    }

    #[test]
    fn matmul_ta_is_bit_identical_across_parallelism(
        n in 2usize..8,
        m in 2usize..8,
        workers in 2usize..9,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        // Explicit worker counts (no process-wide knob: mutating that from
        // a concurrently-run test raced against its siblings). k is large
        // enough that the blocked path is the one a real pool would take.
        let k = gp_tensor::parallel::MIN_PARALLEL_WORK / (n * m) + 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, k, n, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, k, m, 1.0);
        let serial = a.matmul_ta_workers(&b, 1);
        let blocked = a.matmul_ta_workers(&b, workers);
        for (x, y) in serial.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (workers={})", workers);
        }
    }

    #[test]
    fn pooled_kernels_are_bit_identical_to_serial(
        n in 2usize..24,
        k in 1usize..12,
        m in 1usize..12,
        budget in 2usize..6,
        seed in any::<u64>(),
    ) {
        use gp_tensor::WorkerPool;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, n, k, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, k, m, 1.0);
        let serial = a.matmul_workers(&b, 1);
        let pool = WorkerPool::with_budget(budget);
        let _ctx = pool.install();
        let pooled = a.matmul_workers(&b, budget);
        for (x, y) in serial.as_slice().iter().zip(pooled.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (budget={})", budget);
        }
    }
}

/// Random edge-list strategy over `n` nodes.
fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spmm_edge_weight_gradients_match_finite_difference(
        pairs in edges_strategy(4),
        x in tensor_strategy(4, 2),
        w_raw in proptest::collection::vec(-1.0f32..1.0, 12),
    ) {
        let edges = EdgeList::from_pairs(pairs.clone()).into_shared();
        let e = edges.len();
        let w = Tensor::from_vec(e, 1, w_raw[..e].to_vec());

        let eval = |wv: &Tensor| -> (f32, Tensor) {
            let mut tape = Tape::new();
            let xi = tape.input(x.clone());
            let wi = tape.input(wv.clone());
            let y = tape.spmm(edges.clone(), xi, Some(wi), 4);
            let s = tape.tanh(y);
            let loss = tape.mean_all(s);
            let g = tape.backward(loss).get(wi);
            (tape.value(loss).item(), g)
        };
        let (_, analytic) = eval(&w);
        let eps = 1e-2f32;
        for i in 0..e {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let numeric = (eval(&wp).0 - eval(&wm).0) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            prop_assert!((a - numeric).abs() < 5e-2 * (1.0 + numeric.abs()),
                "edge {}: analytic {} numeric {}", i, a, numeric);
        }
    }

    #[test]
    fn edge_softmax_gradients_match_finite_difference(
        pairs in edges_strategy(3),
        s_raw in proptest::collection::vec(-2.0f32..2.0, 12),
    ) {
        let edges = EdgeList::from_pairs(pairs).into_shared();
        let e = edges.len();
        let scores = Tensor::from_vec(e, 1, s_raw[..e].to_vec());

        let eval = |sv: &Tensor| -> (f32, Tensor) {
            let mut tape = Tape::new();
            let si = tape.input(sv.clone());
            let p = tape.edge_softmax(edges.clone(), si);
            let sq = tape.mul(p, p);
            let loss = tape.sum_all(sq);
            let g = tape.backward(loss).get(si);
            (tape.value(loss).item(), g)
        };
        let (_, analytic) = eval(&scores);
        let eps = 1e-2f32;
        for i in 0..e {
            let mut sp = scores.clone();
            sp.as_mut_slice()[i] += eps;
            let mut sm = scores.clone();
            sm.as_mut_slice()[i] -= eps;
            let numeric = (eval(&sp).0 - eval(&sm).0) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            prop_assert!((a - numeric).abs() < 5e-2 * (1.0 + numeric.abs()),
                "edge {}: analytic {} numeric {}", i, a, numeric);
        }
    }

    #[test]
    fn edge_softmax_is_shift_invariant_per_group(
        pairs in edges_strategy(3),
        s_raw in proptest::collection::vec(-2.0f32..2.0, 12),
        shift in -5.0f32..5.0,
    ) {
        let edges = EdgeList::from_pairs(pairs).into_shared();
        let e = edges.len();
        let scores = Tensor::from_vec(e, 1, s_raw[..e].to_vec());
        let run = |sv: &Tensor| {
            let mut tape = Tape::new();
            let si = tape.input(sv.clone());
            let p = tape.edge_softmax(edges.clone(), si);
            tape.value(p).clone()
        };
        let base = run(&scores);
        let shifted = run(&scores.map(|x| x + shift));
        for (a, b) in base.as_slice().iter().zip(shifted.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}

// ---------------------------------------------------------------------------
// Backend equivalence: the Fast (tiled/SIMD) kernels must stay within
// float tolerance of the bit-exact Reference kernels on every shape —
// rectangular, tile-sized, and degenerate (0-row, 1-col, non-multiples
// of the 8/16-lane tiles) — and stay bit-identical to themselves across
// worker counts.

use gp_tensor::Backend;

/// |fast - reference| within mixed absolute/relative tolerance.
fn close_enough(fast: f32, reference: f32) -> bool {
    (fast - reference).abs() <= 1e-4 + 1e-4 * reference.abs()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fast_matmul_is_tolerance_equal_to_reference(
        n in 0usize..34,
        k in 0usize..34,
        m in 0usize..34,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec(n, k, (0..n * k).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let b = Tensor::from_vec(k, m, (0..k * m).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let reference = {
            let _g = Backend::Reference.install();
            a.matmul(&b)
        };
        let fast = {
            let _g = Backend::Fast.install();
            a.matmul(&b)
        };
        for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!(close_enough(*f, *r), "{f} vs {r} ({n}x{k}x{m})");
        }
    }

    #[test]
    fn fast_matmul_tb_and_ta_are_tolerance_equal_to_reference(
        n in 1usize..26,
        k in 1usize..70,
        m in 1usize..26,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec(n, k, (0..n * k).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let bt = Tensor::from_vec(m, k, (0..m * k).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let at = Tensor::from_vec(k, n, (0..k * n).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let b = Tensor::from_vec(k, m, (0..k * m).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let (tb_ref, ta_ref) = {
            let _g = Backend::Reference.install();
            (a.matmul_tb(&bt), at.matmul_ta(&b))
        };
        let (tb_fast, ta_fast) = {
            let _g = Backend::Fast.install();
            (a.matmul_tb(&bt), at.matmul_ta(&b))
        };
        for (f, r) in tb_fast.as_slice().iter().zip(tb_ref.as_slice()) {
            prop_assert!(close_enough(*f, *r), "tb: {f} vs {r}");
        }
        for (f, r) in ta_fast.as_slice().iter().zip(ta_ref.as_slice()) {
            prop_assert!(close_enough(*f, *r), "ta: {f} vs {r}");
        }
    }

    #[test]
    fn fast_cosine_and_norm_are_tolerance_equal_to_reference(
        xs in proptest::collection::vec(-2.0f32..2.0, 1..70),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ys: Vec<f32> = (0..xs.len()).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let (cos_ref, norm_ref) = {
            let _g = Backend::Reference.install();
            (gp_tensor::cosine_slices(&xs, &ys), gp_tensor::l2_norm(&xs))
        };
        let (cos_fast, norm_fast) = {
            let _g = Backend::Fast.install();
            (gp_tensor::cosine_slices(&xs, &ys), gp_tensor::l2_norm(&xs))
        };
        prop_assert!(close_enough(cos_fast, cos_ref), "{cos_fast} vs {cos_ref}");
        prop_assert!(close_enough(norm_fast, norm_ref), "{norm_fast} vs {norm_ref}");
    }

    #[test]
    fn fast_is_bit_identical_across_worker_counts(
        n in 1usize..34,
        k in 1usize..34,
        m in 1usize..34,
        workers in 2usize..6,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Tensor::from_vec(n, k, (0..n * k).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let b = Tensor::from_vec(k, m, (0..k * m).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let _g = Backend::Fast.install();
        let serial = a.matmul_workers(&b, 1);
        let pool = gp_tensor::WorkerPool::with_budget(workers);
        let _ctx = pool.install();
        let pooled = a.matmul_workers(&b, workers);
        for (s, p) in serial.as_slice().iter().zip(pooled.as_slice()) {
            prop_assert_eq!(s.to_bits(), p.to_bits(),
                "fast kernels must not let worker count change bits");
        }
    }

    #[test]
    fn fast_spmm_and_edge_softmax_are_tolerance_equal_to_reference(
        pairs in edges_strategy(4),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let edges = EdgeList::from_pairs(pairs).into_shared();
        let e = edges.len();
        let n = edges.min_num_nodes();
        let x = Tensor::from_vec(n, 3, (0..n * 3).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let w = Tensor::from_vec(e, 1, (0..e).map(|_| rng.gen_range(-2.0..2.0)).collect());
        let run = |backend: Backend| {
            let _g = backend.install();
            let mut tape = Tape::new();
            let xi = tape.input(x.clone());
            let wi = tape.input(w.clone());
            let agg = tape.spmm(edges.clone(), xi, Some(wi), n);
            let soft = tape.edge_softmax(edges.clone(), wi);
            (tape.value(agg).clone(), tape.value(soft).clone())
        };
        let (agg_ref, soft_ref) = run(Backend::Reference);
        let (agg_fast, soft_fast) = run(Backend::Fast);
        for (f, r) in agg_fast.as_slice().iter().zip(agg_ref.as_slice()) {
            prop_assert!(close_enough(*f, *r), "spmm: {f} vs {r}");
        }
        for (f, r) in soft_fast.as_slice().iter().zip(soft_ref.as_slice()) {
            prop_assert!(close_enough(*f, *r), "edge_softmax: {f} vs {r}");
        }
    }
}
