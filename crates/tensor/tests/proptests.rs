//! Property-based tests: algebra laws and randomized finite-difference
//! gradient checks over arbitrary shapes.

use gp_tensor::{EdgeList, Tape, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(rows, cols, v))
}

fn shape_strategy() -> impl Strategy<Value = (usize, usize)> {
    (1usize..5, 1usize..5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_add(
        (n, k) in shape_strategy(),
        m in 1usize..5,
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut mk = |r: usize, c: usize| {
            Tensor::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect())
        };
        let a = mk(n, k);
        let b = mk(n, k);
        let c = mk(k, m);
        let lhs = a.add(&b).matmul(&c);
        let rhs = a.matmul(&c).add(&b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn transpose_is_involution((n, m) in shape_strategy(), t in (1usize..5, 1usize..5).prop_flat_map(|(r, c)| tensor_strategy(r, c))) {
        let _ = (n, m);
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn softmax_rows_are_distributions(t in (1usize..6, 2usize..6).prop_flat_map(|(r, c)| tensor_strategy(r, c))) {
        let s = t.softmax_rows();
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(s.row(r).iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn gather_rows_preserves_content(
        t in (2usize..6, 1usize..4).prop_flat_map(|(r, c)| tensor_strategy(r, c)),
        idx_seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(idx_seed);
        let idx: Vec<usize> = (0..4).map(|_| rng.gen_range(0..t.rows())).collect();
        let g = t.gather_rows(&idx);
        for (out_r, &src_r) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_r), t.row(src_r));
        }
    }

    #[test]
    fn linear_layer_gradient_matches_finite_difference(
        x in tensor_strategy(2, 3),
        w in tensor_strategy(3, 2),
    ) {
        let eval = |xv: &Tensor, wv: &Tensor| -> (f32, Tensor) {
            let mut tape = Tape::new();
            let xi = tape.input(xv.clone());
            let wi = tape.input(wv.clone());
            let y = tape.matmul(xi, wi);
            let s = tape.tanh(y);
            let loss = tape.mean_all(s);
            let g = tape.backward(loss).get(wi);
            (tape.value(loss).item(), g)
        };
        let (_, analytic) = eval(&x, &w);
        let eps = 1e-2f32;
        for i in 0..w.len() {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let (lp, _) = eval(&x, &wp);
            let (lm, _) = eval(&x, &wm);
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            prop_assert!((a - numeric).abs() < 5e-2 * (1.0 + numeric.abs()),
                "elem {}: analytic {} numeric {}", i, a, numeric);
        }
    }

    #[test]
    fn spmm_without_weights_equals_unit_weights(
        x in tensor_strategy(4, 3),
    ) {
        let edges = EdgeList::from_pairs([(0u32, 1u32), (2, 3), (3, 0), (1, 1), (2, 0)]).into_shared();
        let mut t1 = Tape::new();
        let xi = t1.input(x.clone());
        let y1 = t1.spmm(edges.clone(), xi, None, 4);
        let mut t2 = Tape::new();
        let xi2 = t2.input(x.clone());
        let ones = t2.input(Tensor::full(edges.len(), 1, 1.0));
        let y2 = t2.spmm(edges.clone(), xi2, Some(ones), 4);
        prop_assert_eq!(t1.value(y1).clone(), t2.value(y2).clone());
    }

    #[test]
    fn l2_normalized_rows_are_unit_or_zero(t in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| tensor_strategy(r, c))) {
        let n = t.l2_normalize_rows(1e-8);
        for r in 0..n.rows() {
            let norm: f32 = n.row(r).iter().map(|&x| x * x).sum::<f32>().sqrt();
            prop_assert!(norm < 1e-6 || (norm - 1.0).abs() < 1e-4);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_is_bit_identical_to_serial(
        n in 1usize..24,
        k in 1usize..12,
        m in 1usize..12,
        workers in 2usize..9,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, n, k, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, k, m, 1.0);
        let serial = a.matmul_workers(&b, 1);
        let blocked = a.matmul_workers(&b, workers);
        for (x, y) in serial.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (workers={})", workers);
        }
    }

    #[test]
    fn blocked_matmul_tb_is_bit_identical_to_serial(
        n in 1usize..24,
        k in 1usize..12,
        m in 1usize..12,
        workers in 2usize..9,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, n, k, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, m, k, 1.0);
        let serial = a.matmul_tb_workers(&b, 1);
        let blocked = a.matmul_tb_workers(&b, workers);
        for (x, y) in serial.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (workers={})", workers);
        }
    }

    #[test]
    fn matmul_ta_is_bit_identical_across_parallelism(
        n in 2usize..8,
        m in 2usize..8,
        workers in 2usize..9,
        seed in any::<u64>(),
    ) {
        use rand::SeedableRng;
        // Explicit worker counts (no process-wide knob: mutating that from
        // a concurrently-run test raced against its siblings). k is large
        // enough that the blocked path is the one a real pool would take.
        let k = gp_tensor::parallel::MIN_PARALLEL_WORK / (n * m) + 1;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, k, n, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, k, m, 1.0);
        let serial = a.matmul_ta_workers(&b, 1);
        let blocked = a.matmul_ta_workers(&b, workers);
        for (x, y) in serial.as_slice().iter().zip(blocked.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (workers={})", workers);
        }
    }

    #[test]
    fn pooled_kernels_are_bit_identical_to_serial(
        n in 2usize..24,
        k in 1usize..12,
        m in 1usize..12,
        budget in 2usize..6,
        seed in any::<u64>(),
    ) {
        use gp_tensor::WorkerPool;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = gp_tensor::rng::randn(&mut rng, n, k, 1.0);
        let b = gp_tensor::rng::randn(&mut rng, k, m, 1.0);
        let serial = a.matmul_workers(&b, 1);
        let pool = WorkerPool::with_budget(budget);
        let _ctx = pool.install();
        let pooled = a.matmul_workers(&b, budget);
        for (x, y) in serial.as_slice().iter().zip(pooled.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "{x} vs {y} (budget={})", budget);
        }
    }
}

/// Random edge-list strategy over `n` nodes.
fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn spmm_edge_weight_gradients_match_finite_difference(
        pairs in edges_strategy(4),
        x in tensor_strategy(4, 2),
        w_raw in proptest::collection::vec(-1.0f32..1.0, 12),
    ) {
        let edges = EdgeList::from_pairs(pairs.clone()).into_shared();
        let e = edges.len();
        let w = Tensor::from_vec(e, 1, w_raw[..e].to_vec());

        let eval = |wv: &Tensor| -> (f32, Tensor) {
            let mut tape = Tape::new();
            let xi = tape.input(x.clone());
            let wi = tape.input(wv.clone());
            let y = tape.spmm(edges.clone(), xi, Some(wi), 4);
            let s = tape.tanh(y);
            let loss = tape.mean_all(s);
            let g = tape.backward(loss).get(wi);
            (tape.value(loss).item(), g)
        };
        let (_, analytic) = eval(&w);
        let eps = 1e-2f32;
        for i in 0..e {
            let mut wp = w.clone();
            wp.as_mut_slice()[i] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[i] -= eps;
            let numeric = (eval(&wp).0 - eval(&wm).0) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            prop_assert!((a - numeric).abs() < 5e-2 * (1.0 + numeric.abs()),
                "edge {}: analytic {} numeric {}", i, a, numeric);
        }
    }

    #[test]
    fn edge_softmax_gradients_match_finite_difference(
        pairs in edges_strategy(3),
        s_raw in proptest::collection::vec(-2.0f32..2.0, 12),
    ) {
        let edges = EdgeList::from_pairs(pairs).into_shared();
        let e = edges.len();
        let scores = Tensor::from_vec(e, 1, s_raw[..e].to_vec());

        let eval = |sv: &Tensor| -> (f32, Tensor) {
            let mut tape = Tape::new();
            let si = tape.input(sv.clone());
            let p = tape.edge_softmax(edges.clone(), si);
            let sq = tape.mul(p, p);
            let loss = tape.sum_all(sq);
            let g = tape.backward(loss).get(si);
            (tape.value(loss).item(), g)
        };
        let (_, analytic) = eval(&scores);
        let eps = 1e-2f32;
        for i in 0..e {
            let mut sp = scores.clone();
            sp.as_mut_slice()[i] += eps;
            let mut sm = scores.clone();
            sm.as_mut_slice()[i] -= eps;
            let numeric = (eval(&sp).0 - eval(&sm).0) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            prop_assert!((a - numeric).abs() < 5e-2 * (1.0 + numeric.abs()),
                "edge {}: analytic {} numeric {}", i, a, numeric);
        }
    }

    #[test]
    fn edge_softmax_is_shift_invariant_per_group(
        pairs in edges_strategy(3),
        s_raw in proptest::collection::vec(-2.0f32..2.0, 12),
        shift in -5.0f32..5.0,
    ) {
        let edges = EdgeList::from_pairs(pairs).into_shared();
        let e = edges.len();
        let scores = Tensor::from_vec(e, 1, s_raw[..e].to_vec());
        let run = |sv: &Tensor| {
            let mut tape = Tape::new();
            let si = tape.input(sv.clone());
            let p = tape.edge_softmax(edges.clone(), si);
            tape.value(p).clone()
        };
        let base = run(&scores);
        let shifted = run(&scores.map(|x| x + shift));
        for (a, b) in base.as_slice().iter().zip(shifted.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
