//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] is a Wengert list: each operation appends a node holding
//! its forward value and an [`Op`] record of its inputs. Because ids are
//! assigned in creation order they are already topologically sorted, so
//! [`Tape::backward`] is one reverse sweep that dispatches on the `Op`
//! enum — every adjoint is written out analytically, no boxed closures.
//!
//! Typical use (one tape per training step):
//!
//! ```
//! use gp_tensor::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.input(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
//! let w = tape.input(Tensor::from_vec(2, 1, vec![0.5, -0.25]));
//! let y = tape.matmul(x, w);
//! let loss = tape.sum_all(y);
//! let grads = tape.backward(loss);
//! assert_eq!(grads.get(w).as_slice(), &[1.0, 2.0]);
//! ```

use std::sync::Arc;

use crate::{EdgeList, Tensor};

/// Handle to a node on a [`Tape`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// The operation that produced a tape node, with its input handles.
#[derive(Clone, Debug)]
pub enum Op {
    /// A leaf: model parameter or data.
    Input,
    /// `A·B`.
    MatMul(Var, Var),
    /// `A·Bᵀ` (used for cosine-similarity logits between row sets).
    MatMulTb(Var, Var),
    /// Elementwise `A + B`.
    Add(Var, Var),
    /// Elementwise `A - B`.
    Sub(Var, Var),
    /// Elementwise `A ⊙ B`.
    Mul(Var, Var),
    /// `A · s` for a compile-time-known scalar `s`.
    Scale(Var, f32),
    /// `X (n×d) + row (1×d)` broadcast over rows (bias add).
    AddRowBroadcast(Var, Var),
    /// Logistic sigmoid.
    Sigmoid(Var),
    /// Rectified linear unit.
    Relu(Var),
    /// Leaky ReLU with the given negative slope.
    LeakyRelu(Var, f32),
    /// Hyperbolic tangent.
    Tanh(Var),
    /// Row-wise softmax.
    SoftmaxRows(Var),
    /// Row-wise log-softmax.
    LogSoftmaxRows(Var),
    /// `[A | B]` column concatenation.
    ConcatCols(Var, Var),
    /// Vertical stack of `A` over `B`.
    ConcatRows(Var, Var),
    /// Row selection (duplicates allowed).
    GatherRows(Var, Arc<Vec<usize>>),
    /// Scale row `i` of `X (n×d)` by element `i` of a column `(n×1)`.
    MulRowsByCol(Var, Var),
    /// L2-normalize each row (rows with tiny norm pass through).
    RowL2Normalize(Var),
    /// Sparse-matrix × dense-matrix with optional differentiable edge
    /// weights: `out[dst] += w_e · x[src]` for every edge.
    Spmm {
        /// Dense input features, `n_src×d`.
        x: Var,
        /// Optional `E×1` edge weights (ones when absent).
        w: Option<Var>,
        /// The sparsity pattern.
        edges: Arc<EdgeList>,
        /// Number of output rows (destination nodes).
        out_rows: usize,
    },
    /// Softmax over `E×1` edge scores, grouped by destination node.
    EdgeSoftmax {
        /// Raw edge scores, `E×1`.
        scores: Var,
        /// Grouping pattern (`dst` defines the groups).
        edges: Arc<EdgeList>,
    },
    /// Elementwise reciprocal `1/(x + eps)`.
    Recip(Var, f32),
    /// Sum of all elements, producing `1×1`.
    SumAll(Var),
    /// Mean of all elements, producing `1×1`.
    MeanAll(Var),
    /// Mean cross-entropy of row logits against integer targets, `1×1`.
    CrossEntropyLogits {
        /// `n×m` unnormalized scores.
        logits: Var,
        /// `n` class indices, each `< m`.
        targets: Arc<Vec<usize>>,
    },
}

struct Node {
    value: Tensor,
    op: Op,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Grads {
    grads: Vec<Option<Tensor>>,
    shapes: Vec<(usize, usize)>,
}

impl Grads {
    /// Gradient of the loss w.r.t. `var`; a zero tensor if the variable
    /// did not influence the loss.
    pub fn get(&self, var: Var) -> Tensor {
        match &self.grads[var.0] {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.shapes[var.0];
                Tensor::zeros(r, c)
            }
        }
    }

    /// Borrow the gradient if the variable influenced the loss.
    pub fn try_get(&self, var: Var) -> Option<&Tensor> {
        self.grads[var.0].as_ref()
    }
}

/// The autodiff tape. Create one per forward/backward pass.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Forward value of a node.
    pub fn value(&self, var: Var) -> &Tensor {
        &self.nodes[var.0].value
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        debug_assert!(value.all_finite(), "non-finite forward value from {op:?}");
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// Record a leaf (parameter or data).
    pub fn input(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Input)
    }

    /// `A·B`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul(self.value(b));
        self.push(v, Op::MatMul(a, b))
    }

    /// `A·Bᵀ`.
    pub fn matmul_tb(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).matmul_tb(self.value(b));
        self.push(v, Op::MatMulTb(a, b))
    }

    /// Elementwise `A + B`.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).add(self.value(b));
        self.push(v, Op::Add(a, b))
    }

    /// Elementwise `A - B`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).sub(self.value(b));
        self.push(v, Op::Sub(a, b))
    }

    /// Elementwise `A ⊙ B`.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).mul(self.value(b));
        self.push(v, Op::Mul(a, b))
    }

    /// `A · s`.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let v = self.value(a).scale(s);
        self.push(v, Op::Scale(a, s))
    }

    /// `X + row` broadcast (bias add).
    pub fn add_row_broadcast(&mut self, x: Var, row: Var) -> Var {
        let v = self.value(x).add_row_broadcast(self.value(row));
        self.push(v, Op::AddRowBroadcast(x, row))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|t| 1.0 / (1.0 + (-t).exp()));
        self.push(v, Op::Sigmoid(x))
    }

    /// ReLU.
    pub fn relu(&mut self, x: Var) -> Var {
        let v = self.value(x).map(|t| t.max(0.0));
        self.push(v, Op::Relu(x))
    }

    /// Leaky ReLU.
    pub fn leaky_relu(&mut self, x: Var, slope: f32) -> Var {
        let v = self.value(x).map(|t| if t > 0.0 { t } else { slope * t });
        self.push(v, Op::LeakyRelu(x, slope))
    }

    /// tanh.
    pub fn tanh(&mut self, x: Var) -> Var {
        let v = self.value(x).map(f32::tanh);
        self.push(v, Op::Tanh(x))
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).softmax_rows();
        self.push(v, Op::SoftmaxRows(x))
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&mut self, x: Var) -> Var {
        let v = self.value(x).log_softmax_rows();
        self.push(v, Op::LogSoftmaxRows(x))
    }

    /// `[A | B]`.
    pub fn concat_cols(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_cols(self.value(b));
        self.push(v, Op::ConcatCols(a, b))
    }

    /// Vertical stack.
    pub fn concat_rows(&mut self, a: Var, b: Var) -> Var {
        let v = self.value(a).concat_rows(self.value(b));
        self.push(v, Op::ConcatRows(a, b))
    }

    /// Select rows by index.
    pub fn gather_rows(&mut self, x: Var, idx: Arc<Vec<usize>>) -> Var {
        let v = self.value(x).gather_rows(&idx);
        self.push(v, Op::GatherRows(x, idx))
    }

    /// Scale rows of `x` by a column vector.
    pub fn mul_rows_by_col(&mut self, x: Var, col: Var) -> Var {
        let v = self.value(x).mul_rows_by_col(self.value(col));
        self.push(v, Op::MulRowsByCol(x, col))
    }

    /// L2-normalize each row.
    pub fn row_l2_normalize(&mut self, x: Var) -> Var {
        let v = self.value(x).l2_normalize_rows(Self::NORM_EPS);
        self.push(v, Op::RowL2Normalize(x))
    }

    const NORM_EPS: f32 = 1e-8;

    /// Sparse aggregate: `out[dst] += w_e · x[src]` over `edges`.
    ///
    /// `w` is an optional `E×1` weight column; when `None` every edge has
    /// weight 1. Gradients flow into both `x` and `w`.
    pub fn spmm(&mut self, edges: Arc<EdgeList>, x: Var, w: Option<Var>, out_rows: usize) -> Var {
        let xv = self.value(x);
        if let Some(wv) = w {
            let wt = self.value(wv);
            assert_eq!(
                wt.shape(),
                (edges.len(), 1),
                "spmm: weights must be E×1 (E = {})",
                edges.len()
            );
        }
        let d = xv.cols();
        let mut out = Tensor::zeros(out_rows, d);
        {
            let xv = self.value(x);
            let wslice = w.map(|wv| self.value(wv).as_slice());
            crate::backend::active_backend().spmm(&edges, xv, wslice, &mut out);
        }
        self.push(
            out,
            Op::Spmm {
                x,
                w,
                edges,
                out_rows,
            },
        )
    }

    /// Softmax of `E×1` edge scores grouped by destination node.
    pub fn edge_softmax(&mut self, edges: Arc<EdgeList>, scores: Var) -> Var {
        let sv = self.value(scores);
        assert_eq!(
            sv.shape(),
            (edges.len(), 1),
            "edge_softmax: scores must be E×1"
        );
        // Stable grouped softmax (per-group max subtraction) — the loop
        // lives in the active backend.
        let mut exp = vec![0.0f32; edges.len()];
        crate::backend::active_backend().edge_softmax(&edges, sv.as_slice(), &mut exp);
        let out = Tensor::from_vec(edges.len(), 1, exp);
        self.push(out, Op::EdgeSoftmax { scores, edges })
    }

    /// Elementwise reciprocal `1/(x + eps)`; `eps > 0` guards division.
    pub fn recip(&mut self, x: Var, eps: f32) -> Var {
        assert!(eps > 0.0, "recip: eps must be positive");
        let v = self.value(x).map(|t| 1.0 / (t + eps));
        self.push(v, Op::Recip(x, eps))
    }

    /// Sum of all elements → `1×1`.
    pub fn sum_all(&mut self, x: Var) -> Var {
        let v = Tensor::scalar(self.value(x).sum());
        self.push(v, Op::SumAll(x))
    }

    /// Mean of all elements → `1×1`.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let v = Tensor::scalar(self.value(x).mean());
        self.push(v, Op::MeanAll(x))
    }

    /// Mean softmax cross-entropy of `logits` against integer `targets` → `1×1`.
    pub fn cross_entropy_logits(&mut self, logits: Var, targets: Arc<Vec<usize>>) -> Var {
        let lv = self.value(logits);
        assert_eq!(
            lv.rows(),
            targets.len(),
            "cross_entropy: batch size mismatch"
        );
        let ls = lv.log_softmax_rows();
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(
                t < lv.cols(),
                "cross_entropy: target {t} out of {} classes",
                lv.cols()
            );
            loss -= ls.get(r, t);
        }
        loss /= targets.len().max(1) as f32;
        self.push(
            Tensor::scalar(loss),
            Op::CrossEntropyLogits { logits, targets },
        )
    }

    /// Reverse sweep from a scalar `loss` node; returns per-node gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not `1×1`.
    pub fn backward(&self, loss: Var) -> Grads {
        assert_eq!(
            self.value(loss).shape(),
            (1, 1),
            "backward: loss must be a 1×1 scalar"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        for id in (0..=loss.0).rev() {
            let Some(g) = grads[id].take() else { continue };
            self.accumulate_adjoints(id, &g, &mut grads);
            grads[id] = Some(g);
        }

        let shapes = self.nodes.iter().map(|n| n.value.shape()).collect();
        Grads { grads, shapes }
    }

    fn acc(grads: &mut [Option<Tensor>], var: Var, delta: Tensor) {
        match &mut grads[var.0] {
            Some(g) => g.add_scaled_assign(&delta, 1.0),
            slot @ None => *slot = Some(delta),
        }
    }

    /// Propagate the adjoint `g` of node `id` into its inputs.
    fn accumulate_adjoints(&self, id: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        let node = &self.nodes[id];
        match &node.op {
            Op::Input => {}
            Op::MatMul(a, b) => {
                let da = g.matmul_tb(self.value(*b));
                let db = self.value(*a).matmul_ta(g);
                Self::acc(grads, *a, da);
                Self::acc(grads, *b, db);
            }
            Op::MatMulTb(a, b) => {
                // C = A·Bᵀ → dA = G·B, dB = Gᵀ·A.
                let da = g.matmul(self.value(*b));
                let db = g.matmul_ta(self.value(*a));
                Self::acc(grads, *a, da);
                Self::acc(grads, *b, db);
            }
            Op::Add(a, b) => {
                Self::acc(grads, *a, g.clone());
                Self::acc(grads, *b, g.clone());
            }
            Op::Sub(a, b) => {
                Self::acc(grads, *a, g.clone());
                Self::acc(grads, *b, g.scale(-1.0));
            }
            Op::Mul(a, b) => {
                Self::acc(grads, *a, g.mul(self.value(*b)));
                Self::acc(grads, *b, g.mul(self.value(*a)));
            }
            Op::Scale(a, s) => Self::acc(grads, *a, g.scale(*s)),
            Op::AddRowBroadcast(x, row) => {
                Self::acc(grads, *x, g.clone());
                // Column-sum the adjoint into the 1×d bias.
                let mut db = Tensor::zeros(1, g.cols());
                for r in 0..g.rows() {
                    for (c, &v) in g.row(r).iter().enumerate() {
                        db.as_mut_slice()[c] += v;
                    }
                }
                Self::acc(grads, *row, db);
            }
            Op::Sigmoid(x) => {
                let s = &node.value;
                let dx = g.mul(&s.map(|t| t * (1.0 - t)));
                Self::acc(grads, *x, dx);
            }
            Op::Relu(x) => {
                let mask = self.value(*x).map(|t| if t > 0.0 { 1.0 } else { 0.0 });
                Self::acc(grads, *x, g.mul(&mask));
            }
            Op::LeakyRelu(x, slope) => {
                let sl = *slope;
                let mask = self.value(*x).map(|t| if t > 0.0 { 1.0 } else { sl });
                Self::acc(grads, *x, g.mul(&mask));
            }
            Op::Tanh(x) => {
                let dx = g.mul(&node.value.map(|t| 1.0 - t * t));
                Self::acc(grads, *x, dx);
            }
            Op::SoftmaxRows(x) => {
                // dX_row = p ⊙ (G_row - (G_row·p) 1)
                let p = &node.value;
                let mut dx = Tensor::zeros(p.rows(), p.cols());
                for r in 0..p.rows() {
                    let dot: f32 = g.row(r).iter().zip(p.row(r)).map(|(&a, &b)| a * b).sum();
                    for c in 0..p.cols() {
                        dx.set(r, c, p.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                Self::acc(grads, *x, dx);
            }
            Op::LogSoftmaxRows(x) => {
                // dX = G - softmax(x) * rowsum(G)
                let p = self.value(*x).softmax_rows();
                let mut dx = g.clone();
                for r in 0..p.rows() {
                    let rs: f32 = g.row(r).iter().sum();
                    for c in 0..p.cols() {
                        let v = dx.get(r, c) - p.get(r, c) * rs;
                        dx.set(r, c, v);
                    }
                }
                Self::acc(grads, *x, dx);
            }
            Op::ConcatCols(a, b) => {
                let wa = self.value(*a).cols();
                let mut da = Tensor::zeros(g.rows(), wa);
                let mut db = Tensor::zeros(g.rows(), g.cols() - wa);
                for r in 0..g.rows() {
                    da.row_mut(r).copy_from_slice(&g.row(r)[..wa]);
                    db.row_mut(r).copy_from_slice(&g.row(r)[wa..]);
                }
                Self::acc(grads, *a, da);
                Self::acc(grads, *b, db);
            }
            Op::ConcatRows(a, b) => {
                let ha = self.value(*a).rows();
                let da = Tensor::from_vec(ha, g.cols(), g.as_slice()[..ha * g.cols()].to_vec());
                let db = Tensor::from_vec(
                    g.rows() - ha,
                    g.cols(),
                    g.as_slice()[ha * g.cols()..].to_vec(),
                );
                Self::acc(grads, *a, da);
                Self::acc(grads, *b, db);
            }
            Op::GatherRows(x, idx) => {
                let xv = self.value(*x);
                let mut dx = Tensor::zeros(xv.rows(), xv.cols());
                for (out_r, &src_r) in idx.iter().enumerate() {
                    for (d, &v) in dx.row_mut(src_r).iter_mut().zip(g.row(out_r)) {
                        *d += v;
                    }
                }
                Self::acc(grads, *x, dx);
            }
            Op::MulRowsByCol(x, col) => {
                let xv = self.value(*x);
                let cv = self.value(*col);
                Self::acc(grads, *x, g.mul_rows_by_col(cv));
                let mut dc = Tensor::zeros(cv.rows(), 1);
                for r in 0..xv.rows() {
                    let dot: f32 = g.row(r).iter().zip(xv.row(r)).map(|(&a, &b)| a * b).sum();
                    dc.set(r, 0, dot);
                }
                Self::acc(grads, *col, dc);
            }
            Op::RowL2Normalize(x) => {
                // y = x/‖x‖ → dx = (g - y (g·y)) / ‖x‖; tiny rows pass through.
                let xv = self.value(*x);
                let y = &node.value;
                let mut dx = Tensor::zeros(xv.rows(), xv.cols());
                for r in 0..xv.rows() {
                    let norm = xv.row(r).iter().map(|&v| v * v).sum::<f32>().sqrt();
                    if norm > Self::NORM_EPS {
                        let gy: f32 = g.row(r).iter().zip(y.row(r)).map(|(&a, &b)| a * b).sum();
                        for c in 0..xv.cols() {
                            dx.set(r, c, (g.get(r, c) - y.get(r, c) * gy) / norm);
                        }
                    } else {
                        dx.row_mut(r).copy_from_slice(g.row(r));
                    }
                }
                Self::acc(grads, *x, dx);
            }
            Op::Spmm {
                x,
                w,
                edges,
                out_rows: _,
            } => {
                let xv = self.value(*x);
                let wslice = w.map(|wv| self.value(wv).as_slice());
                let mut dx = Tensor::zeros(xv.rows(), xv.cols());
                let mut dw = w.map(|_| Tensor::zeros(edges.len(), 1));
                for e in 0..edges.len() {
                    let (s, t) = (edges.src(e), edges.dst(e));
                    let we = wslice.map_or(1.0, |ws| ws[e]);
                    let grow = g.row(t);
                    if we != 0.0 {
                        for (d, &v) in dx.row_mut(s).iter_mut().zip(grow) {
                            *d += we * v;
                        }
                    }
                    if let Some(dwt) = &mut dw {
                        let dot: f32 = xv.row(s).iter().zip(grow).map(|(&a, &b)| a * b).sum();
                        dwt.set(e, 0, dot);
                    }
                }
                Self::acc(grads, *x, dx);
                if let (Some(wv), Some(dwt)) = (w, dw) {
                    Self::acc(grads, *wv, dwt);
                }
            }
            Op::EdgeSoftmax { scores, edges } => {
                // Grouped softmax jacobian: ds_e = p_e (g_e - Σ_{e'∈grp} p_e' g_e')
                let p = &node.value;
                let n = edges.min_num_nodes();
                let mut gdot = vec![0.0f32; n];
                for e in 0..edges.len() {
                    gdot[edges.dst(e)] += p.as_slice()[e] * g.as_slice()[e];
                }
                let mut ds = Tensor::zeros(edges.len(), 1);
                for e in 0..edges.len() {
                    let pe = p.as_slice()[e];
                    ds.set(e, 0, pe * (g.as_slice()[e] - gdot[edges.dst(e)]));
                }
                Self::acc(grads, *scores, ds);
            }
            Op::Recip(x, _) => {
                // d(1/(x+e))/dx = -(1/(x+e))² = -out².
                let dx = g.mul(&node.value.map(|t| -t * t));
                Self::acc(grads, *x, dx);
            }
            Op::SumAll(x) => {
                let (r, c) = self.value(*x).shape();
                Self::acc(grads, *x, Tensor::full(r, c, g.item()));
            }
            Op::MeanAll(x) => {
                let (r, c) = self.value(*x).shape();
                let n = (r * c).max(1) as f32;
                Self::acc(grads, *x, Tensor::full(r, c, g.item() / n));
            }
            Op::CrossEntropyLogits { logits, targets } => {
                let lv = self.value(*logits);
                let mut dl = lv.softmax_rows();
                let n = targets.len().max(1) as f32;
                for (r, &t) in targets.iter().enumerate() {
                    let v = dl.get(r, t) - 1.0;
                    dl.set(r, t, v);
                }
                Self::acc(grads, *logits, dl.scale(g.item() / n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central-difference gradient check for a scalar function of one input.
    fn finite_diff_check(input: Tensor, f: impl Fn(&mut Tape, Var) -> Var, tol: f32) {
        let mut tape = Tape::new();
        let x = tape.input(input.clone());
        let loss = f(&mut tape, x);
        let analytic = tape.backward(loss).get(x);

        let eps = 1e-3;
        for i in 0..input.len() {
            let mut plus = input.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[i] -= eps;

            let mut tp = Tape::new();
            let xp = tp.input(plus);
            let lp = f(&mut tp, xp);
            let mut tm = Tape::new();
            let xm = tm.input(minus);
            let lm = f(&mut tm, xm);

            let numeric = (tp.value(lp).item() - tm.value(lm).item()) / (2.0 * eps);
            let a = analytic.as_slice()[i];
            assert!(
                (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                "element {i}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_matmul() {
        let b = Tensor::from_vec(3, 2, vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1]);
        finite_diff_check(
            Tensor::from_vec(2, 3, vec![1.0, -0.5, 0.2, 0.9, 2.0, -1.5]),
            move |t, x| {
                let bv = t.input(b.clone());
                let y = t.matmul(x, bv);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_tb() {
        let b = Tensor::from_vec(
            4,
            3,
            vec![
                0.5, -1.0, 2.0, 0.3, -0.7, 1.1, 0.2, 0.4, -0.9, 1.0, 0.0, 0.6,
            ],
        );
        finite_diff_check(
            Tensor::from_vec(2, 3, vec![1.0, -0.5, 0.2, 0.9, 2.0, -1.5]),
            move |t, x| {
                let bv = t.input(b.clone());
                let y = t.matmul_tb(x, bv);
                let s = t.sigmoid(y);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_sigmoid_relu_tanh_chain() {
        finite_diff_check(
            Tensor::from_vec(2, 2, vec![0.3, -0.8, 1.5, -0.1]),
            |t, x| {
                let a = t.sigmoid(x);
                let b = t.tanh(a);
                let c = t.scale(b, 2.0);
                t.mean_all(c)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_leaky_relu() {
        finite_diff_check(
            Tensor::from_vec(1, 4, vec![0.5, -0.5, 1.2, -2.0]),
            |t, x| {
                let y = t.leaky_relu(x, 0.2);
                t.sum_all(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_rows() {
        finite_diff_check(
            Tensor::from_vec(2, 3, vec![0.2, 0.5, -0.1, 1.0, -1.0, 0.0]),
            |t, x| {
                let p = t.softmax_rows(x);
                let sq = t.mul(p, p);
                t.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_log_softmax_rows() {
        finite_diff_check(
            Tensor::from_vec(2, 3, vec![0.2, 0.5, -0.1, 1.0, -1.0, 0.0]),
            |t, x| {
                let p = t.log_softmax_rows(x);
                let s = t.sigmoid(p);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_concat_gather() {
        finite_diff_check(
            Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            |t, x| {
                let y = t.concat_cols(x, x);
                let g = t.gather_rows(y, Arc::new(vec![2, 0, 2]));
                let s = t.tanh(g);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_concat_rows() {
        finite_diff_check(
            Tensor::from_vec(2, 2, vec![0.1, -0.2, 0.3, 0.4]),
            |t, x| {
                let y = t.concat_rows(x, x);
                let s = t.sigmoid(y);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_mul_rows_by_col() {
        let col = Tensor::from_vec(3, 1, vec![0.5, -1.0, 2.0]);
        finite_diff_check(
            Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            move |t, x| {
                let c = t.input(col.clone());
                let y = t.mul_rows_by_col(x, c);
                let s = t.tanh(y);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_mul_rows_by_col_wrt_col() {
        let x = Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        finite_diff_check(
            Tensor::from_vec(3, 1, vec![0.5, -1.0, 2.0]),
            move |t, c| {
                let xv = t.input(x.clone());
                let y = t.mul_rows_by_col(xv, c);
                let s = t.tanh(y);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_row_l2_normalize() {
        finite_diff_check(
            Tensor::from_vec(2, 3, vec![0.5, -1.0, 2.0, 0.3, 0.7, -0.4]),
            |t, x| {
                let y = t.row_l2_normalize(x);
                let s = t.sigmoid(y);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_spmm_wrt_features() {
        let edges = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (0, 2)]).into_shared();
        let w = Tensor::from_vec(4, 1, vec![0.5, -1.0, 2.0, 0.3]);
        finite_diff_check(
            Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]),
            move |t, x| {
                let wv = t.input(w.clone());
                let y = t.spmm(edges.clone(), x, Some(wv), 3);
                let s = t.tanh(y);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_spmm_wrt_edge_weights() {
        let edges = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (0, 2)]).into_shared();
        let x = Tensor::from_vec(3, 2, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        finite_diff_check(
            Tensor::from_vec(4, 1, vec![0.5, -1.0, 2.0, 0.3]),
            move |t, w| {
                let xv = t.input(x.clone());
                let y = t.spmm(edges.clone(), xv, Some(w), 3);
                let s = t.tanh(y);
                t.sum_all(s)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_edge_softmax() {
        let edges = EdgeList::from_pairs([(0, 1), (2, 1), (1, 0), (2, 0)]).into_shared();
        finite_diff_check(
            Tensor::from_vec(4, 1, vec![0.5, -1.0, 2.0, 0.3]),
            move |t, s| {
                let p = t.edge_softmax(edges.clone(), s);
                let sq = t.mul(p, p);
                t.sum_all(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_recip() {
        finite_diff_check(
            Tensor::from_vec(1, 4, vec![0.5, 1.5, 2.0, 0.8]),
            |t, x| {
                let r = t.recip(x, 1e-6);
                t.sum_all(r)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_cross_entropy_logits() {
        let targets = Arc::new(vec![2usize, 0]);
        finite_diff_check(
            Tensor::from_vec(2, 3, vec![0.2, 0.5, -0.1, 1.0, -1.0, 0.0]),
            move |t, x| t.cross_entropy_logits(x, targets.clone()),
            1e-2,
        );
    }

    #[test]
    fn edge_softmax_groups_sum_to_one() {
        let mut tape = Tape::new();
        let edges = EdgeList::from_pairs([(0, 1), (2, 1), (1, 0), (2, 0), (0, 0)]).into_shared();
        let s = tape.input(Tensor::from_vec(5, 1, vec![3.0, -1.0, 0.5, 0.5, 0.5]));
        let p = tape.edge_softmax(edges.clone(), s);
        let pv = tape.value(p);
        let mut sums = [0.0f32; 2];
        for e in 0..edges.len() {
            sums[edges.dst(e)] += pv.as_slice()[e];
        }
        assert!((sums[0] - 1.0).abs() < 1e-5);
        assert!((sums[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn fan_out_accumulates_gradients() {
        // y = x + x → dy/dx = 2
        let mut tape = Tape::new();
        let x = tape.input(Tensor::scalar(3.0));
        let y = tape.add(x, x);
        let loss = tape.sum_all(y);
        let g = tape.backward(loss).get(x);
        assert_eq!(g.item(), 2.0);
    }

    #[test]
    fn unused_variable_gets_zero_grad() {
        let mut tape = Tape::new();
        let x = tape.input(Tensor::scalar(3.0));
        let unused = tape.input(Tensor::from_vec(2, 2, vec![1.0; 4]));
        let loss = tape.sum_all(x);
        let grads = tape.backward(loss);
        assert!(grads.try_get(unused).is_none());
        assert_eq!(grads.get(unused), Tensor::zeros(2, 2));
    }

    #[test]
    fn cross_entropy_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.input(Tensor::from_vec(1, 2, vec![0.0, 0.0]));
        let loss = tape.cross_entropy_logits(logits, Arc::new(vec![0]));
        // -log(0.5)
        assert!((tape.value(loss).item() - 0.5f32.ln().abs()).abs() < 1e-5);
    }
}
