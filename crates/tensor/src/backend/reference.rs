//! The bit-exact scalar kernels, hoisted verbatim from the pre-backend
//! `Tensor`/`Tape` implementations.
//!
//! **Do not "optimize" anything in this file.** Every loop below *is*
//! the determinism contract: its exact accumulation order is pinned by
//! the kernel unit tests, the parallel bit-identity proptests, and the
//! end-to-end pipeline tests. A change that is mathematically neutral
//! but reorders a floating-point sum breaks bit-identity with every
//! previously committed prediction. Speed belongs in
//! [`FastBackend`](super::FastBackend).

use std::ops::Range;

use super::{Backend, ComputeBackend};
use crate::sparse::EdgeList;
use crate::tensor::Tensor;

/// The default backend: scalar kernels with a pinned accumulation
/// order, bit-identical across runs, hosts, and worker counts.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReferenceBackend;

impl ComputeBackend for ReferenceBackend {
    fn kind(&self) -> Backend {
        Backend::Reference
    }

    /// Cache-friendly `i-k-j` order: the inner loop streams contiguous
    /// rows of both `b` and the output; zero `a` entries skip their
    /// whole `b` row (subgraph one-hots are sparse).
    fn matmul_block(
        &self,
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    ) {
        for (local, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut block[local * m..(local + 1) * m];
            for (kk, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * m..(kk + 1) * m];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Per-element `kk`-ascending dot product.
    fn matmul_tb_block(
        &self,
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    ) {
        for (local, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut block[local * m..(local + 1) * m];
            for (j, o) in o_row.iter_mut().enumerate() {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                *o = acc;
            }
        }
    }

    /// `k`-outer loop streaming whole rows of `a` and `b`; each output
    /// element still accumulates in `kk`-ascending order, which is why
    /// this is bit-identical to the row-blocked path below.
    fn matmul_ta_serial(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        out: &mut [f32],
    ) {
        for kk in 0..k {
            let a_row = &a[kk * n..(kk + 1) * n];
            let b_row = &b[kk * m..(kk + 1) * m];
            for (i, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let o_row = &mut out[i * m..(i + 1) * m];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Per-row recomputation with the same `kk`-ascending, zero-skipping
    /// accumulation per element as the serial path.
    fn matmul_ta_block(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    ) {
        for (local, i) in rows.enumerate() {
            let o_row = &mut block[local * m..(local + 1) * m];
            for kk in 0..k {
                let av = a[kk * n + i];
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[kk * m..(kk + 1) * m];
                for (o, &bv) in o_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Ascending-index sum — the exact loop `cosine` runs for its `dot`
    /// accumulator, so precomputed-norm cosine stays bit-identical.
    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        let mut dot = 0.0f32;
        for kk in 0..a.len() {
            dot += a[kk] * b[kk];
        }
        dot
    }

    /// Ascending-index sum of squares (the pre-sqrt half of `l2_norm`).
    fn sum_sq(&self, a: &[f32]) -> f32 {
        let mut n = 0.0f32;
        for &x in a {
            n += x * x;
        }
        n
    }

    /// Three independent `k`-ascending accumulators in one pass; each
    /// matches the corresponding standalone [`dot`](Self::dot)/
    /// [`sum_sq`](Self::sum_sq) sum bit-for-bit.
    fn cosine(&self, a: &[f32], b: &[f32]) -> f32 {
        let (mut dot, mut na, mut nb) = (0.0f32, 0.0f32, 0.0f32);
        for k in 0..a.len() {
            dot += a[k] * b[k];
            na += a[k] * a[k];
            nb += b[k] * b[k];
        }
        let denom = (na.sqrt() * nb.sqrt()).max(1e-12);
        dot / denom
    }

    /// Edge-order scatter; zero-weight edges are skipped entirely.
    fn spmm(&self, edges: &EdgeList, x: &Tensor, w: Option<&[f32]>, out: &mut Tensor) {
        for e in 0..edges.len() {
            let (s, t) = (edges.src(e), edges.dst(e));
            let we = w.map_or(1.0, |ws| ws[e]);
            if we == 0.0 {
                continue;
            }
            let src_row = x.row(s);
            let dst_row = out.row_mut(t);
            for (o, &v) in dst_row.iter_mut().zip(src_row) {
                *o += we * v;
            }
        }
    }

    /// Stable grouped softmax: per-destination max subtraction, then
    /// edge-order exp/sum/normalize with the `1e-12` empty-group guard.
    fn edge_softmax(&self, edges: &EdgeList, scores: &[f32], out: &mut [f32]) {
        let n = edges.min_num_nodes();
        let mut gmax = vec![f32::NEG_INFINITY; n];
        for e in 0..edges.len() {
            let d = edges.dst(e);
            gmax[d] = gmax[d].max(scores[e]);
        }
        let mut gsum = vec![0.0f32; n];
        for (e, x) in out.iter_mut().enumerate() {
            let d = edges.dst(e);
            *x = (scores[e] - gmax[d]).exp();
            gsum[d] += *x;
        }
        for (e, x) in out.iter_mut().enumerate() {
            *x /= gsum[edges.dst(e)].max(1e-12);
        }
    }
}
