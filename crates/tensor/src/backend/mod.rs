//! Pluggable compute backends behind one dispatch trait.
//!
//! Every dense/sparse kernel in this crate ([`Tensor::matmul`],
//! [`Tensor::matmul_tb`], [`Tensor::matmul_ta`], `Tape::spmm`,
//! `Tape::edge_softmax`, and the [`cosine_slices`](crate::cosine_slices)
//! / [`l2_norm`](crate::l2_norm) helper family) routes through the
//! thread's **active backend**:
//!
//! * [`ReferenceBackend`] — the bit-exact scalar kernels this crate has
//!   always shipped, hoisted verbatim. Its accumulation order is the
//!   determinism contract: results are bit-identical across runs,
//!   thread budgets, and machines, which is what gp-lint, the parallel
//!   proptests, and the `WorkerPool` bit-identity tests all pin.
//!   Reference is the default and stays the truth for CI.
//! * [`FastBackend`] — register-tiled kernels with `std::arch` SIMD
//!   (AVX2 on x86_64, NEON on aarch64) selected once per process by
//!   runtime feature detection, with a scalar-tiled fallback that is
//!   safe on any host. Fast reorders float accumulation (SIMD lanes sum
//!   in parallel), so it is only *tolerance*-equal to Reference — but it
//!   is still deterministic run-to-run and across worker counts, because
//!   each output row is produced by one fixed-order kernel regardless of
//!   how rows are blocked over the pool.
//!
//! The active backend is a thread-local, installed RAII-style exactly
//! like [`WorkerPool::install`](crate::WorkerPool::install):
//!
//! ```
//! use gp_tensor::{Backend, Tensor};
//! let a = Tensor::from_vec(2, 3, vec![1.0; 6]);
//! let b = Tensor::from_vec(3, 2, vec![2.0; 6]);
//! let fast = {
//!     let _guard = Backend::Fast.install();
//!     a.matmul(&b) // tiled/SIMD kernels
//! }; // guard dropped: this thread is back on Reference
//! let reference = a.matmul(&b);
//! for (x, y) in fast.as_slice().iter().zip(reference.as_slice()) {
//!     assert!((x - y).abs() <= 1e-5 * x.abs().max(1.0));
//! }
//! ```
//!
//! Kernel fan-out captures the submitting thread's backend, so a block
//! running on a pool worker uses the backend of whoever called the
//! kernel, not the worker's own default.

mod fast;
mod reference;

pub use fast::FastBackend;
pub use reference::ReferenceBackend;

use std::cell::Cell;
use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;
use std::str::FromStr;

use crate::sparse::EdgeList;
use crate::tensor::Tensor;

/// Which kernel implementation a thread dispatches to.
///
/// `Reference` is the default everywhere; `Fast` must be opted into
/// (per [`Engine`](crate) via `EngineBuilder::backend`, per session in
/// gp-serve, or `gp --backend fast` on the CLI).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Bit-exact scalar kernels; the determinism contract and CI truth.
    #[default]
    Reference,
    /// Register-tiled + SIMD kernels; tolerance-equal to Reference.
    Fast,
}

impl Backend {
    /// Stable lowercase name, matching [`FromStr`] (`"reference"`/`"fast"`).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Fast => "fast",
        }
    }

    /// The (static) kernel implementation for this kind.
    pub fn implementation(self) -> &'static dyn ComputeBackend {
        match self {
            Backend::Reference => &ReferenceBackend,
            Backend::Fast => &FastBackend,
        }
    }

    /// Whether this backend will actually run `std::arch` SIMD on this
    /// host (runtime feature detection): always `false` for Reference,
    /// and `false` for Fast on hosts where it falls back to the
    /// scalar-tiled kernels.
    pub fn is_simd_accelerated(self) -> bool {
        match self {
            Backend::Reference => false,
            Backend::Fast => fast::simd_active(),
        }
    }

    /// Install this backend as the thread's active backend, returning a
    /// guard that restores the previous one on drop. Nests like
    /// [`WorkerPool::install`](crate::WorkerPool::install); the guard is
    /// `!Send` so install/uninstall cannot migrate across threads.
    #[must_use = "the backend is uninstalled when the guard drops"]
    pub fn install(self) -> BackendGuard {
        let prev = ACTIVE.with(|c| c.replace(self));
        BackendGuard {
            prev,
            _not_send: PhantomData,
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reference" => Ok(Backend::Reference),
            "fast" => Ok(Backend::Fast),
            other => Err(format!(
                "unknown backend '{other}' (expected 'reference' or 'fast')"
            )),
        }
    }
}

thread_local! {
    static ACTIVE: Cell<Backend> = const { Cell::new(Backend::Reference) };
}

/// The backend kind installed on the current thread ([`Backend::Reference`]
/// when none has been installed).
pub fn installed_backend() -> Backend {
    ACTIVE.with(Cell::get)
}

/// The current thread's active kernel implementation.
pub fn active_backend() -> &'static dyn ComputeBackend {
    installed_backend().implementation()
}

/// RAII guard from [`Backend::install`]: restores the previously active
/// backend when dropped.
#[must_use = "dropping the guard immediately uninstalls the backend"]
pub struct BackendGuard {
    prev: Backend,
    /// Install/uninstall must happen on one thread.
    _not_send: PhantomData<*const ()>,
}

impl Drop for BackendGuard {
    fn drop(&mut self) {
        ACTIVE.with(|c| c.set(self.prev));
    }
}

/// One kernel implementation. All methods operate on raw row-major
/// slices (shape checks stay in the public [`Tensor`] entry points) so
/// both `Tensor` and `Tape` can dispatch without exposing internals.
///
/// The three matmul `*_block` methods receive a disjoint range of
/// output rows plus the backing sub-slice for exactly those rows — the
/// shape handed out by `parallel::for_row_blocks` — so one trait
/// implementation serves the serial path (`rows = 0..n`) and every
/// pool-blocked fan-out alike. Implementations must compute each row
/// with a fixed, row-local operation order: that is what makes results
/// independent of the worker count for *both* backends (bit-identical
/// blocking is a structural property, not a Reference-only one).
pub trait ComputeBackend: Sync {
    /// Which [`Backend`] this implementation is.
    fn kind(&self) -> Backend;

    /// `block[local] = a[i] · b` for each `i` in `rows`:
    /// `a` is `n×k`, `b` is `k×m`, `block` holds `rows.len()` rows of m.
    fn matmul_block(
        &self,
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    );

    /// `block[local][j] = a[i] · b[j]` (dot of rows): `a` is `n×k`,
    /// `b` is `m×k` interpreted transposed.
    fn matmul_tb_block(
        &self,
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    );

    /// Whole-output `a^T (k×n) · b (k×m) -> n×m` for the serial path.
    fn matmul_ta_serial(&self, a: &[f32], b: &[f32], n: usize, k: usize, m: usize, out: &mut [f32]);

    /// Row-blocked `a^T · b`: output rows `rows` of the `n×m` result.
    fn matmul_ta_block(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    );

    /// Dot product `Σ a[i]·b[i]` (slices already length-checked).
    fn dot(&self, a: &[f32], b: &[f32]) -> f32;

    /// Sum of squares `Σ a[i]²` (the pre-sqrt half of
    /// [`l2_norm`](crate::l2_norm)).
    fn sum_sq(&self, a: &[f32]) -> f32;

    /// Cosine similarity with the `1e-12` zero-norm guard of
    /// [`cosine_slices`](crate::cosine_slices).
    fn cosine(&self, a: &[f32], b: &[f32]) -> f32;

    /// Sparse aggregate `out[dst] += w_e · x[src]` over `edges`, in
    /// edge order (`w = None` means unit weights).
    fn spmm(&self, edges: &EdgeList, x: &Tensor, w: Option<&[f32]>, out: &mut Tensor);

    /// Grouped-by-destination softmax of `E×1` edge `scores` into `out`.
    fn edge_softmax(&self, edges: &EdgeList, scores: &[f32], out: &mut [f32]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_backend_is_reference() {
        assert_eq!(installed_backend(), Backend::Reference);
        assert_eq!(active_backend().kind(), Backend::Reference);
    }

    #[test]
    fn install_guard_nests_and_restores() {
        assert_eq!(installed_backend(), Backend::Reference);
        {
            let _outer = Backend::Fast.install();
            assert_eq!(installed_backend(), Backend::Fast);
            {
                let _inner = Backend::Reference.install();
                assert_eq!(installed_backend(), Backend::Reference);
            }
            assert_eq!(installed_backend(), Backend::Fast, "inner drop restores");
        }
        assert_eq!(installed_backend(), Backend::Reference);
    }

    #[test]
    fn install_is_per_thread() {
        let _guard = Backend::Fast.install();
        let other = std::thread::spawn(installed_backend)
            .join()
            .expect("thread joins");
        assert_eq!(other, Backend::Reference, "fresh threads default");
        assert_eq!(installed_backend(), Backend::Fast);
    }

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::Reference, Backend::Fast] {
            assert_eq!(b.name().parse::<Backend>(), Ok(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert!("avx512".parse::<Backend>().is_err());
    }

    #[test]
    fn reference_never_reports_simd() {
        assert!(!Backend::Reference.is_simd_accelerated());
        // Fast may or may not, depending on the host; the call just must
        // not panic and must be stable.
        assert_eq!(
            Backend::Fast.is_simd_accelerated(),
            Backend::Fast.is_simd_accelerated()
        );
    }
}
