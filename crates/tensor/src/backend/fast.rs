//! The tiled/SIMD backend: register-blocked kernels with `std::arch`
//! acceleration behind runtime feature detection.
//!
//! Three implementations of each micro-kernel live here, selected once
//! per process by [`simd_level`]:
//!
//! * **AVX2** (`x86_64`, detected via `is_x86_feature_detected!`):
//!   8-lane `f32` vectors, 16-wide register tiles for matmul rows, and
//!   4-way split accumulators for dot reductions.
//! * **NEON** (`aarch64`): 4-lane vectors with fused multiply-add; NEON
//!   is mandatory on aarch64 but detection keeps the dispatch uniform.
//! * **Scalar-tiled fallback** (any host): the same tiling expressed as
//!   fixed-size lane arrays, which LLVM auto-vectorizes with whatever
//!   the baseline target offers. This path keeps `Fast` safe and
//!   correct on hosts without AVX2 — only slower.
//!
//! All three reorder float accumulation relative to
//! [`ReferenceBackend`](super::ReferenceBackend) (lanes sum in
//! parallel), so Fast is **tolerance**-equal to Reference, not
//! bit-equal. It is still deterministic: the lane structure is fixed at
//! dispatch time, every output row is computed by one fixed-order
//! kernel, and row-blocking over the `WorkerPool` never splits a row —
//! so results are bit-identical run-to-run and across worker counts,
//! which the serve-layer replay tests rely on.
//!
//! This module (plus its `x86`/`arm` submodules) is the **only** place
//! in the workspace allowed to touch `std::arch` — gp-lint rule A1
//! fails the build anywhere else.

use std::ops::Range;
use std::sync::OnceLock;

use super::{Backend, ComputeBackend, ReferenceBackend};
use crate::sparse::EdgeList;
use crate::tensor::Tensor;

/// The tiled/SIMD backend; tolerance-equal to Reference.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastBackend;

/// Which instruction set the Fast kernels dispatch to (fixed for the
/// lifetime of the process).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SimdLevel {
    /// Auto-vectorized lane-array kernels; correct on any host.
    Scalar,
    #[cfg(target_arch = "x86_64")]
    Avx2,
    #[cfg(target_arch = "aarch64")]
    Neon,
}

fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdLevel::Avx2;
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            if std::arch::is_aarch64_feature_detected!("neon") {
                return SimdLevel::Neon;
            }
        }
        SimdLevel::Scalar
    })
}

/// True when Fast will run real `std::arch` SIMD on this host (false
/// means the scalar-tiled fallback is in effect).
pub(crate) fn simd_active() -> bool {
    simd_level() != SimdLevel::Scalar
}

// ---------------------------------------------------------------------------
// Dispatch wrappers: one safe entry per micro-kernel.

/// `o_row = a_row · b` for one output row (`b` is `k×m`, row-major).
/// `o_row` is fully overwritten.
fn matmul_row(a_row: &[f32], b: &[f32], m: usize, o_row: &mut [f32]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only returned when the host supports it.
        SimdLevel::Avx2 => unsafe { x86::matmul_row(a_row, b, m, o_row) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon is only returned when the host supports it.
        SimdLevel::Neon => unsafe { arm::matmul_row(a_row, b, m, o_row) },
        SimdLevel::Scalar => scalar::matmul_row(a_row, b, m, o_row),
    }
}

/// Dot product with split accumulators.
fn dot(a: &[f32], b: &[f32]) -> f32 {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only returned when the host supports it.
        SimdLevel::Avx2 => unsafe { x86::dot(a, b) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon is only returned when the host supports it.
        SimdLevel::Neon => unsafe { arm::dot(a, b) },
        SimdLevel::Scalar => scalar::dot(a, b),
    }
}

/// `y += s · x` (slices of equal length).
fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
    match simd_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only returned when the host supports it.
        SimdLevel::Avx2 => unsafe { x86::axpy(s, x, y) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: Neon is only returned when the host supports it.
        SimdLevel::Neon => unsafe { arm::axpy(s, x, y) },
        SimdLevel::Scalar => scalar::axpy(s, x, y),
    }
}

impl ComputeBackend for FastBackend {
    fn kind(&self) -> Backend {
        Backend::Fast
    }

    fn matmul_block(
        &self,
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    ) {
        for (local, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut block[local * m..(local + 1) * m];
            matmul_row(a_row, b, m, o_row);
        }
    }

    fn matmul_tb_block(
        &self,
        a: &[f32],
        b: &[f32],
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    ) {
        debug_assert_eq!(block.len(), rows.len() * m);
        for (local, i) in rows.enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let o_row = &mut block[local * m..(local + 1) * m];
            for (j, o) in o_row.iter_mut().enumerate() {
                *o = dot(a_row, &b[j * k..(j + 1) * k]);
            }
        }
    }

    /// Routed through the row-blocked kernel so Fast produces the same
    /// bits for every worker count (the serial/blocked split is a
    /// Reference cache-layout concern, not a contract).
    fn matmul_ta_serial(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        out: &mut [f32],
    ) {
        self.matmul_ta_block(a, b, n, k, m, 0..n, out);
    }

    fn matmul_ta_block(
        &self,
        a: &[f32],
        b: &[f32],
        n: usize,
        k: usize,
        m: usize,
        rows: Range<usize>,
        block: &mut [f32],
    ) {
        // Column `i` of the `k×n` matrix `a` is strided; gather its
        // entries scalar and vectorize the row-sized axpy instead.
        for (local, i) in rows.enumerate() {
            let o_row = &mut block[local * m..(local + 1) * m];
            for kk in 0..k {
                let av = a[kk * n + i];
                if av == 0.0 {
                    continue;
                }
                axpy(av, &b[kk * m..(kk + 1) * m], o_row);
            }
        }
    }

    fn dot(&self, a: &[f32], b: &[f32]) -> f32 {
        dot(a, b)
    }

    fn sum_sq(&self, a: &[f32]) -> f32 {
        dot(a, a)
    }

    /// Same zero-norm guard as Reference; each accumulator is the same
    /// SIMD reduction [`dot`]/[`sum_sq`](Self::sum_sq) performs, so
    /// precomputed-norm cosine stays bit-identical *within* Fast.
    fn cosine(&self, a: &[f32], b: &[f32]) -> f32 {
        let dotv = dot(a, b);
        let denom = (dot(a, a).sqrt() * dot(b, b).sqrt()).max(1e-12);
        dotv / denom
    }

    /// Edge-order scatter like Reference, but with the row-sized axpy
    /// vectorized (each output element still receives its contributions
    /// in edge order, one multiply-add per edge).
    fn spmm(&self, edges: &EdgeList, x: &Tensor, w: Option<&[f32]>, out: &mut Tensor) {
        for e in 0..edges.len() {
            let (s, t) = (edges.src(e), edges.dst(e));
            let we = w.map_or(1.0, |ws| ws[e]);
            if we == 0.0 {
                continue;
            }
            axpy(we, x.row(s), out.row_mut(t));
        }
    }

    /// Delegates to the Reference loop: the cost here is `exp`, not
    /// memory order, and the grouped reduction is scatter-shaped — SIMD
    /// buys nothing worth a second accumulation order.
    fn edge_softmax(&self, edges: &EdgeList, scores: &[f32], out: &mut [f32]) {
        ReferenceBackend.edge_softmax(edges, scores, out);
    }
}

// ---------------------------------------------------------------------------
// Scalar-tiled fallback: fixed-size lane arrays the compiler can
// auto-vectorize; also the shape the SIMD kernels mirror.

mod scalar {
    /// Lane width of the fallback tiles (matches one AVX2 vector).
    pub(super) const LANES: usize = 8;

    /// One output row, `j`-tiled: a stack accumulator of [`LANES`]
    /// independent partial sums is held across the whole `k` loop, so
    /// the output is written once instead of read-modified `k` times.
    pub(super) fn matmul_row(a_row: &[f32], b: &[f32], m: usize, o_row: &mut [f32]) {
        let k = a_row.len();
        let mut j = 0usize;
        while j + LANES <= m {
            let mut acc = [0.0f32; LANES];
            for (kk, &av) in a_row.iter().enumerate() {
                let b_tile = &b[kk * m + j..kk * m + j + LANES];
                for (t, &bv) in b_tile.iter().enumerate() {
                    acc[t] += av * bv;
                }
            }
            o_row[j..j + LANES].copy_from_slice(&acc);
            j += LANES;
        }
        for jj in j..m {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a_row[kk] * b[kk * m + jj];
            }
            o_row[jj] = acc;
        }
    }

    /// Dot with [`LANES`] split accumulators: breaks the serial float
    /// dependency chain (which blocks auto-vectorization of reductions)
    /// at the cost of a reassociated sum.
    pub(super) fn dot(a: &[f32], b: &[f32]) -> f32 {
        let chunks = a.len() / LANES * LANES;
        let mut lanes = [0.0f32; LANES];
        for (ca, cb) in a[..chunks]
            .chunks_exact(LANES)
            .zip(b[..chunks].chunks_exact(LANES))
        {
            for t in 0..LANES {
                lanes[t] += ca[t] * cb[t];
            }
        }
        let mut s = 0.0f32;
        for &l in &lanes {
            s += l;
        }
        for i in chunks..a.len() {
            s += a[i] * b[i];
        }
        s
    }

    /// `y += s·x`: element-independent, so plain iteration vectorizes.
    pub(super) fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
        for (yy, &xx) in y.iter_mut().zip(x) {
            *yy += s * xx;
        }
    }
}

// ---------------------------------------------------------------------------
// AVX2 kernels (x86_64, runtime-detected).

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Horizontal sum of one 8-lane vector.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum(v: __m256) -> f32 {
        let lo = _mm256_castps256_ps128(v);
        let hi = _mm256_extractf128_ps(v, 1);
        let q = _mm_add_ps(lo, hi);
        let shuf = _mm_movehdup_ps(q);
        let sums = _mm_add_ps(q, shuf);
        let hi2 = _mm_movehl_ps(shuf, sums);
        _mm_cvtss_f32(_mm_add_ss(sums, hi2))
    }

    /// One output row with 16-wide register tiles (two accumulators
    /// held across the whole `k` loop), 8-wide then scalar tails.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support; `b.len() == k*m`,
    /// `o_row.len() == m`, `a_row.len() == k`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_row(a_row: &[f32], b: &[f32], m: usize, o_row: &mut [f32]) {
        let k = a_row.len();
        let bp = b.as_ptr();
        let op = o_row.as_mut_ptr();
        let mut j = 0usize;
        while j + 16 <= m {
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            for kk in 0..k {
                let av = _mm256_set1_ps(*a_row.get_unchecked(kk));
                let base = kk * m + j;
                acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(base))));
                acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(base + 8))));
            }
            _mm256_storeu_ps(op.add(j), acc0);
            _mm256_storeu_ps(op.add(j + 8), acc1);
            j += 16;
        }
        if j + 8 <= m {
            let mut acc = _mm256_setzero_ps();
            for kk in 0..k {
                let av = _mm256_set1_ps(*a_row.get_unchecked(kk));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(av, _mm256_loadu_ps(bp.add(kk * m + j))));
            }
            _mm256_storeu_ps(op.add(j), acc);
            j += 8;
        }
        for jj in j..m {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += *a_row.get_unchecked(kk) * *b.get_unchecked(kk * m + jj);
            }
            *o_row.get_unchecked_mut(jj) = acc;
        }
    }

    /// Dot with four 8-lane accumulators (32 floats in flight) to hide
    /// add latency, folded pairwise before the horizontal sum.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support; `a.len() == b.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0usize;
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut acc2 = _mm256_setzero_ps();
        let mut acc3 = _mm256_setzero_ps();
        while i + 32 <= n {
            acc0 = _mm256_add_ps(
                acc0,
                _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i))),
            );
            acc1 = _mm256_add_ps(
                acc1,
                _mm256_mul_ps(
                    _mm256_loadu_ps(ap.add(i + 8)),
                    _mm256_loadu_ps(bp.add(i + 8)),
                ),
            );
            acc2 = _mm256_add_ps(
                acc2,
                _mm256_mul_ps(
                    _mm256_loadu_ps(ap.add(i + 16)),
                    _mm256_loadu_ps(bp.add(i + 16)),
                ),
            );
            acc3 = _mm256_add_ps(
                acc3,
                _mm256_mul_ps(
                    _mm256_loadu_ps(ap.add(i + 24)),
                    _mm256_loadu_ps(bp.add(i + 24)),
                ),
            );
            i += 32;
        }
        let mut acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
        while i + 8 <= n {
            acc = _mm256_add_ps(
                acc,
                _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i))),
            );
            i += 8;
        }
        let mut s = hsum(acc);
        while i < n {
            s += *a.get_unchecked(i) * *b.get_unchecked(i);
            i += 1;
        }
        s
    }

    /// `y += s·x`, 8 lanes at a time.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support; `x.len() == y.len()`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let sv = _mm256_set1_ps(s);
        let mut i = 0usize;
        while i + 8 <= n {
            let yv = _mm256_add_ps(
                _mm256_loadu_ps(yp.add(i)),
                _mm256_mul_ps(sv, _mm256_loadu_ps(xp.add(i))),
            );
            _mm256_storeu_ps(yp.add(i), yv);
            i += 8;
        }
        while i < n {
            *y.get_unchecked_mut(i) += s * *x.get_unchecked(i);
            i += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// NEON kernels (aarch64; NEON is architecturally mandatory there, but
// the dispatch keeps the same runtime-detected shape as x86).

#[cfg(target_arch = "aarch64")]
mod arm {
    use std::arch::aarch64::*;

    /// One output row with 8-wide register tiles (two 4-lane
    /// accumulators) and fused multiply-add.
    ///
    /// # Safety
    /// Caller must have verified NEON support; `b.len() == k*m`,
    /// `o_row.len() == m`, `a_row.len() == k`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn matmul_row(a_row: &[f32], b: &[f32], m: usize, o_row: &mut [f32]) {
        let k = a_row.len();
        let bp = b.as_ptr();
        let op = o_row.as_mut_ptr();
        let mut j = 0usize;
        while j + 8 <= m {
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            for kk in 0..k {
                let av = *a_row.get_unchecked(kk);
                let base = kk * m + j;
                acc0 = vfmaq_n_f32(acc0, vld1q_f32(bp.add(base)), av);
                acc1 = vfmaq_n_f32(acc1, vld1q_f32(bp.add(base + 4)), av);
            }
            vst1q_f32(op.add(j), acc0);
            vst1q_f32(op.add(j + 4), acc1);
            j += 8;
        }
        if j + 4 <= m {
            let mut acc = vdupq_n_f32(0.0);
            for kk in 0..k {
                acc = vfmaq_n_f32(acc, vld1q_f32(bp.add(kk * m + j)), *a_row.get_unchecked(kk));
            }
            vst1q_f32(op.add(j), acc);
            j += 4;
        }
        for jj in j..m {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += *a_row.get_unchecked(kk) * *b.get_unchecked(kk * m + jj);
            }
            *o_row.get_unchecked_mut(jj) = acc;
        }
    }

    /// Dot with four 4-lane accumulators folded before `vaddvq`.
    ///
    /// # Safety
    /// Caller must have verified NEON support; `a.len() == b.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut i = 0usize;
        let mut acc0 = vdupq_n_f32(0.0);
        let mut acc1 = vdupq_n_f32(0.0);
        let mut acc2 = vdupq_n_f32(0.0);
        let mut acc3 = vdupq_n_f32(0.0);
        while i + 16 <= n {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
            acc2 = vfmaq_f32(acc2, vld1q_f32(ap.add(i + 8)), vld1q_f32(bp.add(i + 8)));
            acc3 = vfmaq_f32(acc3, vld1q_f32(ap.add(i + 12)), vld1q_f32(bp.add(i + 12)));
            i += 16;
        }
        let mut acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
        while i + 4 <= n {
            acc = vfmaq_f32(acc, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            i += 4;
        }
        let mut s = vaddvq_f32(acc);
        while i < n {
            s += *a.get_unchecked(i) * *b.get_unchecked(i);
            i += 1;
        }
        s
    }

    /// `y += s·x`, 4 lanes at a time with fused multiply-add.
    ///
    /// # Safety
    /// Caller must have verified NEON support; `x.len() == y.len()`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn axpy(s: f32, x: &[f32], y: &mut [f32]) {
        let n = x.len();
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0usize;
        while i + 4 <= n {
            let yv = vfmaq_n_f32(vld1q_f32(yp.add(i)), vld1q_f32(xp.add(i)), s);
            vst1q_f32(yp.add(i), yv);
            i += 4;
        }
        while i < n {
            *y.get_unchecked_mut(i) += s * *x.get_unchecked(i);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (seeded LCG; no entropy).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) - 0.5
            })
            .collect()
    }

    fn assert_close(fast: &[f32], reference: &[f32], what: &str) {
        assert_eq!(fast.len(), reference.len(), "{what}: length");
        for (i, (f, r)) in fast.iter().zip(reference).enumerate() {
            let tol = 1e-5 + 1e-4 * r.abs();
            assert!(
                (f - r).abs() <= tol,
                "{what}[{i}]: fast {f} vs reference {r} (tol {tol})"
            );
        }
    }

    #[test]
    fn fast_matmul_block_matches_reference_within_tolerance() {
        // Shapes straddle every tile boundary: below one lane, exact
        // multiples, odd tails, degenerate empties.
        for &(n, k, m) in &[
            (0usize, 3usize, 4usize),
            (1, 1, 1),
            (2, 0, 5),
            (3, 7, 1),
            (4, 8, 8),
            (5, 13, 16),
            (6, 9, 17),
            (7, 33, 23),
            (3, 64, 48),
        ] {
            let a = fill(1 + n as u64, n * k);
            let b = fill(2 + m as u64, k * m);
            let mut rf = vec![0.0f32; n * m];
            let mut ff = vec![0.0f32; n * m];
            ReferenceBackend.matmul_block(&a, &b, k, m, 0..n, &mut rf);
            FastBackend.matmul_block(&a, &b, k, m, 0..n, &mut ff);
            assert_close(&ff, &rf, &format!("matmul {n}x{k}x{m}"));
        }
    }

    #[test]
    fn fast_matmul_tb_and_ta_match_reference_within_tolerance() {
        for &(n, k, m) in &[(1usize, 1usize, 1usize), (4, 8, 8), (5, 13, 3), (7, 40, 17)] {
            // tb: a is n×k, b is m×k.
            let a = fill(11, n * k);
            let b = fill(12, m * k);
            let mut rf = vec![0.0f32; n * m];
            let mut ff = vec![0.0f32; n * m];
            ReferenceBackend.matmul_tb_block(&a, &b, k, m, 0..n, &mut rf);
            FastBackend.matmul_tb_block(&a, &b, k, m, 0..n, &mut ff);
            assert_close(&ff, &rf, &format!("matmul_tb {n}x{k}x{m}"));

            // ta: a is k×n, b is k×m.
            let at = fill(13, k * n);
            let bt = fill(14, k * m);
            let mut rta = vec![0.0f32; n * m];
            let mut fta = vec![0.0f32; n * m];
            ReferenceBackend.matmul_ta_serial(&at, &bt, n, k, m, &mut rta);
            FastBackend.matmul_ta_serial(&at, &bt, n, k, m, &mut fta);
            assert_close(&fta, &rta, &format!("matmul_ta {n}x{k}x{m}"));
        }
    }

    #[test]
    fn fast_rows_are_bit_identical_across_block_splits() {
        // The worker-count invariance Fast promises: a row's bits do not
        // depend on which block computed it.
        let (n, k, m) = (6usize, 21usize, 19usize);
        let a = fill(21, n * k);
        let b = fill(22, k * m);
        let mut whole = vec![0.0f32; n * m];
        FastBackend.matmul_block(&a, &b, k, m, 0..n, &mut whole);
        let mut split = vec![0.0f32; n * m];
        let cut = 2usize;
        let (lo, hi) = split.split_at_mut(cut * m);
        FastBackend.matmul_block(&a, &b, k, m, 0..cut, lo);
        FastBackend.matmul_block(&a, &b, k, m, cut..n, hi);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&whole), bits(&split));
    }

    #[test]
    fn scalar_fallback_agrees_with_dispatched_kernels() {
        // On AVX2/NEON hosts this cross-checks SIMD against the scalar
        // tile; on anything else both sides run the fallback and the
        // test still guards the fallback's own correctness vs Reference.
        let a = fill(31, 103);
        let b = fill(32, 103);
        let d_dispatch = dot(&a, &b);
        let d_scalar = scalar::dot(&a, &b);
        let d_ref = ReferenceBackend.dot(&a, &b);
        for d in [d_dispatch, d_scalar] {
            assert!((d - d_ref).abs() <= 1e-4 * (1.0 + d_ref.abs()));
        }

        let (k, m) = (9usize, 21usize);
        let a_row = fill(33, k);
        let bm = fill(34, k * m);
        let mut o_dispatch = vec![0.0f32; m];
        let mut o_scalar = vec![0.0f32; m];
        matmul_row(&a_row, &bm, m, &mut o_dispatch);
        scalar::matmul_row(&a_row, &bm, m, &mut o_scalar);
        let mut o_ref = vec![0.0f32; m];
        ReferenceBackend.matmul_block(&a_row, &bm, k, m, 0..1, &mut o_ref);
        assert_close(&o_dispatch, &o_ref, "matmul_row dispatch");
        assert_close(&o_scalar, &o_ref, "matmul_row scalar");

        let x = fill(35, 37);
        let mut y_dispatch = fill(36, 37);
        let mut y_scalar = y_dispatch.clone();
        axpy(0.75, &x, &mut y_dispatch);
        scalar::axpy(0.75, &x, &mut y_scalar);
        assert_close(&y_dispatch, &y_scalar, "axpy");
    }

    #[test]
    fn fast_cosine_is_consistent_with_split_norms() {
        let a = fill(41, 50);
        let b = fill(42, 50);
        let fused = FastBackend.cosine(&a, &b);
        let an = FastBackend.sum_sq(&a).sqrt();
        let bn = FastBackend.sum_sq(&b).sqrt();
        let split = FastBackend.dot(&a, &b) / (an * bn).max(1e-12);
        assert_eq!(fused.to_bits(), split.to_bits());
        let r = ReferenceBackend.cosine(&a, &b);
        assert!((fused - r).abs() <= 1e-5);
    }
}
