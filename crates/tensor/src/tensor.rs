//! Dense row-major 2-D `f32` tensor.
//!
//! All shape mismatches are programming errors in this workspace, so the
//! arithmetic methods assert shapes and panic with a descriptive message
//! rather than returning `Result` (the pattern DataFusion uses for kernel
//! internals: validate at the boundary, assert in the hot path).

/// A dense row-major matrix of `f32`.
///
/// Vectors are represented as `n×1` (column) or `1×d` (row) matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// Create a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Tensor::from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// An all-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// A `1×1` scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self::from_vec(1, 1, vec![value])
    }

    /// The identity matrix `n×n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(n, n);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single element of a `1×1` tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not `1×1`.
    pub fn item(&self) -> f32 {
        assert_eq!(self.shape(), (1, 1), "item() requires a 1x1 tensor");
        self.data[0]
    }

    /// Matrix multiply `self (n×k) · other (k×m) -> n×m`.
    ///
    /// Dispatches to the thread's active [`ComputeBackend`]
    /// (see [`crate::backend`]): Reference runs the cache-friendly
    /// `i-k-j` scalar loop, Fast the register-tiled SIMD kernel. Fans
    /// out over output-row blocks when [`crate::parallel`] is enabled;
    /// for either backend every worker count produces bit-identical
    /// results, because rows are never split across workers.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let work = self.rows * self.cols * other.cols;
        self.matmul_workers(other, crate::parallel::workers_for(self.rows, work))
    }

    /// As [`Tensor::matmul`] with an explicit worker count (`1` = serial).
    ///
    /// Output rows are computed by the same per-row kernel regardless of
    /// how they are blocked across workers, so any `workers` value yields
    /// bit-identical results (asserted by the parallel proptests).
    pub fn matmul_workers(&self, other: &Tensor, workers: usize) -> Tensor {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        let a_data = &self.data;
        let b_data = &other.data;
        // Captured here: pool workers run the block under the backend of
        // the thread that *submitted* the kernel, not their own default.
        let be = crate::backend::active_backend();
        crate::parallel::for_row_blocks(&mut out.data, n, m, workers, |rows, block| {
            be.matmul_block(a_data, b_data, k, m, rows, block);
        });
        out
    }

    /// `self (n×k) · other^T (m×k) -> n×m` without materializing the transpose.
    pub fn matmul_tb(&self, other: &Tensor) -> Tensor {
        let work = self.rows * self.cols * other.rows;
        self.matmul_tb_workers(other, crate::parallel::workers_for(self.rows, work))
    }

    /// As [`Tensor::matmul_tb`] with an explicit worker count (`1` = serial);
    /// bit-identical for every `workers` value.
    pub fn matmul_tb_workers(&self, other: &Tensor, workers: usize) -> Tensor {
        assert_eq!(
            self.cols, other.cols,
            "matmul_tb: {}x{} · ({}x{})^T",
            self.rows, self.cols, other.rows, other.cols
        );
        let (n, k, m) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(n, m);
        let a_data = &self.data;
        let b_data = &other.data;
        let be = crate::backend::active_backend();
        crate::parallel::for_row_blocks(&mut out.data, n, m, workers, |rows, block| {
            be.matmul_tb_block(a_data, b_data, k, m, rows, block);
        });
        out
    }

    /// `self^T (k×n) · other (k×m) -> n×m` without materializing the transpose.
    ///
    /// The serial path keeps the cache-friendly `k`-outer loop; the blocked
    /// path recomputes each output row with the same `kk`-ascending,
    /// zero-skipping accumulation per element, so both orders produce
    /// bit-identical sums.
    pub fn matmul_ta(&self, other: &Tensor) -> Tensor {
        let (k, n, m) = (self.rows, self.cols, other.cols);
        self.matmul_ta_workers(other, crate::parallel::workers_for(n, k * n * m))
    }

    /// As [`Tensor::matmul_ta`] with an explicit worker count (`1` =
    /// serial); bit-identical for every `workers` value.
    pub fn matmul_ta_workers(&self, other: &Tensor, workers: usize) -> Tensor {
        assert_eq!(
            self.rows, other.rows,
            "matmul_ta: ({}x{})^T · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (k, n, m) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(n, m);
        let be = crate::backend::active_backend();
        if workers <= 1 {
            be.matmul_ta_serial(&self.data, &other.data, n, k, m, &mut out.data);
            return out;
        }
        let a_data = &self.data;
        let b_data = &other.data;
        crate::parallel::for_row_blocks(&mut out.data, n, m, workers, |rows, block| {
            be.matmul_ta_block(a_data, b_data, n, k, m, rows, block);
        });
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise binary op with shape check.
    fn zip_with(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise addition.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise subtraction.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_with(other, |a, b| a * b)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Apply `f` to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// In-place `self += other * s` (axpy).
    pub fn add_scaled_assign(&mut self, other: &Tensor, s: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_assign: shape mismatch"
        );
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * s;
        }
    }

    /// Broadcast-add a `1×d` row vector to every row of an `n×d` matrix.
    pub fn add_row_broadcast(&self, row: &Tensor) -> Tensor {
        assert_eq!(row.rows, 1, "add_row_broadcast: rhs must be 1×d");
        assert_eq!(self.cols, row.cols, "add_row_broadcast: width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let dst = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (d, &b) in dst.iter_mut().zip(&row.data) {
                *d += b;
            }
        }
        out
    }

    /// Scale each row `i` of an `n×d` matrix by element `i` of an `n×1` column.
    pub fn mul_rows_by_col(&self, col: &Tensor) -> Tensor {
        assert_eq!(col.cols, 1, "mul_rows_by_col: rhs must be n×1");
        assert_eq!(self.rows, col.rows, "mul_rows_by_col: height mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let s = col.data[r];
            for d in out.row_mut(r) {
                *d *= s;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column vector (`n×1`) of per-row sums.
    pub fn sum_rows(&self) -> Tensor {
        let data = (0..self.rows).map(|r| self.row(r).iter().sum()).collect();
        Tensor {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Row-wise softmax (numerically stable).
    pub fn softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0f32;
            for x in row.iter_mut() {
                *x = (*x - max).exp();
                z += *x;
            }
            for x in row.iter_mut() {
                *x /= z;
            }
        }
        out
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&self) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = row.iter().map(|&x| (x - max).exp()).sum();
            let lse = max + z.ln();
            for x in row.iter_mut() {
                *x -= lse;
            }
        }
        out
    }

    /// L2-normalize each row; rows with norm < `eps` are left untouched.
    pub fn l2_normalize_rows(&self, eps: f32) -> Tensor {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let norm = row.iter().map(|&x| x * x).sum::<f32>().sqrt();
            if norm > eps {
                for x in row.iter_mut() {
                    *x /= norm;
                }
            }
        }
        out
    }

    /// Concatenate two matrices side by side (`n×a`, `n×b` → `n×(a+b)`).
    pub fn concat_cols(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "concat_cols: height mismatch");
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Tensor {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Stack rows vertically (`a×d`, `b×d` → `(a+b)×d`).
    pub fn concat_rows(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "concat_rows: width mismatch");
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Tensor {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Select rows by index (duplicates allowed).
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            assert!(
                i < self.rows,
                "gather_rows: index {i} out of {} rows",
                self.rows
            );
            data.extend_from_slice(self.row(i));
        }
        Tensor {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Index of the largest element in each row. NaN entries never win:
    /// [`rank_asc`] ranks them below every number, so a row with a broken
    /// logit still yields the argmax of its finite entries (an all-NaN
    /// row deterministically yields the last index).
    pub fn argmax_rows(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| {
                let row = self.row(r);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| rank_asc(*a.1, *b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Cosine similarity between row `i` of `self` and row `j` of `other`.
    pub fn cosine_rows(&self, i: usize, other: &Tensor, j: usize) -> f32 {
        assert_eq!(self.cols, other.cols, "cosine_rows: width mismatch");
        cosine_slices(self.row(i), other.row(j))
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// Cosine similarity between two raw slices, without materialising a
/// [`Tensor`]. This is the single implementation [`Tensor::cosine_rows`]
/// delegates to, so callers holding plain `&[f32]` embeddings (e.g. the
/// Prompt Augmenter's cache) get identical scores with no allocation.
///
/// Dispatches to the active [`ComputeBackend`](crate::ComputeBackend);
/// under the default Reference backend the three accumulators (`dot`,
/// `na`, `nb`) are `k`-ascending scalar sums, bit-identical to the
/// historical implementation.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn cosine_slices(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_slices: length mismatch");
    crate::backend::active_backend().cosine(a, b)
}

/// L2 norm of a slice — the exact summation [`cosine_slices`] performs
/// internally for each operand under the same backend, so
/// `cosine_slices_with_norms(a, b, l2_norm(a), l2_norm(b))` is
/// bit-identical to `cosine_slices(a, b)` (for Reference: a
/// `k`-ascending scalar sum of squares, then sqrt).
pub fn l2_norm(a: &[f32]) -> f32 {
    crate::backend::active_backend().sum_sq(a).sqrt()
}

/// [`cosine_slices`] with both row norms precomputed (via [`l2_norm`]).
///
/// Scoring loops that pair every prompt row with every query row
/// (`P×N` combinations) recompute each row's norm `N` (resp. `P`) times
/// through `cosine_slices`; hoisting the norms cuts the inner loop to the
/// dot product alone — ~3× fewer flops — without changing a single bit:
/// each accumulator (`dot`, `na`, `nb`) is an independent sum under the
/// active backend, so splitting them across loops preserves every
/// rounding step. This holds for Fast too (its fused cosine runs the
/// same SIMD reduction per accumulator).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn cosine_slices_with_norms(a: &[f32], b: &[f32], a_norm: f32, b_norm: f32) -> f32 {
    assert_eq!(
        a.len(),
        b.len(),
        "cosine_slices_with_norms: length mismatch"
    );
    let dot = crate::backend::active_backend().dot(a, b);
    dot / (a_norm * b_norm).max(1e-12)
}

/// Canonical key for deterministic float ordering: every NaN (either
/// sign, any payload) maps to the canonical *negative* NaN and `-0.0`
/// maps to `+0.0`, so that [`f32::total_cmp`] over the keys agrees with
/// `partial_cmp` on every pair of comparable floats (total_cmp only
/// disagrees on NaN and on `-0.0` vs `+0.0`, and both are canonicalized
/// away) while still totally ordering NaN — strictly below `-∞`, since
/// total_cmp places sign-negative NaN under every real value.
#[inline]
fn rank_key(v: f32) -> f32 {
    if v.is_nan() {
        f32::from_bits(0xffc0_0000) // canonical -NaN: below -∞ in total_cmp
    } else if v == 0.0 {
        0.0
    } else {
        v
    }
}

/// Deterministic **ascending** comparator for `f32` scores.
///
/// `sort_by(partial_cmp(..).unwrap_or(Equal))` silently turns any NaN
/// into an ordering that depends on sort internals and input order —
/// exactly the nondeterminism the Eq. 7–8 prompt ranking and the
/// WorkerPool bit-identity contract cannot tolerate. This comparator is
/// total: NaN (either sign) ranks **below every number**, so a broken
/// score (e.g. the cosine of a zero-norm embedding) loses every `max_by`
/// and lands last in a descending sort instead of poisoning the order.
///
/// On NaN-free inputs it is indistinguishable from `partial_cmp`: the
/// only other pair where [`f32::total_cmp`] disagrees with IEEE order is
/// `-0.0` vs `+0.0`, which [`rank_desc`]/`rank_asc` canonicalize to
/// equal. Every float sort in result-affecting crates must go through
/// these comparators (enforced by `gp-lint` rule D2).
#[inline]
pub fn rank_asc(a: f32, b: f32) -> std::cmp::Ordering {
    rank_key(a).total_cmp(&rank_key(b))
}

/// Deterministic **descending** comparator for `f32` scores: the reverse
/// of [`rank_asc`], so NaN still ranks last. Use as
/// `scores.sort_by(|a, b| rank_desc(a.score, b.score))` for
/// best-first orderings.
#[inline]
pub fn rank_desc(a: f32, b: f32) -> std::cmp::Ordering {
    rank_asc(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn rank_comparators_agree_with_partial_cmp_on_comparable_floats() {
        let vals = [
            -f32::INFINITY,
            -1.5e30,
            -1.0,
            -f32::MIN_POSITIVE / 2.0, // subnormal
            -0.0,
            0.0,
            f32::MIN_POSITIVE / 2.0,
            1.0,
            1.5e30,
            f32::INFINITY,
        ];
        for &a in &vals {
            for &b in &vals {
                let want = a.partial_cmp(&b).expect("comparable");
                assert_eq!(rank_asc(a, b), want, "asc({a}, {b})");
                assert_eq!(rank_desc(a, b), want.reverse(), "desc({a}, {b})");
            }
        }
    }

    #[test]
    fn rank_comparators_put_nan_last() {
        use std::cmp::Ordering;
        for nan in [f32::NAN, -f32::NAN, f32::from_bits(0x7fc0_0001)] {
            for &v in &[-f32::INFINITY, -1.0, 0.0, 1.0, f32::INFINITY] {
                assert_eq!(rank_asc(nan, v), Ordering::Less, "NaN must rank below {v}");
                assert_eq!(rank_desc(nan, v), Ordering::Greater);
            }
            assert_eq!(rank_asc(nan, f32::NAN), Ordering::Equal);
        }
        // A descending sort pushes NaN to the back deterministically.
        let mut scores = vec![0.5, f32::NAN, 2.0, -1.0, -f32::NAN];
        scores.sort_by(|a, b| rank_desc(*a, *b));
        assert_eq!(&scores[..3], &[2.0, 0.5, -1.0]);
        assert!(scores[3].is_nan() && scores[4].is_nan());
    }

    #[test]
    fn argmax_ignores_nan_entries() {
        let m = t(
            3,
            3,
            &[
                f32::NAN,
                2.0,
                1.0,
                1.0,
                f32::NAN,
                3.0,
                f32::NAN,
                f32::NAN,
                f32::NAN,
            ],
        );
        assert_eq!(m.argmax_rows(), vec![1, 2, 2]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = t(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, t(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_tb_equals_matmul_with_transpose() {
        let a = t(2, 3, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = t(
            4,
            3,
            &[7.0, 8.0, 9.0, 1.0, -1.0, 2.0, 0.0, 3.0, 4.0, 2.0, 2.0, 2.0],
        );
        assert_eq!(a.matmul_tb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn matmul_ta_equals_matmul_with_transpose() {
        let a = t(3, 2, &[1.0, -2.0, 3.0, 0.5, 5.0, -6.0]);
        let b = t(
            3,
            4,
            &[7.0, 8.0, 9.0, 1.0, -1.0, 2.0, 0.0, 3.0, 4.0, 2.0, 2.0, 2.0],
        );
        assert_eq!(a.matmul_ta(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Tensor::eye(2)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = t(2, 3, &[1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant_and_stable() {
        let a = t(1, 3, &[1000.0, 1001.0, 1002.0]);
        let s = a.softmax_rows();
        assert!(s.all_finite());
        let b = t(1, 3, &[0.0, 1.0, 2.0]).softmax_rows();
        for k in 0..3 {
            assert!((s.get(0, k) - b.get(0, k)).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = t(2, 4, &[0.3, -1.2, 2.0, 0.0, 5.0, 5.0, 5.0, 5.0]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for r in 0..2 {
            for c in 0..4 {
                assert!((ls.get(r, c) - s.get(r, c).ln()).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn l2_normalize_gives_unit_rows() {
        let a = t(2, 2, &[3.0, 4.0, 0.0, 0.0]);
        let n = a.l2_normalize_rows(1e-12);
        assert!((n.row(0).iter().map(|x| x * x).sum::<f32>() - 1.0).abs() < 1e-6);
        // zero row untouched
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn concat_and_gather() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = t(2, 1, &[9.0, 8.0]);
        let c = a.concat_cols(&b);
        assert_eq!(c, t(2, 3, &[1.0, 2.0, 9.0, 3.0, 4.0, 8.0]));
        let g = c.gather_rows(&[1, 1, 0]);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.row(0), &[3.0, 4.0, 8.0]);
        assert_eq!(g.row(2), &[1.0, 2.0, 9.0]);
    }

    #[test]
    fn broadcast_and_row_scaling() {
        let a = t(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let r = t(1, 2, &[10.0, 20.0]);
        assert_eq!(a.add_row_broadcast(&r), t(2, 2, &[11.0, 22.0, 13.0, 24.0]));
        let c = t(2, 1, &[2.0, -1.0]);
        assert_eq!(a.mul_rows_by_col(&c), t(2, 2, &[2.0, 4.0, -3.0, -4.0]));
    }

    #[test]
    fn argmax_and_cosine() {
        let a = t(2, 3, &[0.1, 0.9, 0.0, 3.0, 1.0, 2.0]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
        let b = t(1, 3, &[0.2, 1.8, 0.0]);
        assert!((a.cosine_rows(0, &b, 0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn cosine_slices_is_bitwise_identical_to_cosine_rows() {
        let a = t(2, 4, &[0.3, -1.2, 5.0, 0.01, 2.0, 2.0, -7.5, 0.0]);
        let b = t(1, 4, &[1.0, 0.25, -3.0, 8.8]);
        for i in 0..2 {
            assert_eq!(
                a.cosine_rows(i, &b, 0).to_bits(),
                cosine_slices(a.row(i), b.row(0)).to_bits()
            );
        }
        // Zero vectors hit the 1e-12 denominator clamp, not NaN.
        assert_eq!(cosine_slices(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "cosine_slices: length mismatch")]
    fn cosine_slices_length_mismatch_panics() {
        let _ = cosine_slices(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn cosine_with_precomputed_norms_is_bitwise_identical() {
        // Values chosen to be inexact in f32 so any change in summation
        // order or rounding sequence would flip low-order bits.
        let a = t(
            3,
            5,
            &[
                0.1, -0.7, 3.3, 0.013, -2.9, //
                1.7, 1.7, -7.5, 0.31, 0.0, //
                -0.003, 12.5, 0.77, -0.1, 4.4,
            ],
        );
        let b = t(
            2,
            5,
            &[1.1, 0.25, -3.3, 8.8, 0.09, -0.5, 0.6, -0.7, 0.8, -0.9],
        );
        let a_norms: Vec<f32> = (0..a.rows()).map(|i| l2_norm(a.row(i))).collect();
        let b_norms: Vec<f32> = (0..b.rows()).map(|j| l2_norm(b.row(j))).collect();
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                assert_eq!(
                    cosine_slices(a.row(i), b.row(j)).to_bits(),
                    cosine_slices_with_norms(a.row(i), b.row(j), a_norms[i], b_norms[j]).to_bits(),
                    "({i},{j})"
                );
            }
        }
        // The zero-vector clamp behaves identically too.
        assert_eq!(
            cosine_slices(&[0.0, 0.0], &[1.0, 2.0]).to_bits(),
            cosine_slices_with_norms(
                &[0.0, 0.0],
                &[1.0, 2.0],
                l2_norm(&[0.0, 0.0]),
                l2_norm(&[1.0, 2.0])
            )
            .to_bits()
        );
    }

    #[test]
    fn matmul_ta_workers_is_bit_identical_to_serial() {
        let k = 67;
        let n = 9;
        let m = 7;
        let a = t(
            k,
            n,
            &(0..k * n)
                .map(|i| ((i * 31 % 17) as f32 - 8.0) / 7.0)
                .collect::<Vec<_>>(),
        );
        let b = t(
            k,
            m,
            &(0..k * m)
                .map(|i| ((i * 13 % 23) as f32 - 11.0) / 9.0)
                .collect::<Vec<_>>(),
        );
        let serial = a.matmul_ta_workers(&b, 1);
        for workers in [2usize, 3, 8] {
            let blocked = a.matmul_ta_workers(&b, workers);
            for (x, y) in serial.as_slice().iter().zip(blocked.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "workers={workers}");
            }
        }
        // And against the transpose-based reference.
        let reference = a.transpose().matmul_workers(&b, 1);
        for (x, y) in serial.as_slice().iter().zip(reference.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(2, 3);
        let b = Tensor::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
