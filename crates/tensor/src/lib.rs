//! # gp-tensor
//!
//! Dense 2-D `f32` tensors and a tape-based reverse-mode automatic
//! differentiation engine, built for the GraphPrompter reproduction.
//!
//! The design follows the classic *Wengert list*: every operation appends a
//! node to a [`Tape`]; node ids are therefore already in topological order
//! and the backward pass is a single reverse sweep with analytic adjoints
//! per [`Op`] variant (no boxed closures, no `Rc` cycles).
//!
//! Two ops are specific to graph learning and carry the load of the paper:
//!
//! * [`Tape::spmm`] — sparse (edge-list) × dense multiply with
//!   **differentiable per-edge weights**, i.e. `out[dst] += w_e · x[src]`.
//!   Gradients flow both into the dense features *and into the edge
//!   weights*, which is exactly what trains the Prompt Generator's
//!   reconstruction layer (Eqs. 2–4 of the paper).
//! * [`Tape::edge_softmax`] — softmax over edge scores grouped by
//!   destination node, the primitive behind GAT-style attention and the
//!   task-graph attention GNN.
//!
//! The engine is deliberately minimal: 2-D shapes only (vectors are `n×1`
//! or `1×d`), `f32` only. Model sizes in this reproduction (hidden dims
//! ≤ 128, subgraphs ≤ a few hundred nodes) keep tensors simple; see
//! DESIGN.md.
//!
//! Kernels are **pluggable**: every dense/sparse op dispatches through the
//! thread's active [`ComputeBackend`] (see [`backend`]). The default
//! [`Backend::Reference`] keeps the historical bit-exact accumulation
//! order — results bit-identical across runs, hosts, and worker counts —
//! while [`Backend::Fast`] swaps in register-tiled `std::arch` SIMD
//! kernels (AVX2/NEON behind runtime detection, scalar-tiled fallback)
//! that are tolerance-equal to Reference. Heavy row-parallel kernels
//! (`matmul` and friends) additionally fan out over a persistent,
//! budget-bounded [`parallel::WorkerPool`] — see [`parallel`] — and both
//! backends stay bit-identical to their own serial path for every worker
//! count, because rows are never split across workers.

pub mod backend;
pub mod parallel;
pub mod rng;
pub mod sparse;
pub mod tape;
pub mod tensor;

pub use backend::{
    active_backend, installed_backend, Backend, BackendGuard, ComputeBackend, FastBackend,
    ReferenceBackend,
};
pub use parallel::{
    configured_workers, workers_for_budget, Parallelism, PoolGuard, PoolStats, WorkerPool,
};
pub use sparse::EdgeList;
pub use tape::{Op, Tape, Var};
pub use tensor::{cosine_slices, cosine_slices_with_norms, l2_norm, rank_asc, rank_desc, Tensor};
