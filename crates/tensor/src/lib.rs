//! # gp-tensor
//!
//! Dense 2-D `f32` tensors and a tape-based reverse-mode automatic
//! differentiation engine, built for the GraphPrompter reproduction.
//!
//! The design follows the classic *Wengert list*: every operation appends a
//! node to a [`Tape`]; node ids are therefore already in topological order
//! and the backward pass is a single reverse sweep with analytic adjoints
//! per [`Op`] variant (no boxed closures, no `Rc` cycles).
//!
//! Two ops are specific to graph learning and carry the load of the paper:
//!
//! * [`Tape::spmm`] — sparse (edge-list) × dense multiply with
//!   **differentiable per-edge weights**, i.e. `out[dst] += w_e · x[src]`.
//!   Gradients flow both into the dense features *and into the edge
//!   weights*, which is exactly what trains the Prompt Generator's
//!   reconstruction layer (Eqs. 2–4 of the paper).
//! * [`Tape::edge_softmax`] — softmax over edge scores grouped by
//!   destination node, the primitive behind GAT-style attention and the
//!   task-graph attention GNN.
//!
//! The engine is deliberately minimal: 2-D shapes only (vectors are `n×1`
//! or `1×d`), `f32` only. Model sizes in this reproduction (hidden dims
//! ≤ 128, subgraphs ≤ a few hundred nodes) keep kernels simple; see
//! DESIGN.md. Heavy row-parallel kernels (`matmul` and friends) can fan
//! out over a persistent, budget-bounded [`parallel::WorkerPool`] — see
//! [`parallel`] — and stay **bit-identical** to the serial path for every
//! worker count.

pub mod parallel;
pub mod rng;
pub mod sparse;
pub mod tape;
pub mod tensor;

#[allow(deprecated)]
pub use parallel::set_parallelism;
pub use parallel::{
    configured_workers, workers_for_budget, Parallelism, PoolGuard, PoolStats, WorkerPool,
};
pub use sparse::EdgeList;
pub use tape::{Op, Tape, Var};
pub use tensor::{cosine_slices, cosine_slices_with_norms, l2_norm, rank_asc, rank_desc, Tensor};
