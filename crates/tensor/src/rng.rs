//! Deterministic random tensor initialization.
//!
//! The approved offline dependency list includes `rand` but not
//! `rand_distr`, so the Gaussian sampler is a small Box–Muller
//! implementation on top of `rand`'s uniform source.

use rand::Rng;

use crate::Tensor;

/// Draw one standard-normal sample via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Guard against ln(0).
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
}

/// `rows×cols` tensor of N(0, std²) entries.
pub fn randn<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| standard_normal(rng) * std)
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Xavier/Glorot-uniform initialization for a `fan_in×fan_out` weight matrix.
pub fn xavier_uniform<R: Rng + ?Sized>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-limit..=limit))
        .collect();
    Tensor::from_vec(fan_in, fan_out, data)
}

/// `rows×cols` tensor of U(lo, hi) entries.
pub fn rand_uniform<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    lo: f32,
    hi: f32,
) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_has_sane_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn xavier_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = xavier_uniform(&mut rng, 64, 32);
        let limit = (6.0 / 96.0f32).sqrt();
        assert!(w.as_slice().iter().all(|x| x.abs() <= limit + 1e-6));
    }

    #[test]
    fn seeded_draws_are_reproducible() {
        let a = randn(&mut StdRng::seed_from_u64(42), 3, 3, 1.0);
        let b = randn(&mut StdRng::seed_from_u64(42), 3, 3, 1.0);
        assert_eq!(a, b);
    }
}
