//! Deterministic worker-pool parallelism for tensor kernels.
//!
//! The heavy kernels ([`crate::Tensor::matmul`] and friends, the row-wise
//! normalizations) partition their *output rows* into disjoint contiguous
//! blocks and run the exact same per-row scalar loop on each block, one
//! block per worker thread. Because no accumulation ever crosses a row
//! boundary, the floating-point evaluation order of every output element
//! is identical for any worker count — results are **bit-identical** to
//! the serial path by construction (asserted by proptests).
//!
//! Threads come from [`std::thread::scope`]; there is no persistent pool
//! and no extra dependency. Spawning a thread costs ~10µs on Linux, so
//! kernels only fan out when the estimated scalar-op count clears
//! [`MIN_PARALLEL_WORK`].
//!
//! The process-wide worker count is set with [`set_parallelism`] (default
//! [`Parallelism::Serial`]); `gp_core`'s `EngineBuilder` exposes it as a
//! builder knob.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

static WORKERS_GAUGE: gp_obs::Gauge = gp_obs::Gauge::new("tensor.parallel.workers");
static FANOUTS: gp_obs::Counter = gp_obs::Counter::new("tensor.parallel.fanouts");
static SERIAL_RUNS: gp_obs::Counter = gp_obs::Counter::new("tensor.parallel.serial_runs");
static TASKS: gp_obs::Counter = gp_obs::Counter::new("tensor.parallel.tasks");

/// How many worker threads the tensor kernels may use.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread; every kernel runs its classic serial loop (default).
    #[default]
    Serial,
    /// Exactly `n` worker threads (clamped to ≥ 1).
    Threads(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// The worker count this setting resolves to on this host.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Minimum estimated scalar ops before a kernel fans out. Below this the
/// ~10µs-per-thread spawn cost dominates any speedup.
pub const MIN_PARALLEL_WORK: usize = 1 << 15;

static WORKERS: AtomicUsize = AtomicUsize::new(1);

/// Set the process-wide kernel parallelism. Takes effect for every
/// subsequent kernel call in any thread.
pub fn set_parallelism(p: Parallelism) {
    let workers = p.workers();
    WORKERS.store(workers, Ordering::Relaxed);
    WORKERS_GAUGE.set(workers as i64);
}

/// The currently configured worker count (≥ 1).
pub fn configured_workers() -> usize {
    WORKERS.load(Ordering::Relaxed).max(1)
}

/// Worker count a kernel with `rows` independent output rows and
/// `total_work` estimated scalar ops should use under the current setting:
/// 1 when parallelism is off or the job is too small, else
/// `min(configured, rows)`.
pub fn workers_for(rows: usize, total_work: usize) -> usize {
    let w = configured_workers();
    if w <= 1 || rows < 2 || total_work < MIN_PARALLEL_WORK {
        1
    } else {
        w.min(rows)
    }
}

/// Run `f(rows_range, block)` over disjoint contiguous row blocks of the
/// row-major buffer `out` (`rows × cols`), one block per worker.
///
/// With `workers <= 1` this is a plain call `f(0..rows, out)` on the
/// current thread — the serial path and the parallel path execute the very
/// same closure, which is what makes bit-identity a structural property
/// rather than a testing aspiration.
pub fn for_row_blocks<F>(out: &mut [f32], rows: usize, cols: usize, workers: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols, "for_row_blocks: buffer shape");
    let workers = workers.max(1).min(rows.max(1));
    if workers <= 1 {
        SERIAL_RUNS.inc();
        f(0..rows, out);
        return;
    }
    FANOUTS.inc();
    let block_rows = rows.div_ceil(workers);
    // Actual spawned blocks can be fewer than `workers` when rounding up
    // the block size covers the rows early (e.g. 11 rows / 7 workers).
    TASKS.add(rows.div_ceil(block_rows) as u64);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = out;
        let mut start = 0usize;
        while start < rows {
            let take = block_rows.min(rows - start);
            let (block, tail) = rest.split_at_mut(take * cols);
            rest = tail;
            let range = start..start + take;
            scope.spawn(move || f(range, block));
            start += take;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolves_to_positive_workers() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn row_blocks_cover_every_row_exactly_once() {
        for workers in [1usize, 2, 3, 7, 16] {
            let rows = 11;
            let cols = 3;
            let mut out = vec![0.0f32; rows * cols];
            for_row_blocks(&mut out, rows, cols, workers, |range, block| {
                assert_eq!(block.len(), range.len() * cols);
                for (local, r) in range.enumerate() {
                    for c in 0..cols {
                        block[local * cols + c] += (r * cols + c) as f32 + 1.0;
                    }
                }
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f32 + 1.0, "row coverage broke at {i} (workers={workers})");
            }
        }
    }

    #[test]
    fn workers_for_respects_thresholds() {
        set_parallelism(Parallelism::Threads(4));
        assert_eq!(workers_for(100, MIN_PARALLEL_WORK), 4);
        assert_eq!(workers_for(100, MIN_PARALLEL_WORK - 1), 1);
        assert_eq!(workers_for(1, usize::MAX), 1);
        assert_eq!(workers_for(3, MIN_PARALLEL_WORK), 3);
        set_parallelism(Parallelism::Serial);
        assert_eq!(workers_for(100, usize::MAX), 1);
    }
}
