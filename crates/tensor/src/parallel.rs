//! Deterministic parallelism for tensor kernels, built around a
//! persistent [`WorkerPool`] with a single **thread budget**.
//!
//! The heavy kernels ([`crate::Tensor::matmul`] and friends, the row-wise
//! normalizations) partition their *output rows* into disjoint contiguous
//! blocks and run the exact same per-row scalar loop on each block, one
//! block per worker. Because no accumulation ever crosses a row boundary,
//! the floating-point evaluation order of every output element is
//! identical for any worker count — results are **bit-identical** to the
//! serial path by construction (asserted by proptests). The pool changes
//! only *who* executes a block, never how it is computed.
//!
//! # The thread budget
//!
//! A [`WorkerPool`] with budget `B` owns exactly `B − 1` long-lived
//! worker threads; the caller's thread is the `B`-th worker (a budget of
//! 1 spawns nothing and runs everything inline). Every parallel construct
//! — kernel row-blocks *and* `gp_core`'s episode fan-out — submits tasks
//! to the same queue, so the process never runs more than `B` tasks at
//! once no matter how the layers nest: a submitter executes its own
//! queued tasks while it waits (it is one of the `B`), and idle workers
//! steal whatever is queued. This replaces the old design where episode
//! workers (`available_parallelism()`) and kernel workers (a process-wide
//! atomic) multiplied into ~N² threads on an N-core host.
//!
//! Nesting cannot deadlock: a task that submits a sub-job drains that
//! job's queued tasks itself before blocking, so every pending task is
//! always being executed by some thread, and the recursion bottoms out at
//! leaf kernel blocks that never block.
//!
//! `gp_core`'s `Engine` owns a pool sized from its `Parallelism` setting
//! and installs it (via [`WorkerPool::install`]) for the duration of each
//! `pretrain` / `evaluate` / `run_episode` call; kernels pick it up
//! through a thread-local, so two engines in one process never stomp a
//! shared global. There is no ambient process-wide setting: kernels
//! running with no pool installed simply execute serially (the
//! deprecated `set_parallelism` fallback was removed with the backend
//! redesign).
//!
//! Spawning a thread costs ~10µs on Linux — the pool pays it once per
//! engine, not once per matmul. Kernels still only fan out when the
//! estimated scalar-op count clears [`MIN_PARALLEL_WORK`].

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

static FANOUTS: gp_obs::Counter = gp_obs::Counter::new("tensor.parallel.fanouts");
static SERIAL_RUNS: gp_obs::Counter = gp_obs::Counter::new("tensor.parallel.serial_runs");
static TASKS: gp_obs::Counter = gp_obs::Counter::new("tensor.parallel.tasks");

// Pool instruments: live workers / queue depth / in-flight tasks as
// gauges, dispatch and steal totals as counters.
static POOL_WORKERS_GAUGE: gp_obs::Gauge = gp_obs::Gauge::new("tensor.pool.workers");
static POOL_QUEUE_DEPTH: gp_obs::Gauge = gp_obs::Gauge::new("tensor.pool.queue_depth");
static POOL_ACTIVE: gp_obs::Gauge = gp_obs::Gauge::new("tensor.pool.active");
static POOL_DISPATCHED: gp_obs::Counter = gp_obs::Counter::new("tensor.pool.dispatched");
static POOL_STOLEN: gp_obs::Counter = gp_obs::Counter::new("tensor.pool.stolen");

/// How many worker threads the tensor kernels may use.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread; every kernel runs its classic serial loop (default).
    #[default]
    Serial,
    /// Exactly `n` worker threads (clamped to ≥ 1).
    Threads(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// The worker count this setting resolves to on this host.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Threads(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Minimum estimated scalar ops before a kernel fans out. Below this the
/// per-task dispatch cost dominates any speedup.
pub const MIN_PARALLEL_WORK: usize = 1 << 15;

/// The ambient worker budget (≥ 1): the installed [`WorkerPool`]'s budget
/// when one is active on this thread, else 1 (serial).
pub fn configured_workers() -> usize {
    current_pool().map_or(1, |pool| pool.budget)
}

/// Worker count a kernel with `rows` independent output rows and
/// `total_work` estimated scalar ops should use under `budget` threads:
/// 1 when the budget is 1 or the job is too small, else
/// `min(budget, rows)`. Pure — no globals, no thread-locals.
pub fn workers_for_budget(budget: usize, rows: usize, total_work: usize) -> usize {
    if budget <= 1 || rows < 2 || total_work < MIN_PARALLEL_WORK {
        1
    } else {
        budget.min(rows)
    }
}

/// As [`workers_for_budget`] under the ambient budget
/// ([`configured_workers`]).
pub fn workers_for(rows: usize, total_work: usize) -> usize {
    workers_for_budget(configured_workers(), rows, total_work)
}

// ---------------------------------------------------------------------------
// The worker pool.
// ---------------------------------------------------------------------------

/// Completion state of one submitted job (a batch of indexed tasks).
struct JobDone {
    pending: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// A type-erased job: `run(ctx, i)` invokes the submitter's closure with
/// task index `i`. `ctx` points into the submitter's stack frame, which
/// outlives the job because the submitter blocks until `pending == 0`.
struct JobState {
    run: unsafe fn(*const (), usize),
    ctx: *const (),
    done: Mutex<JobDone>,
    done_cv: Condvar,
}

// SAFETY: `ctx` is only dereferenced through `run`, which requires the
// referent to be `Sync` (it is constructed from `&(dyn Fn(usize) + Sync)`),
// and the submitter keeps the referent alive until the job completes.
unsafe impl Send for JobState {}
unsafe impl Sync for JobState {}

struct PendingTask {
    job: Arc<JobState>,
    index: usize,
}

struct PoolShared {
    budget: usize,
    queue: Mutex<VecDeque<PendingTask>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
    // Tasks currently executing at top level (nested drains don't
    // re-count — see IN_TASK). `peak_active` is the high-water mark the
    // thread-budget regression test reads; `+ 0/1` caller threads it can
    // never exceed the budget.
    active: AtomicUsize,
    peak_active: AtomicUsize,
    executed: AtomicUsize,
    stolen: AtomicUsize,
}

thread_local! {
    /// The pool whose budget governs this thread: installed by
    /// [`WorkerPool::install`] on callers, permanently on pool workers.
    static CURRENT_POOL: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };
    /// Whether this thread is inside a pool task, so nested drains (a
    /// kernel fan-out inside an episode task) don't double-count `active`.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

fn current_pool() -> Option<Arc<PoolShared>> {
    CURRENT_POOL.with(|c| c.borrow().clone())
}

/// Point-in-time counters of a [`WorkerPool`], for tests and diagnostics.
/// Always collected (plain relaxed atomics), independent of `gp-obs`.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Configured thread budget (callers + spawned workers ≤ this).
    pub budget: usize,
    /// OS threads the pool spawned (`budget − 1`, or 0 for budget 1).
    pub spawned_workers: usize,
    /// High-water mark of concurrently executing top-level tasks.
    pub peak_active: usize,
    /// Total tasks executed (by workers and submitters alike).
    pub tasks_executed: usize,
    /// Tasks executed by a pool worker rather than their submitter.
    pub tasks_stolen: usize,
}

/// A persistent worker pool enforcing one thread budget across every
/// parallelism layer (kernel row-blocks, episode fan-out).
///
/// Budget `B` spawns `B − 1` named OS threads once; a budget of 1 spawns
/// none and every "parallel" construct runs inline on the caller. Install
/// the pool with [`WorkerPool::install`] to route this thread's kernel
/// fan-outs ([`for_row_blocks`]) through it. Dropping the pool joins all
/// workers.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Build a pool with the given thread budget (clamped to ≥ 1).
    pub fn with_budget(budget: usize) -> Self {
        let budget = budget.max(1);
        let shared = Arc::new(PoolShared {
            budget,
            queue: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            peak_active: AtomicUsize::new(0),
            executed: AtomicUsize::new(0),
            stolen: AtomicUsize::new(0),
        });
        let mut handles = Vec::with_capacity(budget - 1);
        for i in 0..budget - 1 {
            let s = Arc::clone(&shared);
            #[allow(clippy::disallowed_methods)] // the one sanctioned spawn site
            let handle = std::thread::Builder::new()
                .name(format!("gp-pool-{i}"))
                .spawn(move || worker_loop(s))
                .expect("spawn gp-pool worker");
            handles.push(handle);
        }
        POOL_WORKERS_GAUGE.offset(handles.len() as i64);
        Self { shared, handles }
    }

    /// Build a pool sized from a [`Parallelism`] setting.
    pub fn from_parallelism(p: Parallelism) -> Self {
        Self::with_budget(p.workers())
    }

    /// The configured thread budget (≥ 1).
    pub fn budget(&self) -> usize {
        self.shared.budget
    }

    /// OS threads this pool spawned (`budget() − 1`; 0 for budget 1).
    pub fn spawned_workers(&self) -> usize {
        self.handles.len()
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            budget: self.shared.budget,
            spawned_workers: self.handles.len(),
            peak_active: self.shared.peak_active.load(Ordering::Relaxed),
            tasks_executed: self.shared.executed.load(Ordering::Relaxed),
            tasks_stolen: self.shared.stolen.load(Ordering::Relaxed),
        }
    }

    /// Make this pool the ambient one for the current thread until the
    /// guard drops; [`for_row_blocks`] and [`configured_workers`] pick it
    /// up. Guards nest (the previous pool is restored on drop).
    pub fn install(&self) -> PoolGuard {
        let prev = CURRENT_POOL.with(|c| c.borrow_mut().replace(Arc::clone(&self.shared)));
        PoolGuard {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }

    /// Run `f(0) … f(count − 1)`, distributing the calls over the pool.
    /// The submitter executes queued tasks itself while waiting (it is
    /// one of the budgeted threads). Panics in `f` are propagated to the
    /// submitter after all tasks finish or unwind.
    pub fn for_each_index<F>(&self, count: usize, f: F)
    where
        F: Fn(usize) + Sync,
    {
        run_tasks_on(&self.shared, count, &f);
    }

    /// As [`for_row_blocks`], but explicitly on this pool (the free
    /// function routes through whichever pool is installed).
    pub fn run_blocks<F>(&self, out: &mut [f32], rows: usize, cols: usize, workers: usize, f: F)
    where
        F: Fn(Range<usize>, &mut [f32]) + Sync,
    {
        run_blocks_on(&self.shared, out, rows, cols, workers, f);
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.work_cv.notify_all();
        POOL_WORKERS_GAUGE.offset(-(self.handles.len() as i64));
        for handle in self.handles.drain(..) {
            // gp-lint: allow(E1) — Drop cannot propagate a worker panic; the panic already surfaced as a poisoned result upstream
            let _ = handle.join();
        }
    }
}

/// RAII guard from [`WorkerPool::install`]; restores the previously
/// installed pool (if any) on drop. `!Send`: it manages a thread-local.
pub struct PoolGuard {
    prev: Option<Arc<PoolShared>>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
    }
}

// Pool locks recover from poisoning throughout: tasks run under
// `catch_unwind`, but a panic in the submitter itself (e.g. a request
// thread killed mid-episode) may still poison the queue or a job's done
// state. Both hold plain counters and task handles that are valid at
// every step, so the pool must keep serving later submitters instead of
// cascading the panic — one crashed request must not take the pool down.

fn worker_loop(shared: Arc<PoolShared>) {
    // Workers run under their own pool's budget, so kernels inside a
    // stolen episode task fan out through the same queue.
    CURRENT_POOL.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(t) = queue.pop_front() {
                    break Some(t);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared
                    .work_cv
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };
        match task {
            Some(task) => {
                POOL_QUEUE_DEPTH.offset(-1);
                execute(&shared, task, true);
            }
            None => break,
        }
    }
}

/// Run one task, tracking top-level concurrency and catching panics so a
/// worker thread survives to report them to the submitter.
fn execute(shared: &PoolShared, task: PendingTask, stolen: bool) {
    let top_level = !IN_TASK.with(Cell::get);
    if top_level {
        IN_TASK.with(|t| t.set(true));
        let now = shared.active.fetch_add(1, Ordering::Relaxed) + 1;
        shared.peak_active.fetch_max(now, Ordering::Relaxed);
        POOL_ACTIVE.offset(1);
    }
    shared.executed.fetch_add(1, Ordering::Relaxed);
    if stolen {
        shared.stolen.fetch_add(1, Ordering::Relaxed);
        POOL_STOLEN.inc();
    }
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        // SAFETY: `ctx` is alive (the submitter blocks until this job's
        // `pending` hits 0) and `run` matches how `ctx` was erased.
        unsafe { (task.job.run)(task.job.ctx, task.index) }
    }));
    if top_level {
        shared.active.fetch_sub(1, Ordering::Relaxed);
        POOL_ACTIVE.offset(-1);
        IN_TASK.with(|t| t.set(false));
    }
    let mut done = task.job.done.lock().unwrap_or_else(PoisonError::into_inner);
    done.pending -= 1;
    if let Err(panic) = result {
        done.panic.get_or_insert(panic);
    }
    if done.pending == 0 {
        task.job.done_cv.notify_all();
    }
}

/// Trampoline restoring the submitter's closure from its erased pointer.
unsafe fn run_erased(ctx: *const (), index: usize) {
    let f: &(dyn Fn(usize) + Sync) = unsafe { *(ctx as *const &(dyn Fn(usize) + Sync)) };
    f(index);
}

/// Submit `count` indexed tasks and run them to completion: queue all,
/// wake the workers, execute our own job's queued tasks, then wait for
/// any stolen stragglers. Inline when the budget (or the job) is 1.
fn run_tasks_on(shared: &Arc<PoolShared>, count: usize, f: &(dyn Fn(usize) + Sync)) {
    if count == 0 {
        return;
    }
    if shared.budget <= 1 || count == 1 || shared.shutdown.load(Ordering::Acquire) {
        for i in 0..count {
            f(i);
        }
        return;
    }
    let job = Arc::new(JobState {
        run: run_erased,
        ctx: &f as *const &(dyn Fn(usize) + Sync) as *const (),
        done: Mutex::new(JobDone {
            pending: count,
            panic: None,
        }),
        done_cv: Condvar::new(),
    });
    {
        let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
        for index in 0..count {
            queue.push_back(PendingTask {
                job: Arc::clone(&job),
                index,
            });
        }
    }
    POOL_QUEUE_DEPTH.offset(count as i64);
    POOL_DISPATCHED.add(count as u64);
    shared.work_cv.notify_all();

    // Drain our own job: the submitting thread is one of the budget.
    loop {
        let task = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            match queue.iter().position(|t| Arc::ptr_eq(&t.job, &job)) {
                Some(pos) => queue.remove(pos),
                None => None,
            }
        };
        match task {
            Some(task) => {
                POOL_QUEUE_DEPTH.offset(-1);
                execute(shared, task, false);
            }
            None => break,
        }
    }

    let mut done = job.done.lock().unwrap_or_else(PoisonError::into_inner);
    while done.pending > 0 {
        done = job
            .done_cv
            .wait(done)
            .unwrap_or_else(PoisonError::into_inner);
    }
    if let Some(panic) = done.panic.take() {
        drop(done);
        std::panic::resume_unwind(panic);
    }
}

/// Raw base pointer of the output buffer, shared with tasks that each
/// write a disjoint row range.
#[derive(Copy, Clone)]
struct SendPtr(*mut f32);
// SAFETY: tasks index disjoint regions; see `run_blocks_on`.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

fn run_blocks_on<F>(
    shared: &Arc<PoolShared>,
    out: &mut [f32],
    rows: usize,
    cols: usize,
    workers: usize,
    f: F,
) where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols, "run_blocks: buffer shape");
    // The budget caps the fan-out: an episode task asking for 8 kernel
    // workers under a budget of 4 gets 4 (results are bit-identical
    // either way — blocking only moves rows between workers).
    let workers = workers.max(1).min(rows.max(1)).min(shared.budget);
    if workers <= 1 {
        SERIAL_RUNS.inc();
        f(0..rows, out);
        return;
    }
    FANOUTS.inc();
    let block_rows = rows.div_ceil(workers);
    // Actual blocks can be fewer than `workers` when rounding up the
    // block size covers the rows early (e.g. 11 rows / 7 workers).
    let blocks = rows.div_ceil(block_rows);
    TASKS.add(blocks as u64);
    let base = SendPtr(out.as_mut_ptr());
    let run_block = move |b: usize| {
        // Force capture of the whole `SendPtr` (edition 2021 would
        // otherwise capture the raw `base.0` field, which is not Sync).
        let base = base;
        let start = b * block_rows;
        let take = block_rows.min(rows - start);
        // SAFETY: block `b` covers rows `start..start+take`; blocks are
        // disjoint by construction and `out` outlives `run_tasks_on`,
        // which returns only after every block has run.
        let block =
            unsafe { std::slice::from_raw_parts_mut(base.0.add(start * cols), take * cols) };
        f(start..start + take, block);
    };
    run_tasks_on(shared, blocks, &run_block);
}

/// Run `f(rows_range, block)` over disjoint contiguous row blocks of the
/// row-major buffer `out` (`rows × cols`), one block per worker.
///
/// With `workers <= 1` this is a plain call `f(0..rows, out)` on the
/// current thread — the serial path and the parallel path execute the very
/// same closure, which is what makes bit-identity a structural property
/// rather than a testing aspiration.
///
/// When a [`WorkerPool`] is installed on this thread the blocks run on it
/// (clamped to its budget); with no pool installed the call runs serially
/// on the current thread — bit-identical by the same structural argument,
/// since the serial path executes the very same closure over `0..rows`.
pub fn for_row_blocks<F>(out: &mut [f32], rows: usize, cols: usize, workers: usize, f: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * cols, "for_row_blocks: buffer shape");
    let workers = workers.max(1).min(rows.max(1));
    if workers > 1 {
        if let Some(shared) = current_pool() {
            run_blocks_on(&shared, out, rows, cols, workers, f);
            return;
        }
    }
    SERIAL_RUNS.inc();
    f(0..rows, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_resolves_to_positive_workers() {
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Threads(4).workers(), 4);
        assert_eq!(Parallelism::Threads(0).workers(), 1);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    fn check_row_coverage(run: impl Fn(&mut [f32], usize, usize, usize)) {
        for workers in [1usize, 2, 3, 7, 16] {
            let rows = 11;
            let cols = 3;
            let mut out = vec![0.0f32; rows * cols];
            run(&mut out, rows, cols, workers);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(
                    *v,
                    i as f32 + 1.0,
                    "row coverage broke at {i} (workers={workers})"
                );
            }
        }
    }

    fn fill_rows(range: Range<usize>, block: &mut [f32], cols: usize) {
        for (local, r) in range.enumerate() {
            for c in 0..cols {
                block[local * cols + c] += (r * cols + c) as f32 + 1.0;
            }
        }
    }

    #[test]
    fn row_blocks_cover_every_row_exactly_once() {
        // No pool installed: every workers value runs the serial path.
        check_row_coverage(|out, rows, cols, workers| {
            for_row_blocks(out, rows, cols, workers, |range, block| {
                assert_eq!(block.len(), range.len() * cols);
                fill_rows(range, block, cols);
            });
        });
    }

    #[test]
    fn pool_row_blocks_cover_every_row_exactly_once() {
        for budget in [1usize, 2, 4, 9] {
            let pool = WorkerPool::with_budget(budget);
            check_row_coverage(|out, rows, cols, workers| {
                pool.run_blocks(out, rows, cols, workers, |range, block| {
                    assert_eq!(block.len(), range.len() * cols);
                    fill_rows(range, block, cols);
                });
            });
        }
    }

    #[test]
    fn installed_pool_routes_for_row_blocks_and_matches_serial_bitwise() {
        // The same pseudo-kernel, serial vs. pool-executed, must agree on
        // every bit (disjoint blocks, same per-row loop).
        let rows = 37;
        let cols = 5;
        let kernel = |range: Range<usize>, block: &mut [f32]| {
            for (local, r) in range.enumerate() {
                for c in 0..cols {
                    // Not representable exactly → rounding would expose
                    // any change in evaluation order.
                    block[local * cols + c] = (r as f32 + 0.1) * (c as f32 + 0.3) / 0.7;
                }
            }
        };
        let mut serial = vec![0.0f32; rows * cols];
        for_row_blocks(&mut serial, rows, cols, 1, kernel);

        let pool = WorkerPool::with_budget(4);
        let _ctx = pool.install();
        let mut pooled = vec![0.0f32; rows * cols];
        for_row_blocks(&mut pooled, rows, cols, 4, kernel);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&serial), bits(&pooled));
        assert!(pool.stats().tasks_executed > 0, "pool must have run blocks");
    }

    #[test]
    fn budget_one_pool_spawns_no_threads_and_runs_inline() {
        let pool = WorkerPool::with_budget(1);
        assert_eq!(pool.spawned_workers(), 0);
        let _ctx = pool.install();
        let mut out = vec![0.0f32; 8];
        for_row_blocks(&mut out, 8, 1, 8, |range, block| {
            for (local, r) in range.enumerate() {
                block[local] = r as f32;
            }
        });
        assert_eq!(out[7], 7.0);
        let stats = pool.stats();
        assert_eq!(stats.tasks_executed, 0, "budget 1 must never queue tasks");
        assert_eq!(stats.peak_active, 0);
    }

    #[test]
    fn nested_fanout_stays_within_budget() {
        // Episode-style outer tasks each fanning a kernel out: the peak
        // number of concurrently executing top-level tasks must never
        // exceed the budget.
        let budget = 3;
        let pool = WorkerPool::with_budget(budget);
        let results: Vec<Mutex<f32>> = (0..8).map(|_| Mutex::new(0.0)).collect();
        pool.for_each_index(8, |i| {
            let mut out = vec![0.0f32; 16 * 2];
            for_row_blocks(&mut out, 16, 2, budget, |range, block| {
                for (local, r) in range.enumerate() {
                    block[local * 2] = (r + i) as f32;
                    block[local * 2 + 1] = 1.0;
                }
            });
            *results[i].lock().expect("slot") = out.iter().sum();
        });
        for (i, slot) in results.iter().enumerate() {
            let expect = (0..16).map(|r| (r + i) as f32).sum::<f32>() + 16.0;
            assert_eq!(*slot.lock().expect("slot"), expect);
        }
        let stats = pool.stats();
        assert!(stats.peak_active <= budget, "{stats:?}");
        assert!(stats.tasks_executed >= 8, "{stats:?}");
    }

    #[test]
    fn pool_propagates_task_panics() {
        let pool = WorkerPool::with_budget(3);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.for_each_index(6, |i| {
                if i == 4 {
                    panic!("boom from task {i}");
                }
            });
        }));
        assert!(caught.is_err(), "panic must reach the submitter");
        // The pool must still be usable afterwards.
        let hits: Vec<Mutex<bool>> = (0..4).map(|_| Mutex::new(false)).collect();
        pool.for_each_index(4, |i| *hits[i].lock().expect("slot") = true);
        assert!(hits.iter().all(|h| *h.lock().expect("slot")));
    }

    #[test]
    fn workers_for_budget_respects_thresholds() {
        assert_eq!(workers_for_budget(4, 100, MIN_PARALLEL_WORK), 4);
        assert_eq!(workers_for_budget(4, 100, MIN_PARALLEL_WORK - 1), 1);
        assert_eq!(workers_for_budget(4, 1, usize::MAX), 1);
        assert_eq!(workers_for_budget(4, 3, MIN_PARALLEL_WORK), 3);
        assert_eq!(workers_for_budget(1, 100, usize::MAX), 1);
        assert_eq!(workers_for_budget(0, 100, usize::MAX), 1);
    }

    #[test]
    fn ambient_workers_come_from_installed_pool_only() {
        assert_eq!(configured_workers(), 1, "no pool installed: serial");
        assert_eq!(workers_for(100, usize::MAX), 1);
        {
            let pool = WorkerPool::with_budget(5);
            let _ctx = pool.install();
            assert_eq!(configured_workers(), 5, "installed pool must win");
            assert_eq!(workers_for(100, MIN_PARALLEL_WORK), 5);
        }
        assert_eq!(configured_workers(), 1, "guard drop must restore");
    }
}
