//! Edge-list sparse structure shared by the differentiable graph ops.

use std::sync::Arc;

/// A static edge list `(src, dst)` describing a sparse matrix pattern.
///
/// The autograd ops that consume an `EdgeList` ([`crate::Tape::spmm`],
/// [`crate::Tape::edge_softmax`]) hold it behind an [`Arc`] so one sampled
/// subgraph can feed many tape nodes without copying.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    src: Vec<u32>,
    dst: Vec<u32>,
}

impl EdgeList {
    /// Build from parallel `src`/`dst` arrays.
    ///
    /// # Panics
    /// Panics if the arrays differ in length.
    pub fn new(src: Vec<u32>, dst: Vec<u32>) -> Self {
        assert_eq!(src.len(), dst.len(), "EdgeList: src/dst length mismatch");
        Self { src, dst }
    }

    /// Build from `(src, dst)` pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let (src, dst) = pairs.into_iter().unzip();
        Self { src, dst }
    }

    /// Number of edges.
    #[inline]
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// True when there are no edges.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }

    /// Source endpoint of edge `e`.
    #[inline]
    pub fn src(&self, e: usize) -> usize {
        self.src[e] as usize
    }

    /// Destination endpoint of edge `e`.
    #[inline]
    pub fn dst(&self, e: usize) -> usize {
        self.dst[e] as usize
    }

    /// Iterate `(src, dst)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.src
            .iter()
            .zip(&self.dst)
            .map(|(&s, &d)| (s as usize, d as usize))
    }

    /// Largest referenced node index + 1, or 0 when empty.
    pub fn min_num_nodes(&self) -> usize {
        self.iter().map(|(s, d)| s.max(d) + 1).max().unwrap_or(0)
    }

    /// In-degree (number of incoming edges) per destination, for `n` nodes.
    pub fn in_degrees(&self, n: usize) -> Vec<u32> {
        let mut deg = vec![0u32; n];
        for &d in &self.dst {
            deg[d as usize] += 1;
        }
        deg
    }

    /// Wrap in an [`Arc`] for sharing across tape nodes.
    pub fn into_shared(self) -> Arc<Self> {
        Arc::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let e = EdgeList::from_pairs([(0, 1), (2, 1), (1, 0)]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.src(1), 2);
        assert_eq!(e.dst(1), 1);
        assert_eq!(e.min_num_nodes(), 3);
        assert_eq!(e.in_degrees(3), vec![1, 2, 0]);
    }

    #[test]
    fn empty_edge_list() {
        let e = EdgeList::default();
        assert!(e.is_empty());
        assert_eq!(e.min_num_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_arrays_panic() {
        let _ = EdgeList::new(vec![0, 1], vec![0]);
    }
}
