//! Named presets mirroring the paper's six benchmark graphs (Table II),
//! scaled to laptop size with the class-count *ordering* preserved.
//!
//! | Paper dataset | Paper size | Preset size | Classes |
//! |---|---|---|---|
//! | MAG240M | 244 M nodes, 153 classes | 4 000 nodes | 48 |
//! | Wiki | 4.8 M nodes, 639 relations | 3 000 entities | 60 |
//! | arXiv | 169 k nodes, 40 classes | 2 400 nodes | 40 |
//! | ConceptNet | 791 k nodes, 14 relations | 1 500 entities | 14 |
//! | FB15K-237 | 14.5 k nodes, 200 relations | 2 600 entities | 100 |
//! | NELL | 68.5 k nodes, 291 relations | 2 600 entities | 100 |
//!
//! Pre-training presets (`mag240m_like`, `wiki_like`) use different seeds,
//! noise levels and degrees than the downstream presets, reproducing the
//! cross-domain gap: class/type geometry is freshly sampled per dataset so
//! nothing transfers except what the model genuinely generalizes.

use crate::{CitationConfig, Dataset, KgConfig};

/// Offset mixed into every preset seed so independent experiment seeds
/// still produce the *same family* of graphs.
const PRESET_SEED_BASE: u64 = 0x6a70_7072;

/// MAG240M stand-in: large, many-class pre-training citation graph.
pub fn mag240m_like(seed: u64) -> Dataset {
    let mut cfg = CitationConfig::new("mag240m-like", 4000, 48, PRESET_SEED_BASE ^ (seed + 1));
    cfg.mean_degree = 8.0;
    cfg.intra_class_affinity = 0.78;
    cfg.feature_noise = 0.40;
    cfg.generate()
}

/// Wiki stand-in: many-relation pre-training knowledge graph.
pub fn wiki_like(seed: u64) -> Dataset {
    let mut cfg = KgConfig::new("wiki-like", 3000, 60, 24, PRESET_SEED_BASE ^ (seed + 2));
    cfg.triples_per_entity = 5.0;
    cfg.type_noise = 0.08;
    cfg.feature_noise = 0.32;
    cfg.generate()
}

/// arXiv stand-in: 40-class downstream node classification with a
/// different structural regime than MAG240M-like (sparser, noisier).
pub fn arxiv_like(seed: u64) -> Dataset {
    let mut cfg = CitationConfig::new("arxiv-like", 2400, 40, PRESET_SEED_BASE ^ (seed + 3));
    cfg.mean_degree = 5.0;
    cfg.intra_class_affinity = 0.60;
    cfg.feature_noise = 0.80;
    cfg.generate()
}

/// ConceptNet stand-in: few-relation downstream KG.
pub fn conceptnet_like(seed: u64) -> Dataset {
    let mut cfg = KgConfig::new(
        "conceptnet-like",
        1500,
        14,
        10,
        PRESET_SEED_BASE ^ (seed + 4),
    );
    cfg.triples_per_entity = 4.0;
    cfg.type_noise = 0.12;
    cfg.feature_noise = 0.40;
    cfg.generate()
}

/// FB15K-237 stand-in: dense, 100-relation downstream KG (the paper's
/// 200-relation graph scaled; Table V sweeps up to 100 ways).
pub fn fb15k237_like(seed: u64) -> Dataset {
    let mut cfg = KgConfig::new(
        "fb15k237-like",
        2600,
        100,
        30,
        PRESET_SEED_BASE ^ (seed + 5),
    );
    cfg.triples_per_entity = 8.0;
    cfg.type_noise = 0.10;
    cfg.feature_noise = 0.38;
    cfg.generate()
}

/// NELL stand-in: sparse, 100-relation downstream KG (the paper's
/// 291-relation graph scaled), noisier than FB15K-237-like.
pub fn nell_like(seed: u64) -> Dataset {
    let mut cfg = KgConfig::new("nell-like", 2600, 100, 32, PRESET_SEED_BASE ^ (seed + 6));
    cfg.triples_per_entity = 5.0;
    cfg.type_noise = 0.14;
    cfg.feature_noise = 0.45;
    cfg.generate()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Task;

    #[test]
    fn all_presets_generate_and_validate() {
        for (ds, task, classes) in [
            (mag240m_like(0), Task::NodeClassification, 48),
            (wiki_like(0), Task::EdgeClassification, 60),
            (arxiv_like(0), Task::NodeClassification, 40),
            (conceptnet_like(0), Task::EdgeClassification, 14),
            (fb15k237_like(0), Task::EdgeClassification, 100),
            (nell_like(0), Task::EdgeClassification, 100),
        ] {
            assert_eq!(ds.task, task, "{}", ds.name);
            assert_eq!(ds.num_classes, classes, "{}", ds.name);
            assert!(!ds.train.is_empty() && !ds.test.is_empty(), "{}", ds.name);
        }
    }

    #[test]
    fn pretrain_and_downstream_geometry_differ() {
        let pre = mag240m_like(0);
        let down = arxiv_like(0);
        // Same feature width (transfer requirement) but different content.
        assert_eq!(pre.graph.feature_dim(), down.graph.feature_dim());
        assert_ne!(
            &pre.graph.features().as_slice()[..64],
            &down.graph.features().as_slice()[..64]
        );
    }

    #[test]
    fn fb_is_denser_than_nell() {
        let fb = fb15k237_like(0);
        let nell = nell_like(0);
        assert!(fb.graph.mean_degree() > nell.graph.mean_degree());
    }
}
