//! # gp-datasets
//!
//! Synthetic dataset generators standing in for the paper's six benchmark
//! graphs, plus few-shot episode sampling.
//!
//! The paper evaluates on graphs we cannot ship or fit on a laptop
//! (MAG240M has 244 M nodes). Per the reproduction's substitution rule
//! (DESIGN.md), each dataset is replaced by a generator that preserves the
//! properties the experiments actually exercise:
//!
//! * **Citation graphs** (MAG240M, arXiv) → [`CitationConfig`]: a
//!   stochastic block model whose classes show up both in structure
//!   (intra-class edges dominate) and in features (class-centered Gaussian
//!   clusters), with tunable noise edges for the Prompt Generator to
//!   filter.
//! * **Knowledge graphs** (Wiki, ConceptNet, FB15K-237, NELL) →
//!   [`KgConfig`]: entities carry latent types; the relation of an edge is
//!   a (noisy) function of its endpoint-type pair, so relation
//!   classification is solvable from endpoint context — the same signal
//!   the real KGs provide.
//!
//! Every preset in [`presets`] is seeded independently, so the
//! pre-training graph and the downstream graphs have disjoint class
//! geometry (the cross-domain gap the paper studies).

pub mod citation;
pub mod dataset;
pub mod fewshot;
pub mod io;
pub mod kg;
pub mod presets;

pub use citation::CitationConfig;
pub use dataset::{DataPoint, Dataset, Split, Task};
pub use fewshot::{sample_few_shot_from_splits, sample_few_shot_task, FewShotTask};
pub use io::{load_dataset, save_dataset, IoError};
pub use kg::KgConfig;

/// Shared relation-feature width across all datasets (must match so a
/// model pre-trained on one KG can run on another; see
/// [`gp_graph::GraphBuilder::rel_features`]).
pub const REL_FEAT_DIM: usize = 8;

/// Shared node-feature width across all datasets (the paper uses 768-dim
/// inputs; we scale to 32 for laptop-size models).
pub const NODE_FEAT_DIM: usize = 32;
