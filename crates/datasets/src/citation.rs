//! Stochastic-block-model citation graphs (MAG240M / arXiv stand-ins).

use gp_graph::GraphBuilder;
use gp_tensor::{rng as trng, Tensor};
use rand::Rng;

use crate::dataset::{stratified_split, DataPoint, Dataset, Task};
use crate::{NODE_FEAT_DIM, REL_FEAT_DIM};

/// Generator parameters for a class-structured citation network.
///
/// Class signal exists in **both** structure and features:
/// * structure — a node cites a same-class node with probability
///   `intra_class_affinity`, otherwise a random node ("noise" edges the
///   Prompt Generator's reconstruction layer learns to down-weight);
/// * features — class-centered Gaussian clusters with `feature_noise`.
/// ```
/// use gp_datasets::CitationConfig;
///
/// let ds = CitationConfig::new("demo", 200, 4, 7).generate();
/// assert_eq!(ds.num_classes, 4);
/// assert!(ds.graph.num_edges() > 0);
/// ```
#[derive(Clone, Debug)]
pub struct CitationConfig {
    /// Dataset display name.
    pub name: String,
    /// Number of papers.
    pub num_nodes: usize,
    /// Number of paper categories.
    pub num_classes: usize,
    /// Mean out-citations per paper.
    pub mean_degree: f32,
    /// Probability an edge lands inside the class (vs. uniform noise).
    pub intra_class_affinity: f32,
    /// Std of Gaussian feature noise around the class center.
    pub feature_noise: f32,
    /// Sub-modes per class: each class is a mixture of this many feature
    /// sub-clusters (real categories are multi-modal; this is what gives
    /// few-shot prompts something to miss and the Prompt Augmenter's
    /// test-time samples something to add).
    pub modes_per_class: usize,
    /// Norm of each sub-mode's offset from its class center, relative to
    /// the unit class-center norm.
    pub mode_spread: f32,
    /// Fraction of nodes whose *recorded* label is flipped to a random
    /// other class (annotation noise). Structure and features follow the
    /// true label; corrupted nodes are confined to the train/valid
    /// partitions, polluting the candidate prompt pool without distorting
    /// test accuracy.
    pub train_label_noise: f32,
    /// RNG seed; different seeds → different class geometry (domain gap).
    pub seed: u64,
}

impl CitationConfig {
    /// Sensible defaults for a mid-size instance.
    pub fn new(name: &str, num_nodes: usize, num_classes: usize, seed: u64) -> Self {
        Self {
            name: name.to_string(),
            num_nodes,
            num_classes,
            mean_degree: 6.0,
            intra_class_affinity: 0.75,
            feature_noise: 0.45,
            modes_per_class: 1,
            mode_spread: 0.6,
            train_label_noise: 0.0,
            seed,
        }
    }

    /// Generate the dataset (graph + node-classification splits).
    pub fn generate(&self) -> Dataset {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(self.seed);
        assert!(self.num_classes >= 2, "need at least 2 classes");
        assert!(
            self.num_nodes >= self.num_classes * 4,
            "too few nodes per class"
        );

        // Random unit class centers.
        let centers: Vec<Tensor> = (0..self.num_classes)
            .map(|_| trng::randn(&mut rng, 1, NODE_FEAT_DIM, 1.0).l2_normalize_rows(1e-9))
            .collect();

        // Round-robin class assignment keeps classes balanced.
        let labels: Vec<u16> = (0..self.num_nodes)
            .map(|i| (i % self.num_classes) as u16)
            .collect();

        // Sub-mode offsets: class y's mode j sits at center_y + offset_yj.
        // With a single mode the offset is skipped entirely (it would just
        // relocate the class center).
        let modes = self.modes_per_class.max(1);
        let mode_offsets: Vec<Tensor> = (0..self.num_classes * modes)
            .map(|_| {
                if modes == 1 {
                    Tensor::zeros(1, NODE_FEAT_DIM)
                } else {
                    trng::randn(&mut rng, 1, NODE_FEAT_DIM, 1.0)
                        .l2_normalize_rows(1e-9)
                        .scale(self.mode_spread)
                }
            })
            .collect();

        // Features: center + mode offset + noise. The per-dimension noise
        // std is scaled by 1/√dim so `feature_noise` is the expected
        // noise-to-signal *norm* ratio, independent of NODE_FEAT_DIM.
        let noise_std = self.feature_noise / (NODE_FEAT_DIM as f32).sqrt();
        let mut feat = Vec::with_capacity(self.num_nodes * NODE_FEAT_DIM);
        for (i, &y) in labels.iter().enumerate() {
            let c = &centers[y as usize];
            // Mode decoupled from the round-robin class assignment:
            // i = class + num_classes·block → mode = block mod modes.
            let mode = (i / self.num_classes) % modes;
            let mo = &mode_offsets[y as usize * modes + mode];
            for d in 0..NODE_FEAT_DIM {
                feat.push(c.get(0, d) + mo.get(0, d) + noise_std * trng::standard_normal(&mut rng));
            }
        }
        let features = Tensor::from_vec(self.num_nodes, NODE_FEAT_DIM, feat);

        // Citation edges: one relation type ("cites").
        let mut builder = GraphBuilder::new(self.num_nodes, 1);
        // Bucket nodes per class for O(1) intra-class endpoint sampling.
        let mut by_class: Vec<Vec<u32>> = vec![Vec::new(); self.num_classes];
        for (i, &y) in labels.iter().enumerate() {
            by_class[y as usize].push(i as u32);
        }
        let total_edges = (self.num_nodes as f32 * self.mean_degree / 2.0) as usize;
        for _ in 0..total_edges {
            let u = rng.gen_range(0..self.num_nodes) as u32;
            let v = if rng.gen::<f32>() < self.intra_class_affinity {
                let bucket = &by_class[labels[u as usize] as usize];
                bucket[rng.gen_range(0..bucket.len())]
            } else {
                rng.gen_range(0..self.num_nodes) as u32
            };
            if u != v {
                builder.add_triple(u, 0, v);
            }
        }
        // Annotation noise: flip recorded labels after structure/features
        // were generated from the true ones; corrupted nodes stay out of
        // the test partition.
        let mut recorded = labels.clone();
        let mut corrupted = std::collections::HashSet::new();
        if self.train_label_noise > 0.0 && self.num_classes > 1 {
            for (i, y) in recorded.iter_mut().enumerate() {
                if rng.gen::<f32>() < self.train_label_noise {
                    let mut ny = rng.gen_range(0..self.num_classes) as u16;
                    if ny == *y {
                        ny = (ny + 1) % self.num_classes as u16;
                    }
                    *y = ny;
                    corrupted.insert(i as u32);
                }
            }
        }
        builder.node_features(features);
        builder.node_labels(recorded);
        builder.rel_features(trng::randn(&mut rng, 1, REL_FEAT_DIM, 1.0));
        let graph = builder.build();

        let points: Vec<DataPoint> = (0..self.num_nodes as u32)
            .filter(|n| !corrupted.contains(n))
            .map(DataPoint::Node)
            .collect();
        let (mut train, mut valid, test) = stratified_split(&graph, points, self.num_classes);
        // Sorted node order: iterating the HashSet directly would hand the
        // train/valid assignment (`i % 5`) to the hash seed, making the
        // generated splits differ run to run (gp-lint rule D1).
        // gp-lint: allow(D1) — drained into a Vec and sorted on the next line; hash order never escapes
        let mut corrupted_sorted: Vec<u32> = corrupted.into_iter().collect();
        corrupted_sorted.sort_unstable();
        for (i, n) in corrupted_sorted.iter().enumerate() {
            if i % 5 == 4 {
                valid.push(DataPoint::Node(*n));
            } else {
                train.push(DataPoint::Node(*n));
            }
        }
        let ds = Dataset {
            name: self.name.clone(),
            graph,
            task: Task::NodeClassification,
            num_classes: self.num_classes,
            train,
            valid,
            test,
        };
        ds.validate();
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_dataset() {
        let ds = CitationConfig::new("toy-citation", 200, 5, 1).generate();
        assert_eq!(ds.task, Task::NodeClassification);
        assert_eq!(ds.num_classes, 5);
        assert_eq!(ds.len(), 200);
        assert!(ds.graph.num_edges() > 100);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = CitationConfig::new("a", 100, 4, 7).generate();
        let b = CitationConfig::new("a", 100, 4, 7).generate();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.graph.features().as_slice(), b.graph.features().as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let a = CitationConfig::new("a", 100, 4, 7).generate();
        let b = CitationConfig::new("a", 100, 4, 8).generate();
        assert_ne!(a.graph.features().as_slice(), b.graph.features().as_slice());
    }

    #[test]
    fn homophily_exceeds_chance() {
        let ds = CitationConfig::new("t", 600, 6, 3).generate();
        let g = &ds.graph;
        let same = g
            .triples()
            .iter()
            .filter(|t| g.node_label(t.head) == g.node_label(t.tail))
            .count();
        let frac = same as f32 / g.num_edges() as f32;
        // Chance level is 1/6 ≈ 0.17; affinity 0.75 should push well past it.
        assert!(frac > 0.5, "homophily only {frac}");
    }

    #[test]
    fn features_cluster_by_class() {
        let ds = CitationConfig::new("t", 300, 3, 5).generate();
        let g = &ds.graph;
        // Mean intra-class cosine must exceed mean inter-class cosine.
        let f = g.features();
        let (mut intra, mut inter, mut n_intra, mut n_inter) = (0.0f32, 0.0f32, 0, 0);
        for i in (0..300).step_by(7) {
            for j in (1..300).step_by(11) {
                if i == j {
                    continue;
                }
                let c = f.cosine_rows(i, f, j);
                if g.node_label(i as u32) == g.node_label(j as u32) {
                    intra += c;
                    n_intra += 1;
                } else {
                    inter += c;
                    n_inter += 1;
                }
            }
        }
        assert!(intra / n_intra as f32 > inter / n_inter as f32 + 0.2);
    }
}
