//! Plain-text dataset import/export.
//!
//! Lets users bring their own graphs: a dataset is a directory of three
//! TSV files plus a small metadata header. The format is deliberately
//! trivial to produce from any pipeline (pandas, jq, awk):
//!
//! ```text
//! meta.tsv      task=node|edge, classes=<m>, relations=<r>, feat_dim=<d>
//! nodes.tsv     <node_id>\t<label|-)>\t<f0> <f1> ... <fd-1>
//! edges.tsv     <head>\t<rel>\t<tail>\t<split: train|valid|test|->
//! ```
//!
//! For node tasks the split of each node rides in a fourth `nodes.tsv`
//! column; for edge tasks the split column of `edges.tsv` applies.
//! Relation features (needed by the reconstruction layer) are generated
//! deterministically from the relation id when absent, so exported and
//! hand-written datasets work identically.

use std::io::{BufRead, Write};
use std::path::Path;

use gp_graph::GraphBuilder;
use gp_tensor::{rng as trng, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::dataset::{DataPoint, Dataset, Task};
use crate::REL_FEAT_DIM;

/// Errors produced by dataset IO.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Structural problem with the files.
    Format(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io: {e}"),
            IoError::Format(m) => write!(f, "format: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn fmt_err(msg: impl Into<String>) -> IoError {
    IoError::Format(msg.into())
}

/// Export a dataset to `dir` (created if missing).
pub fn save_dataset(dataset: &Dataset, dir: impl AsRef<Path>) -> Result<(), IoError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir)?;
    let g = &dataset.graph;

    // meta.tsv
    let task = match dataset.task {
        Task::NodeClassification => "node",
        Task::EdgeClassification => "edge",
    };
    std::fs::write(
        dir.join("meta.tsv"),
        format!(
            "task\t{task}\nclasses\t{}\nrelations\t{}\nfeat_dim\t{}\nname\t{}\n",
            dataset.num_classes,
            g.num_relations(),
            g.feature_dim(),
            dataset.name
        ),
    )?;

    // Split lookup.
    let split_of = |dp: DataPoint| -> &'static str {
        if dataset.train.contains(&dp) {
            "train"
        } else if dataset.valid.contains(&dp) {
            "valid"
        } else if dataset.test.contains(&dp) {
            "test"
        } else {
            "-"
        }
    };

    // nodes.tsv
    let mut nodes = std::io::BufWriter::new(std::fs::File::create(dir.join("nodes.tsv"))?);
    for v in 0..g.num_nodes() as u32 {
        let label = match g.node_labels() {
            Some(l) => l[v as usize].to_string(),
            None => "-".to_string(),
        };
        let feats: Vec<String> = g.feature_row(v).iter().map(|x| x.to_string()).collect();
        let split = if dataset.task == Task::NodeClassification {
            split_of(DataPoint::Node(v))
        } else {
            "-"
        };
        writeln!(nodes, "{v}\t{label}\t{}\t{split}", feats.join(" "))?;
    }
    nodes.flush()?;

    // edges.tsv
    let mut edges = std::io::BufWriter::new(std::fs::File::create(dir.join("edges.tsv"))?);
    for (eid, t) in g.triples().iter().enumerate() {
        let split = if dataset.task == Task::EdgeClassification {
            split_of(DataPoint::Edge(eid as u32))
        } else {
            "-"
        };
        writeln!(edges, "{}\t{}\t{}\t{split}", t.head, t.rel, t.tail)?;
    }
    edges.flush()?;
    Ok(())
}

/// Import a dataset previously written by [`save_dataset`] (or produced by
/// hand in the same format).
pub fn load_dataset(dir: impl AsRef<Path>) -> Result<Dataset, IoError> {
    let dir = dir.as_ref();

    // meta.tsv
    let meta = std::fs::read_to_string(dir.join("meta.tsv"))?;
    let mut task = None;
    let mut classes = None;
    let mut relations = None;
    let mut feat_dim = None;
    let mut name = String::from("imported");
    for line in meta.lines() {
        let mut parts = line.splitn(2, '\t');
        let key = parts.next().unwrap_or("");
        let value = parts
            .next()
            .ok_or_else(|| fmt_err("meta line missing value"))?;
        match key {
            "task" => {
                task = Some(match value {
                    "node" => Task::NodeClassification,
                    "edge" => Task::EdgeClassification,
                    other => return Err(fmt_err(format!("unknown task '{other}'"))),
                })
            }
            "classes" => {
                classes = Some(
                    value
                        .parse()
                        .map_err(|_| fmt_err(format!("meta.tsv: bad classes '{value}'")))?,
                )
            }
            "relations" => {
                relations = Some(
                    value
                        .parse()
                        .map_err(|_| fmt_err(format!("meta.tsv: bad relations '{value}'")))?,
                )
            }
            "feat_dim" => {
                feat_dim = Some(
                    value
                        .parse()
                        .map_err(|_| fmt_err(format!("meta.tsv: bad feat_dim '{value}'")))?,
                )
            }
            "name" => name = value.to_string(),
            _ => {}
        }
    }
    let task = task.ok_or_else(|| fmt_err("meta.tsv missing task"))?;
    let classes: usize = classes.ok_or_else(|| fmt_err("meta.tsv missing classes"))?;
    let relations: usize = relations.ok_or_else(|| fmt_err("meta.tsv missing relations"))?;
    let feat_dim: usize = feat_dim.ok_or_else(|| fmt_err("meta.tsv missing feat_dim"))?;

    // nodes.tsv
    let node_file = std::io::BufReader::new(std::fs::File::open(dir.join("nodes.tsv"))?);
    let mut features = Vec::new();
    let mut labels: Vec<u16> = Vec::new();
    let mut any_label = false;
    let mut node_splits: Vec<String> = Vec::new();
    let mut count = 0usize;
    for (lineno, line) in node_file.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 3 {
            return Err(fmt_err(format!(
                "nodes.tsv:{}: expected ≥3 columns",
                lineno + 1
            )));
        }
        let id: usize = cols[0]
            .parse()
            .map_err(|_| fmt_err(format!("nodes.tsv:{}: bad id", lineno + 1)))?;
        if id != count {
            return Err(fmt_err(format!(
                "nodes.tsv:{}: ids must be dense and ascending (got {id}, expected {count})",
                lineno + 1
            )));
        }
        if cols[1] == "-" {
            labels.push(0);
        } else {
            any_label = true;
            labels.push(
                cols[1]
                    .parse()
                    .map_err(|_| fmt_err(format!("nodes.tsv:{}: bad label", lineno + 1)))?,
            );
        }
        let feats: Result<Vec<f32>, _> = cols[2].split(' ').map(str::parse).collect();
        let feats = feats.map_err(|_| fmt_err(format!("nodes.tsv:{}: bad feature", lineno + 1)))?;
        if feats.len() != feat_dim {
            return Err(fmt_err(format!(
                "nodes.tsv:{}: {} features, meta says {feat_dim}",
                lineno + 1,
                feats.len()
            )));
        }
        features.extend(feats);
        node_splits.push(cols.get(3).unwrap_or(&"-").to_string());
        count += 1;
    }
    if count == 0 {
        return Err(fmt_err("nodes.tsv is empty"));
    }

    // edges.tsv
    let edge_file = std::io::BufReader::new(std::fs::File::open(dir.join("edges.tsv"))?);
    let mut builder = GraphBuilder::new(count, relations.max(1));
    let mut edge_splits: Vec<String> = Vec::new();
    for (lineno, line) in edge_file.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split('\t').collect();
        if cols.len() < 3 {
            return Err(fmt_err(format!(
                "edges.tsv:{}: expected ≥3 columns",
                lineno + 1
            )));
        }
        let head: u32 = cols[0]
            .parse()
            .map_err(|_| fmt_err(format!("edges.tsv:{}: bad head", lineno + 1)))?;
        let rel: u16 = cols[1]
            .parse()
            .map_err(|_| fmt_err(format!("edges.tsv:{}: bad relation", lineno + 1)))?;
        let tail: u32 = cols[2]
            .parse()
            .map_err(|_| fmt_err(format!("edges.tsv:{}: bad tail", lineno + 1)))?;
        if head as usize >= count || tail as usize >= count || rel as usize >= relations {
            return Err(fmt_err(format!(
                "edges.tsv:{}: endpoint/relation out of range",
                lineno + 1
            )));
        }
        builder.add_triple(head, rel, tail);
        edge_splits.push(cols.get(3).unwrap_or(&"-").to_string());
    }

    builder.node_features(Tensor::from_vec(count, feat_dim, features));
    if any_label {
        builder.node_labels(labels);
    }
    // Deterministic relation features: any hand-written dataset gets the
    // same embedding for relation r at the same REL_FEAT_DIM.
    let mut rel_rng = StdRng::seed_from_u64(0x7265_6c66);
    builder.rel_features(trng::randn(
        &mut rel_rng,
        relations.max(1),
        REL_FEAT_DIM,
        1.0,
    ));
    let graph = builder.build();

    // Splits.
    let (mut train, mut valid, mut test) = (Vec::new(), Vec::new(), Vec::new());
    let push = |dp: DataPoint,
                split: &str,
                train: &mut Vec<DataPoint>,
                valid: &mut Vec<DataPoint>,
                test: &mut Vec<DataPoint>| {
        match split {
            "train" => train.push(dp),
            "valid" => valid.push(dp),
            "test" => test.push(dp),
            _ => {}
        }
    };
    match task {
        Task::NodeClassification => {
            for (v, split) in node_splits.iter().enumerate() {
                push(
                    DataPoint::Node(v as u32),
                    split,
                    &mut train,
                    &mut valid,
                    &mut test,
                );
            }
        }
        Task::EdgeClassification => {
            for (e, split) in edge_splits.iter().enumerate() {
                push(
                    DataPoint::Edge(e as u32),
                    split,
                    &mut train,
                    &mut valid,
                    &mut test,
                );
            }
        }
    }

    let ds = Dataset {
        name,
        graph,
        task,
        num_classes: classes,
        train,
        valid,
        test,
    };
    // A structurally broken import must surface as a typed error, never as
    // a panic inside the library.
    ds.try_validate().map_err(IoError::Format)?;
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CitationConfig, KgConfig};

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gp_io_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn node_dataset_roundtrip() {
        let ds = CitationConfig::new("rt", 120, 4, 7).generate();
        let dir = tmpdir("node");
        save_dataset(&ds, &dir).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert_eq!(back.task, Task::NodeClassification);
        assert_eq!(back.num_classes, 4);
        assert_eq!(back.graph.num_nodes(), ds.graph.num_nodes());
        assert_eq!(back.graph.num_edges(), ds.graph.num_edges());
        assert_eq!(back.graph.triples(), ds.graph.triples());
        assert_eq!(
            back.graph.features().as_slice(),
            ds.graph.features().as_slice()
        );
        assert_eq!(back.train.len(), ds.train.len());
        assert_eq!(back.test.len(), ds.test.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn edge_dataset_roundtrip() {
        let ds = KgConfig::new("rt", 150, 6, 5, 8).generate();
        let dir = tmpdir("edge");
        save_dataset(&ds, &dir).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert_eq!(back.task, Task::EdgeClassification);
        assert_eq!(back.num_classes, 6);
        assert_eq!(back.graph.triples(), ds.graph.triples());
        assert_eq!(back.train.len(), ds.train.len());
        assert_eq!(back.valid.len(), ds.valid.len());
        assert_eq!(back.test.len(), ds.test.len());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn loaded_dataset_is_trainable() {
        // The imported dataset must work through the full pipeline.
        let ds = KgConfig::new("rt", 150, 5, 4, 9).generate();
        let dir = tmpdir("pipeline");
        save_dataset(&ds, &dir).unwrap();
        let back = load_dataset(&dir).unwrap();
        assert!(back.graph.rel_features().is_some());
        use rand::rngs::StdRng as R2;
        let mut rng = R2::seed_from_u64(0);
        let task = crate::sample_few_shot_task(&back, 3, 4, 6, &mut rng);
        assert_eq!(task.ways(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        let dir = tmpdir("bad");
        std::fs::write(dir.join("meta.tsv"), "task\tnode\nclasses\t3\n").unwrap();
        // Missing relations/feat_dim.
        assert!(load_dataset(&dir).is_err());

        std::fs::write(
            dir.join("meta.tsv"),
            "task\tnode\nclasses\t2\nrelations\t1\nfeat_dim\t2\n",
        )
        .unwrap();
        std::fs::write(dir.join("nodes.tsv"), "0\t0\t0.5 0.5\t-\n5\t1\t1 0\t-\n").unwrap();
        std::fs::write(dir.join("edges.tsv"), "").unwrap();
        // Non-dense node ids.
        assert!(load_dataset(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_numeric_meta_is_a_typed_error_not_missing() {
        let dir = tmpdir("badmeta");
        std::fs::write(
            dir.join("meta.tsv"),
            "task\tnode\nclasses\tthree\nrelations\t1\nfeat_dim\t2\n",
        )
        .unwrap();
        std::fs::write(dir.join("nodes.tsv"), "0\t0\t0.5 0.5\t-\n").unwrap();
        std::fs::write(dir.join("edges.tsv"), "").unwrap();
        let err = load_dataset(&dir).err().expect("load must fail");
        match err {
            IoError::Format(m) => assert!(m.contains("bad classes"), "{m}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn inconsistent_dataset_returns_error_instead_of_panicking() {
        // A label outside `classes` used to abort the process via
        // `Dataset::validate`; it must now surface as IoError::Format.
        let dir = tmpdir("badlabel");
        std::fs::write(
            dir.join("meta.tsv"),
            "task\tnode\nclasses\t2\nrelations\t1\nfeat_dim\t2\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("nodes.tsv"),
            "0\t0\t0.5 0.5\ttrain\n1\t7\t1 0\ttrain\n",
        )
        .unwrap();
        std::fs::write(dir.join("edges.tsv"), "0\t0\t1\t-\n").unwrap();
        let err = load_dataset(&dir).err().expect("load must fail");
        match err {
            IoError::Format(m) => assert!(m.contains("label 7"), "{m}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
