//! Synthetic multi-relational knowledge graphs (Wiki / ConceptNet /
//! FB15K-237 / NELL stand-ins).

use gp_graph::GraphBuilder;
use gp_tensor::{rng as trng, Tensor};
use rand::Rng;

use crate::dataset::{stratified_split, DataPoint, Dataset, Task};
use crate::{NODE_FEAT_DIM, REL_FEAT_DIM};

/// Generator parameters for an entity-typed knowledge graph.
///
/// Each entity has a latent type; each relation `r` is anchored to a
/// specific (subject-type, object-type) pair drawn at generation time.
/// A triple `(u, r, v)` is emitted by picking a relation, then sampling
/// endpoints of the right types (with probability `type_noise` an endpoint
/// is sampled uniformly instead — mislabeled/noisy facts). Relation
/// classification is therefore solvable from endpoint context, the same
/// signal real KGs carry, while never being trivially readable from a
/// single feature.
#[derive(Clone, Debug)]
pub struct KgConfig {
    /// Dataset display name.
    pub name: String,
    /// Number of entities.
    pub num_entities: usize,
    /// Number of relation types (= edge classes).
    pub num_relations: usize,
    /// Number of latent entity types.
    pub num_entity_types: usize,
    /// Mean triples per entity.
    pub triples_per_entity: f32,
    /// Probability an endpoint ignores its relation's type constraint.
    pub type_noise: f32,
    /// Std of Gaussian feature noise around the entity-type center.
    pub feature_noise: f32,
    /// Sub-modes per entity type (see [`crate::CitationConfig`]): makes
    /// types multi-modal so few-shot prompts can under-cover a type and
    /// test-time cached samples carry real information.
    pub modes_per_type: usize,
    /// Norm of each sub-mode's offset from its type center.
    pub mode_spread: f32,
    /// Fraction of the *last* sub-mode's datapoints placed in the test
    /// partition ("emerging mode"). Real benchmark splits are not i.i.d. —
    /// test entities drift from train entities — and this is precisely the
    /// headroom test-time adaptation (the Prompt Augmenter) exploits.
    /// `0.2` reproduces an i.i.d. split; higher skews the mode toward test.
    pub emerging_test_frac: f32,
    /// Fraction of triples whose *recorded* relation is corrupted to a
    /// random other relation (noisy facts, ubiquitous in real KGs).
    /// Corrupted triples are confined to the train/valid partitions — they
    /// pollute the candidate prompt pool (which adaptive selection can
    /// route around and random selection cannot) without distorting the
    /// measured test accuracy.
    pub train_label_noise: f32,
    /// RNG seed.
    pub seed: u64,
}

impl KgConfig {
    /// Sensible defaults for a mid-size instance.
    pub fn new(
        name: &str,
        num_entities: usize,
        num_relations: usize,
        num_entity_types: usize,
        seed: u64,
    ) -> Self {
        Self {
            name: name.to_string(),
            num_entities,
            num_relations,
            num_entity_types,
            triples_per_entity: 4.0,
            type_noise: 0.10,
            feature_noise: 0.35,
            modes_per_type: 1,
            mode_spread: 0.5,
            emerging_test_frac: 0.2,
            train_label_noise: 0.0,
            seed,
        }
    }

    /// Latent sub-mode of entity `i` (decoupled from its type:
    /// `i = type + num_types·block` → mode = block mod modes).
    fn entity_mode(&self, i: usize) -> usize {
        (i / self.num_entity_types) % self.modes_per_type.max(1)
    }

    /// Generate the dataset (graph + edge-classification splits).
    pub fn generate(&self) -> Dataset {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(self.seed);
        assert!(self.num_relations >= 2, "need at least 2 relations");
        assert!(self.num_entity_types >= 2, "need at least 2 entity types");

        // Entity types (balanced) and type-centered features.
        let type_centers: Vec<Tensor> = (0..self.num_entity_types)
            .map(|_| trng::randn(&mut rng, 1, NODE_FEAT_DIM, 1.0).l2_normalize_rows(1e-9))
            .collect();
        let entity_type: Vec<usize> = (0..self.num_entities)
            .map(|i| i % self.num_entity_types)
            .collect();
        // Sub-mode offsets per (type, mode).
        let modes = self.modes_per_type.max(1);
        let mode_offsets: Vec<Tensor> = (0..self.num_entity_types * modes)
            .map(|_| {
                if modes == 1 {
                    Tensor::zeros(1, NODE_FEAT_DIM)
                } else {
                    trng::randn(&mut rng, 1, NODE_FEAT_DIM, 1.0)
                        .l2_normalize_rows(1e-9)
                        .scale(self.mode_spread)
                }
            })
            .collect();

        // Noise std scaled by 1/√dim: `feature_noise` is the expected
        // noise-to-signal norm ratio (see CitationConfig).
        let noise_std = self.feature_noise / (NODE_FEAT_DIM as f32).sqrt();
        let mut feat = Vec::with_capacity(self.num_entities * NODE_FEAT_DIM);
        for (i, &t) in entity_type.iter().enumerate() {
            let c = &type_centers[t];
            let mo = &mode_offsets[t * modes + self.entity_mode(i)];
            for d in 0..NODE_FEAT_DIM {
                feat.push(c.get(0, d) + mo.get(0, d) + noise_std * trng::standard_normal(&mut rng));
            }
        }
        let features = Tensor::from_vec(self.num_entities, NODE_FEAT_DIM, feat);

        // Relation → (subject type, object type) signature.
        let signatures: Vec<(usize, usize)> = (0..self.num_relations)
            .map(|_| {
                (
                    rng.gen_range(0..self.num_entity_types),
                    rng.gen_range(0..self.num_entity_types),
                )
            })
            .collect();

        // Entity buckets per type.
        let mut by_type: Vec<Vec<u32>> = vec![Vec::new(); self.num_entity_types];
        for (i, &t) in entity_type.iter().enumerate() {
            by_type[t].push(i as u32);
        }

        let mut builder = GraphBuilder::new(self.num_entities, self.num_relations);
        let total = (self.num_entities as f32 * self.triples_per_entity) as usize;
        let sample_endpoint = |rng: &mut StdRng, ty: usize| -> u32 {
            if rng.gen::<f32>() < self.type_noise {
                rng.gen_range(0..self.num_entities) as u32
            } else {
                let bucket = &by_type[ty];
                bucket[rng.gen_range(0..bucket.len())]
            }
        };
        let mut raw: Vec<(u32, u16, u32)> = Vec::with_capacity(total);
        for i in 0..total {
            // Cycle through relations so every class has enough support.
            let r = i % self.num_relations;
            let (st, ot) = signatures[r];
            let u = sample_endpoint(&mut rng, st);
            let v = sample_endpoint(&mut rng, ot);
            if u != v {
                raw.push((u, r as u16, v));
            }
        }
        // Corrupt a fraction of recorded relations (noisy facts). The
        // corrupted ids are kept out of the test partition below.
        let mut corrupted = std::collections::HashSet::new();
        if self.train_label_noise > 0.0 && self.num_relations > 1 {
            for (eid, t) in raw.iter_mut().enumerate() {
                if rng.gen::<f32>() < self.train_label_noise {
                    let mut new_rel = rng.gen_range(0..self.num_relations) as u16;
                    if new_rel == t.1 {
                        new_rel = (new_rel + 1) % self.num_relations as u16;
                    }
                    t.1 = new_rel;
                    corrupted.insert(eid as u32);
                }
            }
        }
        for (u, r, v) in &raw {
            builder.add_triple(*u, *r, *v);
        }
        builder.node_features(features);
        builder.rel_features(trng::randn(&mut rng, self.num_relations, REL_FEAT_DIM, 1.0));
        let graph = builder.build();

        // Drift-aware split: triples whose head entity belongs to the last
        // ("emerging") sub-mode go predominantly to test; the rest split
        // 60/20/20 per relation. This reproduces the non-i.i.d. character
        // of real benchmark splits.
        let is_emerging = |dp: &DataPoint| -> bool {
            let DataPoint::Edge(eid) = dp else {
                return false;
            };
            let head = graph.triple(*eid).head as usize;
            self.modes_per_type > 1 && self.entity_mode(head) == self.modes_per_type - 1
        };
        let all: Vec<DataPoint> = (0..graph.num_edges() as u32)
            .map(DataPoint::Edge)
            .filter(|dp| {
                let DataPoint::Edge(eid) = dp else {
                    return true;
                };
                !corrupted.contains(eid)
            })
            .collect();
        let (emerging, regular): (Vec<_>, Vec<_>) = all.into_iter().partition(|dp| is_emerging(dp));
        let (mut train, mut valid, mut test) =
            stratified_split(&graph, regular, self.num_relations);
        // Noisy facts live only in the candidate pool (train) and valid.
        // Sorted edge order: iterating the HashSet directly would hand the
        // train/valid assignment (`i % 5`) to the hash seed, making the
        // generated splits differ run to run (gp-lint rule D1).
        // gp-lint: allow(D1) — drained into a Vec and sorted on the next line; hash order never escapes
        let mut corrupted_sorted: Vec<u32> = corrupted.into_iter().collect();
        corrupted_sorted.sort_unstable();
        for (i, eid) in corrupted_sorted.iter().enumerate() {
            let dp = DataPoint::Edge(*eid);
            if i % 5 == 4 {
                valid.push(dp);
            } else {
                train.push(dp);
            }
        }
        // Emerging-mode points: `emerging_test_frac` to test, remainder
        // split evenly between train and valid (per relation, so every
        // relation keeps candidate support).
        let mut per_rel: Vec<Vec<DataPoint>> = vec![Vec::new(); self.num_relations];
        for dp in emerging {
            per_rel[dp.label(&graph) as usize].push(dp);
        }
        for bucket in per_rel {
            let n = bucket.len();
            let n_test = (n as f32 * self.emerging_test_frac).round() as usize;
            let n_train = (n - n_test) / 2;
            for (i, dp) in bucket.into_iter().enumerate() {
                if i < n_test {
                    test.push(dp);
                } else if i < n_test + n_train {
                    train.push(dp);
                } else {
                    valid.push(dp);
                }
            }
        }
        let ds = Dataset {
            name: self.name.clone(),
            graph,
            task: Task::EdgeClassification,
            num_classes: self.num_relations,
            train,
            valid,
            test,
        };
        ds.validate();
        ds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_consistent_dataset() {
        let ds = KgConfig::new("toy-kg", 300, 10, 6, 1).generate();
        assert_eq!(ds.task, Task::EdgeClassification);
        assert_eq!(ds.num_classes, 10);
        assert!(ds.graph.num_edges() > 500);
        assert!(ds.graph.rel_features().is_some());
    }

    #[test]
    fn every_relation_has_train_support() {
        let ds = KgConfig::new("t", 400, 12, 8, 2).generate();
        let mut seen = [false; 12];
        for dp in &ds.train {
            seen[dp.label(&ds.graph) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "missing relation in train split");
    }

    #[test]
    fn relations_respect_type_signatures_mostly() {
        let cfg = KgConfig::new("t", 500, 8, 5, 3);
        let ds = cfg.generate();
        let g = &ds.graph;
        // Count triples whose endpoints match the modal type pair for the
        // relation; with 10% noise per endpoint most should match.
        use std::collections::HashMap;
        let mut modal: HashMap<u16, HashMap<(usize, usize), usize>> = HashMap::new();
        let ty = |n: u32| (n as usize) % cfg.num_entity_types;
        for t in g.triples() {
            *modal
                .entry(t.rel)
                .or_default()
                .entry((ty(t.head), ty(t.tail)))
                .or_default() += 1;
        }
        for (_, counts) in modal {
            let total: usize = counts.values().sum();
            let max = counts.values().max().copied().unwrap_or(0);
            assert!(
                max as f32 / total as f32 > 0.6,
                "type signature too noisy: {max}/{total}"
            );
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = KgConfig::new("t", 200, 6, 4, 9).generate();
        let b = KgConfig::new("t", 200, 6, 4, 9).generate();
        assert_eq!(a.graph.num_edges(), b.graph.num_edges());
        assert_eq!(a.graph.triples(), b.graph.triples());
    }
}
