//! Few-shot episode sampling (the paper's §V-A2 evaluation protocol).

use rand::seq::SliceRandom;
use rand::Rng;

use crate::dataset::{DataPoint, Dataset, Split};

/// One `m`-way episode: `N` candidate prompts per class from the train
/// partition, `n` queries from the test partition, labels remapped to
/// `0..m` for the episode.
#[derive(Clone, Debug)]
pub struct FewShotTask {
    /// The original class ids chosen for this episode (length `m`).
    pub classes: Vec<u16>,
    /// Candidate prompt pool: `(datapoint, episode label)`, up to `N` per class.
    pub candidates: Vec<(DataPoint, usize)>,
    /// Queries: `(datapoint, episode label)`.
    pub queries: Vec<(DataPoint, usize)>,
}

impl FewShotTask {
    /// Number of ways `m`.
    pub fn ways(&self) -> usize {
        self.classes.len()
    }
}

/// Sample an `ways`-way episode:
/// * choose `ways` distinct classes that have support in both splits,
/// * take up to `candidates_per_class` (= `N`) train datapoints per class,
/// * take up to `num_queries` test datapoints across the chosen classes.
///
/// # Panics
/// Panics if fewer than `ways` classes have support in both partitions.
pub fn sample_few_shot_task<R: Rng + ?Sized>(
    dataset: &Dataset,
    ways: usize,
    candidates_per_class: usize,
    num_queries: usize,
    rng: &mut R,
) -> FewShotTask {
    sample_few_shot_from_splits(
        dataset,
        Split::Train,
        Split::Test,
        ways,
        candidates_per_class,
        num_queries,
        rng,
    )
}

/// As [`sample_few_shot_task`] but with explicit source splits (pretraining
/// episodes draw both prompts and queries from the train partition).
pub fn sample_few_shot_from_splits<R: Rng + ?Sized>(
    dataset: &Dataset,
    prompt_split: Split,
    query_split: Split,
    ways: usize,
    candidates_per_class: usize,
    num_queries: usize,
    rng: &mut R,
) -> FewShotTask {
    let graph = &dataset.graph;
    let mut by_class_prompts: Vec<Vec<DataPoint>> = vec![Vec::new(); dataset.num_classes];
    for dp in dataset.split(prompt_split) {
        by_class_prompts[dp.label(graph) as usize].push(*dp);
    }
    let mut by_class_queries: Vec<Vec<DataPoint>> = vec![Vec::new(); dataset.num_classes];
    for dp in dataset.split(query_split) {
        by_class_queries[dp.label(graph) as usize].push(*dp);
    }

    let mut eligible: Vec<u16> = (0..dataset.num_classes as u16)
        .filter(|&c| {
            !by_class_prompts[c as usize].is_empty() && !by_class_queries[c as usize].is_empty()
        })
        .collect();
    assert!(
        eligible.len() >= ways,
        "{}: only {} classes have support, need {ways}",
        dataset.name,
        eligible.len()
    );
    eligible.shuffle(rng);
    let mut classes: Vec<u16> = eligible[..ways].to_vec();
    classes.sort_unstable();

    let mut candidates = Vec::new();
    let mut queries = Vec::new();
    for (episode_label, &c) in classes.iter().enumerate() {
        let mut pool = by_class_prompts[c as usize].clone();
        pool.shuffle(rng);
        for dp in pool.into_iter().take(candidates_per_class) {
            candidates.push((dp, episode_label));
        }
        let mut qpool = by_class_queries[c as usize].clone();
        qpool.shuffle(rng);
        // Balanced queries per class; remainder handled below.
        for dp in qpool.into_iter().take(num_queries.div_ceil(ways)) {
            queries.push((dp, episode_label));
        }
    }
    queries.shuffle(rng);
    queries.truncate(num_queries);

    FewShotTask {
        classes,
        candidates,
        queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CitationConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ds() -> Dataset {
        CitationConfig::new("t", 400, 8, 11).generate()
    }

    #[test]
    fn episode_has_requested_shape() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(0);
        let task = sample_few_shot_task(&d, 5, 10, 30, &mut rng);
        assert_eq!(task.ways(), 5);
        assert_eq!(task.classes.len(), 5);
        assert!(task.candidates.len() <= 50);
        assert!(task.candidates.len() >= 5);
        assert_eq!(task.queries.len(), 30);
    }

    #[test]
    fn episode_labels_are_remapped_consistently() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(1);
        let task = sample_few_shot_task(&d, 4, 6, 20, &mut rng);
        for (dp, el) in task.candidates.iter().chain(&task.queries) {
            let orig = dp.label(&d.graph);
            assert_eq!(task.classes[*el], orig, "episode label mismatch");
        }
    }

    #[test]
    fn each_class_has_candidates() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(2);
        let task = sample_few_shot_task(&d, 6, 8, 24, &mut rng);
        for el in 0..6 {
            assert!(
                task.candidates.iter().any(|(_, l)| *l == el),
                "class {el} has no candidates"
            );
        }
    }

    #[test]
    fn queries_come_from_test_split() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(3);
        let task = sample_few_shot_task(&d, 3, 5, 15, &mut rng);
        use std::collections::HashSet;
        let test_set: HashSet<_> = d.test.iter().copied().collect();
        for (dp, _) in &task.queries {
            assert!(test_set.contains(dp), "query not from test split");
        }
    }

    #[test]
    #[should_panic(expected = "classes have support")]
    fn too_many_ways_panics() {
        let d = ds();
        let mut rng = StdRng::seed_from_u64(4);
        let _ = sample_few_shot_task(&d, 100, 5, 10, &mut rng);
    }
}
