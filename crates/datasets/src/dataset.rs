//! Dataset wrapper: a graph, a task, and train/valid/test datapoints.

use gp_graph::Graph;

/// Which downstream task the dataset defines (Definition 2 of the paper).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Task {
    /// Predict the class of a node (`|V_i| = 1`), e.g. arXiv categories.
    NodeClassification,
    /// Predict the relation of a (head, tail) pair (`|V_i| = 2`), e.g.
    /// FB15K-237 relation types. The target edge is excluded from the
    /// datapoint's data graph.
    EdgeClassification,
}

/// One classification datapoint `x_i`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum DataPoint {
    /// A node id (node classification).
    Node(u32),
    /// A triple index into [`Graph::triples`] (edge classification).
    Edge(u32),
}

impl DataPoint {
    /// The anchor node ids this datapoint contextualizes around.
    pub fn anchors(self, graph: &Graph) -> Vec<u32> {
        match self {
            DataPoint::Node(n) => vec![n],
            DataPoint::Edge(eid) => {
                let t = graph.triple(eid);
                vec![t.head, t.tail]
            }
        }
    }

    /// The ground-truth class of this datapoint.
    pub fn label(self, graph: &Graph) -> u16 {
        match self {
            DataPoint::Node(n) => graph.node_label(n),
            DataPoint::Edge(eid) => graph.triple(eid).rel,
        }
    }
}

/// Train/valid/test partition names.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Split {
    /// Candidate prompts are drawn from here.
    Train,
    /// Held-out tuning partition.
    Valid,
    /// Queries are drawn from here.
    Test,
}

/// A benchmark dataset: graph + task + split datapoints.
pub struct Dataset {
    /// Human-readable name (e.g. `"fb15k237-like"`).
    pub name: String,
    /// The underlying graph.
    pub graph: Graph,
    /// Node or edge classification.
    pub task: Task,
    /// Total number of classes (`|Y|` before episode subsampling).
    pub num_classes: usize,
    /// Datapoints usable as labelled prompt candidates.
    pub train: Vec<DataPoint>,
    /// Held-out datapoints.
    pub valid: Vec<DataPoint>,
    /// Datapoints used as queries.
    pub test: Vec<DataPoint>,
}

impl Dataset {
    /// Datapoints of one split.
    pub fn split(&self, split: Split) -> &[DataPoint] {
        match split {
            Split::Train => &self.train,
            Split::Valid => &self.valid,
            Split::Test => &self.test,
        }
    }

    /// Sanity-check internal consistency (labels in range, anchors valid).
    /// Used by tests and the experiment harness at startup.
    ///
    /// # Panics
    /// Panics on the first inconsistency; use [`Dataset::try_validate`]
    /// for data loaded from external files.
    pub fn validate(&self) {
        self.try_validate().unwrap_or_else(|e| panic!("{e}"));
    }

    /// Fallible [`Dataset::validate`]: returns a description of the first
    /// inconsistency instead of panicking, including datapoints that index
    /// outside the graph (which the panicking path would hit as an
    /// out-of-bounds access).
    pub fn try_validate(&self) -> Result<(), String> {
        for dp in self.train.iter().chain(&self.valid).chain(&self.test) {
            match *dp {
                DataPoint::Node(n) => {
                    if n as usize >= self.graph.num_nodes() {
                        return Err(format!(
                            "{}: node datapoint {n} outside graph of {} nodes",
                            self.name,
                            self.graph.num_nodes()
                        ));
                    }
                }
                DataPoint::Edge(eid) => {
                    if eid as usize >= self.graph.num_edges() {
                        return Err(format!(
                            "{}: edge datapoint {eid} outside graph of {} edges",
                            self.name,
                            self.graph.num_edges()
                        ));
                    }
                }
            }
            let label = dp.label(&self.graph) as usize;
            if label >= self.num_classes {
                return Err(format!(
                    "{}: label {label} out of {} classes",
                    self.name, self.num_classes
                ));
            }
            for a in dp.anchors(&self.graph) {
                if a as usize >= self.graph.num_nodes() {
                    return Err(format!(
                        "{}: anchor node {a} outside graph of {} nodes",
                        self.name,
                        self.graph.num_nodes()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Number of datapoints across all splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }

    /// True when the dataset carries no datapoints.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Deterministically split datapoints 60/20/20 per class so every class is
/// represented in every split (the paper draws candidate prompts from the
/// train partition and queries from the test partition, §V-A2).
pub fn stratified_split(
    graph: &Graph,
    points: Vec<DataPoint>,
    num_classes: usize,
) -> (Vec<DataPoint>, Vec<DataPoint>, Vec<DataPoint>) {
    let mut per_class: Vec<Vec<DataPoint>> = vec![Vec::new(); num_classes];
    for dp in points {
        per_class[dp.label(graph) as usize].push(dp);
    }
    let (mut train, mut valid, mut test) = (Vec::new(), Vec::new(), Vec::new());
    for bucket in per_class {
        let n = bucket.len();
        let n_train = (n * 6) / 10;
        let n_valid = (n * 2) / 10;
        for (i, dp) in bucket.into_iter().enumerate() {
            if i < n_train {
                train.push(dp);
            } else if i < n_train + n_valid {
                valid.push(dp);
            } else {
                test.push(dp);
            }
        }
    }
    (train, valid, test)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gp_graph::GraphBuilder;

    fn labelled_graph() -> Graph {
        let mut b = GraphBuilder::new(10, 2);
        for i in 0..9 {
            b.add_triple(i, (i % 2) as u16, i + 1);
        }
        b.node_labels((0..10).map(|i| (i % 2) as u16).collect());
        b.build()
    }

    #[test]
    fn node_datapoint_accessors() {
        let g = labelled_graph();
        let dp = DataPoint::Node(3);
        assert_eq!(dp.anchors(&g), vec![3]);
        assert_eq!(dp.label(&g), 1);
    }

    #[test]
    fn edge_datapoint_accessors() {
        let g = labelled_graph();
        let dp = DataPoint::Edge(2);
        assert_eq!(dp.anchors(&g), vec![2, 3]);
        assert_eq!(dp.label(&g), 0);
    }

    #[test]
    fn stratified_split_covers_all_classes() {
        let g = labelled_graph();
        let points: Vec<DataPoint> = (0..10).map(DataPoint::Node).collect();
        let (train, valid, test) = stratified_split(&g, points, 2);
        assert_eq!(train.len() + valid.len() + test.len(), 10);
        for split in [&train, &test] {
            let mut seen = [false; 2];
            for dp in split {
                seen[dp.label(&g) as usize] = true;
            }
            assert!(seen[0] && seen[1], "class missing from a split");
        }
    }
}
