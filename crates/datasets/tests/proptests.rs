//! Property tests for dataset generation and episode sampling.

use gp_datasets::{sample_few_shot_task, CitationConfig, KgConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn citation_splits_partition_the_datapoints(
        classes in 2usize..8,
        nodes_per_class in 10usize..30,
        seed in any::<u64>(),
    ) {
        let n = classes * nodes_per_class;
        let ds = CitationConfig::new("p", n, classes, seed).generate();
        // Every node appears in exactly one split.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for dp in ds.train.iter().chain(&ds.valid).chain(&ds.test) {
            prop_assert!(seen.insert(*dp), "datapoint in two splits");
        }
        prop_assert_eq!(seen.len(), n);
        // Labels in range everywhere.
        for dp in &seen {
            prop_assert!((dp.label(&ds.graph) as usize) < classes);
        }
    }

    #[test]
    fn kg_splits_cover_every_relation_in_train(
        rels in 3usize..12,
        types in 3usize..8,
        seed in any::<u64>(),
    ) {
        let ds = KgConfig::new("p", 300, rels, types, seed).generate();
        let mut seen = vec![false; rels];
        for dp in &ds.train {
            seen[dp.label(&ds.graph) as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s), "a relation lost train support");
    }

    #[test]
    fn generation_is_deterministic(classes in 2usize..6, seed in any::<u64>()) {
        let a = CitationConfig::new("p", 120, classes, seed).generate();
        let b = CitationConfig::new("p", 120, classes, seed).generate();
        prop_assert_eq!(a.graph.features().as_slice(), b.graph.features().as_slice());
        prop_assert_eq!(a.graph.triples(), b.graph.triples());
        prop_assert_eq!(a.train, b.train);
    }

    #[test]
    fn episodes_are_internally_consistent(
        classes in 3usize..8,
        ways in 2usize..4,
        shots in 1usize..5,
        queries in 1usize..20,
        seed in any::<u64>(),
    ) {
        let ds = CitationConfig::new("p", classes * 30, classes, seed).generate();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let task = sample_few_shot_task(&ds, ways, shots, queries, &mut rng);
        prop_assert_eq!(task.ways(), ways);
        // Episode labels consistent with the class map.
        for (dp, el) in task.candidates.iter().chain(&task.queries) {
            prop_assert!(*el < ways);
            prop_assert_eq!(task.classes[*el], dp.label(&ds.graph));
        }
        // Candidates never exceed shots per class.
        for el in 0..ways {
            let got = task.candidates.iter().filter(|(_, l)| *l == el).count();
            prop_assert!(got <= shots);
        }
        prop_assert!(task.queries.len() <= queries);
    }

    #[test]
    fn label_noise_keeps_corrupted_out_of_test(
        noise in 0.05f32..0.4,
        seed in any::<u64>(),
    ) {
        let mut cfg = KgConfig::new("p", 300, 6, 5, seed);
        cfg.train_label_noise = noise;
        let ds = cfg.generate();
        // Test labels must be consistent with the type signature far more
        // often than the corrupted train pool would allow — spot-check by
        // re-deriving consistency: test split has no corrupted points, and
        // the dataset validates (labels in range).
        ds.validate();
        // Train must be strictly larger than with zero corruption confined
        // elsewhere — i.e., corrupted points all landed in train/valid.
        let total = ds.train.len() + ds.valid.len() + ds.test.len();
        prop_assert_eq!(total, ds.graph.num_edges());
    }
}
