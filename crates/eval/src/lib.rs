//! # gp-eval
//!
//! Evaluation utilities for the experiment harness:
//!
//! * [`stats`] — per-episode accuracy aggregation (`mean ± std`, the
//!   format of every table in the paper).
//! * [`mod@tsne`] — an exact (O(n²)) t-SNE implementation for the Fig. 7
//!   embedding-distribution analysis.
//! * [`cluster`] — quantitative cluster-tightness metrics (silhouette,
//!   intra/inter distance ratio) used as an objective companion to the
//!   qualitative t-SNE plots.
//! * [`calibration`] — expected calibration error + confusion matrices
//!   (diagnostics for the Prompt Augmenter's confidence gate).
//! * [`table`] — plain-text/markdown table rendering for EXPERIMENTS.md.

pub mod calibration;
pub mod cluster;
pub mod plot;
pub mod stats;
pub mod table;
pub mod tsne;

pub use calibration::{expected_calibration_error, ConfusionMatrix};
pub use cluster::{intra_inter_ratio, silhouette_score};
pub use plot::{line_chart, scatter_plot, Series};
pub use stats::MeanStd;
pub use table::Table;
pub use tsne::{tsne, TsneConfig};
