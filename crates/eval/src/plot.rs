//! Minimal dependency-free SVG plotting for the figure experiments.
//!
//! Two chart types cover every figure in the paper: multi-series line
//! charts (Figs. 3, 5, 6, 8, 9) and labelled scatter plots (Fig. 7's
//! t-SNE embeddings).

#![allow(clippy::write_with_newline)] // raw-string SVG fragments keep their own newlines

use std::fmt::Write as _;

const WIDTH: f32 = 640.0;
const HEIGHT: f32 = 400.0;
const MARGIN: f32 = 56.0;

/// Categorical palette (colorblind-safe Okabe–Ito subset).
const PALETTE: [&str; 8] = [
    "#0072B2", "#E69F00", "#009E73", "#D55E00", "#CC79A7", "#56B4E9", "#F0E442", "#000000",
];

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<(f32, f32)>,
}

impl Series {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, points: Vec<(f32, f32)>) -> Self {
        Self {
            name: name.into(),
            points,
        }
    }
}

fn bounds(all: impl Iterator<Item = (f32, f32)>) -> (f32, f32, f32, f32) {
    let (mut min_x, mut max_x, mut min_y, mut max_y) = (
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::INFINITY,
        f32::NEG_INFINITY,
    );
    for (x, y) in all {
        min_x = min_x.min(x);
        max_x = max_x.max(x);
        min_y = min_y.min(y);
        max_y = max_y.max(y);
    }
    if !min_x.is_finite() {
        return (0.0, 1.0, 0.0, 1.0);
    }
    if (max_x - min_x).abs() < 1e-9 {
        max_x = min_x + 1.0;
    }
    if (max_y - min_y).abs() < 1e-9 {
        max_y = min_y + 1.0;
    }
    (min_x, max_x, min_y, max_y)
}

fn sx(x: f32, min_x: f32, max_x: f32) -> f32 {
    MARGIN + (x - min_x) / (max_x - min_x) * (WIDTH - 2.0 * MARGIN)
}

fn sy(y: f32, min_y: f32, max_y: f32) -> f32 {
    HEIGHT - MARGIN - (y - min_y) / (max_y - min_y) * (HEIGHT - 2.0 * MARGIN)
}

fn header(title: &str, x_label: &str, y_label: &str) -> String {
    let mut s = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    );
    let _ = write!(
        s,
        r#"<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>
<text x="{}" y="24" text-anchor="middle" font-family="sans-serif" font-size="15" font-weight="bold">{}</text>
<text x="{}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12">{}</text>
<text x="16" y="{}" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 16 {})">{}</text>
"#,
        WIDTH / 2.0,
        escape(title),
        WIDTH / 2.0,
        HEIGHT - 12.0,
        escape(x_label),
        HEIGHT / 2.0,
        HEIGHT / 2.0,
        escape(y_label),
    );
    s
}

fn axes(min_x: f32, max_x: f32, min_y: f32, max_y: f32) -> String {
    let mut s = String::new();
    let (x0, y0) = (MARGIN, HEIGHT - MARGIN);
    let (x1, y1) = (WIDTH - MARGIN, MARGIN);
    let _ = write!(
        s,
        r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/>
<line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>
"#
    );
    // Four ticks per axis.
    for i in 0..=4 {
        let fx = min_x + (max_x - min_x) * i as f32 / 4.0;
        let fy = min_y + (max_y - min_y) * i as f32 / 4.0;
        let px = sx(fx, min_x, max_x);
        let py = sy(fy, min_y, max_y);
        let _ = write!(
            s,
            r#"<line x1="{px}" y1="{y0}" x2="{px}" y2="{}" stroke="black"/>
<text x="{px}" y="{}" text-anchor="middle" font-family="sans-serif" font-size="10">{fx:.1}</text>
<line x1="{x0}" y1="{py}" x2="{}" y2="{py}" stroke="black"/>
<text x="{}" y="{}" text-anchor="end" font-family="sans-serif" font-size="10">{fy:.1}</text>
"#,
            y0 + 4.0,
            y0 + 16.0,
            x0 - 4.0,
            x0 - 6.0,
            py + 3.0,
        );
    }
    s
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render a multi-series line chart to an SVG string.
pub fn line_chart(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let (min_x, max_x, min_y, max_y) = bounds(series.iter().flat_map(|s| s.points.iter().copied()));
    let mut svg = header(title, x_label, y_label);
    svg += &axes(min_x, max_x, min_y, max_y);
    for (i, s) in series.iter().enumerate() {
        let color = PALETTE[i % PALETTE.len()];
        let mut path = String::new();
        for (j, &(x, y)) in s.points.iter().enumerate() {
            let cmd = if j == 0 { 'M' } else { 'L' };
            let _ = write!(
                path,
                "{cmd}{:.1} {:.1} ",
                sx(x, min_x, max_x),
                sy(y, min_y, max_y)
            );
        }
        let _ = write!(
            svg,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="2"/>
"#
        );
        for &(x, y) in &s.points {
            let _ = write!(
                svg,
                r#"<circle cx="{:.1}" cy="{:.1}" r="3" fill="{color}"/>
"#,
                sx(x, min_x, max_x),
                sy(y, min_y, max_y)
            );
        }
        // Legend entry.
        let ly = MARGIN + 16.0 * i as f32;
        let _ = write!(
            svg,
            r#"<rect x="{}" y="{}" width="10" height="10" fill="{color}"/>
<text x="{}" y="{}" font-family="sans-serif" font-size="11">{}</text>
"#,
            WIDTH - MARGIN - 150.0,
            ly,
            WIDTH - MARGIN - 136.0,
            ly + 9.0,
            escape(&s.name),
        );
    }
    svg += "</svg>\n";
    svg
}

/// Render a class-colored scatter plot (e.g. t-SNE embeddings) to SVG.
pub fn scatter_plot(title: &str, points: &[(f32, f32)], labels: &[usize]) -> String {
    assert_eq!(points.len(), labels.len(), "one label per point");
    let (min_x, max_x, min_y, max_y) = bounds(points.iter().copied());
    let mut svg = header(title, "", "");
    svg += &axes(min_x, max_x, min_y, max_y);
    for (&(x, y), &l) in points.iter().zip(labels) {
        let color = PALETTE[l % PALETTE.len()];
        let _ = write!(
            svg,
            r#"<circle cx="{:.1}" cy="{:.1}" r="4" fill="{color}" fill-opacity="0.75"/>
"#,
            sx(x, min_x, max_x),
            sy(y, min_y, max_y)
        );
    }
    svg += "</svg>\n";
    svg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_contains_all_series() {
        let svg = line_chart(
            "Accuracy vs ways",
            "ways",
            "accuracy (%)",
            &[
                Series::new("GraphPrompter", vec![(5.0, 70.0), (10.0, 50.0)]),
                Series::new("Prodigy", vec![(5.0, 60.0), (10.0, 45.0)]),
            ],
        );
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert!(svg.contains("GraphPrompter"));
        assert!(svg.contains("Prodigy"));
        assert!(svg.matches("<path").count() == 2);
    }

    #[test]
    fn scatter_colors_by_label() {
        let svg = scatter_plot("t-SNE", &[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)], &[0, 1, 0]);
        assert!(svg.contains(PALETTE[0]));
        assert!(svg.contains(PALETTE[1]));
        assert_eq!(svg.matches("<circle").count(), 3);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let svg = line_chart("empty", "x", "y", &[Series::new("s", vec![])]);
        assert!(svg.contains("</svg>"));
        let svg = line_chart("flat", "x", "y", &[Series::new("s", vec![(1.0, 1.0)])]);
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn titles_are_escaped() {
        let svg = line_chart("a < b & c", "x", "y", &[]);
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    #[should_panic(expected = "one label per point")]
    fn scatter_rejects_mismatched_labels() {
        let _ = scatter_plot("t", &[(0.0, 0.0)], &[]);
    }
}
