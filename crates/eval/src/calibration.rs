//! Confidence-calibration and per-class diagnostics.
//!
//! The Prompt Augmenter's admission gate stakes test-time adaptation on
//! softmax confidence being informative about correctness (§IV-C). These
//! metrics quantify that assumption: expected calibration error over
//! equal-width confidence bins, and a per-class confusion matrix.

/// Expected Calibration Error (Naeini et al. 2015): bin predictions by
/// confidence, compare each bin's mean confidence to its accuracy, and
/// average the gaps weighted by bin mass. 0 = perfectly calibrated.
///
/// # Panics
/// Panics on length mismatches or `bins == 0`.
pub fn expected_calibration_error(confidences: &[f32], correct: &[bool], bins: usize) -> f32 {
    assert_eq!(
        confidences.len(),
        correct.len(),
        "one correctness flag per confidence"
    );
    assert!(bins > 0, "need at least one bin");
    if confidences.is_empty() {
        return 0.0;
    }
    let n = confidences.len() as f32;
    let mut bin_conf = vec![0.0f32; bins];
    let mut bin_acc = vec![0.0f32; bins];
    let mut bin_n = vec![0usize; bins];
    for (&c, &ok) in confidences.iter().zip(correct) {
        let b = ((c * bins as f32) as usize).min(bins - 1);
        bin_conf[b] += c;
        bin_acc[b] += ok as u8 as f32;
        bin_n[b] += 1;
    }
    (0..bins)
        .filter(|&b| bin_n[b] > 0)
        .map(|b| {
            let m = bin_n[b] as f32;
            (bin_conf[b] / m - bin_acc[b] / m).abs() * (m / n)
        })
        .sum()
}

/// A `classes×classes` confusion matrix; `matrix[true][pred]` counts.
#[derive(Clone, Debug)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Build from parallel truth/prediction slices.
    ///
    /// # Panics
    /// Panics on length mismatch or out-of-range labels.
    pub fn new(truths: &[usize], predictions: &[usize], classes: usize) -> Self {
        assert_eq!(truths.len(), predictions.len(), "one prediction per truth");
        let mut counts = vec![0usize; classes * classes];
        for (&t, &p) in truths.iter().zip(predictions) {
            assert!(t < classes && p < classes, "label out of range");
            counts[t * classes + p] += 1;
        }
        Self { classes, counts }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// `matrix[true][pred]`.
    pub fn get(&self, truth: usize, pred: usize) -> usize {
        self.counts[truth * self.classes + pred]
    }

    /// Overall accuracy.
    pub fn accuracy(&self) -> f32 {
        let total: usize = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let diag: usize = (0..self.classes).map(|c| self.get(c, c)).sum();
        diag as f32 / total as f32
    }

    /// Recall of one class (0 when the class has no examples).
    pub fn recall(&self, class: usize) -> f32 {
        let row: usize = (0..self.classes).map(|p| self.get(class, p)).sum();
        if row == 0 {
            0.0
        } else {
            self.get(class, class) as f32 / row as f32
        }
    }

    /// Precision of one class (0 when the class was never predicted).
    pub fn precision(&self, class: usize) -> f32 {
        let col: usize = (0..self.classes).map(|t| self.get(t, class)).sum();
        if col == 0 {
            0.0
        } else {
            self.get(class, class) as f32 / col as f32
        }
    }

    /// Macro-averaged F1.
    pub fn macro_f1(&self) -> f32 {
        let mut sum = 0.0f32;
        for c in 0..self.classes {
            let p = self.precision(c);
            let r = self.recall(c);
            if p + r > 0.0 {
                sum += 2.0 * p * r / (p + r);
            }
        }
        sum / self.classes as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ece_zero_for_perfect_calibration() {
        // All predictions at confidence 1.0 and all correct.
        let ece = expected_calibration_error(&[1.0; 10], &[true; 10], 10);
        assert!(ece < 1e-6);
    }

    #[test]
    fn ece_large_for_overconfident_model() {
        // Confident (0.95) but only half right → |0.95 − 0.5| ≈ 0.45.
        let correct: Vec<bool> = (0..20).map(|i| i % 2 == 0).collect();
        let ece = expected_calibration_error(&[0.95; 20], &correct, 10);
        assert!((ece - 0.45).abs() < 0.01, "ece {ece}");
    }

    #[test]
    fn ece_weighted_by_bin_mass() {
        // 9 perfect high-confidence, 1 wrong low-confidence prediction.
        let mut conf = vec![0.99; 9];
        conf.push(0.10);
        let mut correct = vec![true; 9];
        correct.push(true); // low-confidence but correct → |0.1 − 1.0| in its bin
        let ece = expected_calibration_error(&conf, &correct, 10);
        assert!((ece - 0.09 - 0.001 * 9.0).abs() < 0.02, "ece {ece}");
    }

    #[test]
    fn confusion_matrix_accuracy_and_f1() {
        // truths:      0 0 1 1 2
        // predictions: 0 1 1 1 0
        let cm = ConfusionMatrix::new(&[0, 0, 1, 1, 2], &[0, 1, 1, 1, 0], 3);
        assert_eq!(cm.get(0, 1), 1);
        assert!((cm.accuracy() - 0.6).abs() < 1e-6);
        assert!((cm.recall(1) - 1.0).abs() < 1e-6);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(cm.recall(2), 0.0);
        assert!(cm.macro_f1() > 0.0 && cm.macro_f1() < 1.0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn confusion_rejects_bad_labels() {
        let _ = ConfusionMatrix::new(&[5], &[0], 3);
    }
}
