//! Exact t-SNE (van der Maaten & Hinton 2008) for small point sets.
//!
//! Fig. 7 of the paper visualizes data-node embeddings with t-SNE. The
//! sets involved are small (≤ a few hundred points), so the exact O(n²)
//! formulation is appropriate — per-point perplexity calibration by
//! binary search over the Gaussian bandwidth, then gradient descent with
//! momentum and early exaggeration on the KL divergence.

use gp_tensor::{rng as trng, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// t-SNE hyperparameters.
#[derive(Clone, Debug)]
pub struct TsneConfig {
    /// Target perplexity (effective neighbor count).
    pub perplexity: f32,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate (10 suits the small point sets of Fig. 7; scale up
    /// with n for larger embeddings).
    pub learning_rate: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// Early-exaggeration factor for the first quarter of iterations.
    pub exaggeration: f32,
    /// Output dimensionality (2 for plots).
    pub out_dim: usize,
    /// Init seed.
    pub seed: u64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        Self {
            perplexity: 15.0,
            iterations: 300,
            learning_rate: 10.0,
            momentum: 0.8,
            exaggeration: 4.0,
            out_dim: 2,
            seed: 0,
        }
    }
}

/// Symmetric high-dimensional affinities with per-point perplexity
/// calibration.
fn joint_probabilities(x: &Tensor, perplexity: f32) -> Vec<f32> {
    let n = x.rows();
    // Pairwise squared distances.
    let mut d2 = vec![0.0f32; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d: f32 = x
                .row(i)
                .iter()
                .zip(x.row(j))
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            d2[i * n + j] = d;
            d2[j * n + i] = d;
        }
    }
    let target_entropy = perplexity.max(2.0).ln();
    let mut p = vec![0.0f32; n * n];
    for i in 0..n {
        // Binary search beta = 1/(2σ²) to match the target entropy.
        let (mut lo, mut hi, mut beta) = (0.0f32, f32::INFINITY, 1.0f32);
        for _ in 0..50 {
            let mut sum = 0.0f32;
            let mut h = 0.0f32;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = (-beta * d2[i * n + j]).exp();
                sum += pij;
                h += beta * d2[i * n + j] * pij;
            }
            if sum <= 1e-12 {
                beta /= 2.0;
                continue;
            }
            let entropy = (h / sum) + sum.ln();
            if (entropy - target_entropy).abs() < 1e-4 {
                break;
            }
            if entropy > target_entropy {
                lo = beta;
                beta = if hi.is_finite() {
                    (beta + hi) / 2.0
                } else {
                    beta * 2.0
                };
            } else {
                hi = beta;
                beta = (beta + lo) / 2.0;
            }
        }
        let mut sum = 0.0f32;
        for j in 0..n {
            if i != j {
                p[i * n + j] = (-beta * d2[i * n + j]).exp();
                sum += p[i * n + j];
            }
        }
        if sum > 1e-12 {
            for j in 0..n {
                p[i * n + j] /= sum;
            }
        }
    }
    // Symmetrize and normalize: P = (P + Pᵀ) / 2n, floored for stability.
    let mut joint = vec![0.0f32; n * n];
    for i in 0..n {
        for j in 0..n {
            joint[i * n + j] = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f32)).max(1e-12);
        }
    }
    joint
}

/// Embed `x` (`n×d`) into `cfg.out_dim` dimensions. Returns an
/// `n×out_dim` tensor.
///
/// ```
/// use gp_eval::{tsne, TsneConfig};
/// use gp_tensor::Tensor;
///
/// let x = Tensor::from_vec(4, 3, vec![0.0; 12]);
/// let y = tsne(&x, &TsneConfig { iterations: 10, ..TsneConfig::default() });
/// assert_eq!(y.shape(), (4, 2));
/// ```
///
/// # Panics
/// Panics for fewer than 3 points.
pub fn tsne(x: &Tensor, cfg: &TsneConfig) -> Tensor {
    let n = x.rows();
    assert!(n >= 3, "t-SNE needs at least 3 points");
    let p = joint_probabilities(x, cfg.perplexity.min((n as f32 - 1.0) / 3.0));

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut y = trng::randn(&mut rng, n, cfg.out_dim, 1e-2);
    let mut velocity = Tensor::zeros(n, cfg.out_dim);
    let exaggerate_until = cfg.iterations / 4;

    let mut q = vec![0.0f32; n * n];
    for iter in 0..cfg.iterations {
        // Student-t affinities in the embedding.
        let mut qsum = 0.0f32;
        for i in 0..n {
            for j in (i + 1)..n {
                let d: f32 = y
                    .row(i)
                    .iter()
                    .zip(y.row(j))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum();
                let v = 1.0 / (1.0 + d);
                q[i * n + j] = v;
                q[j * n + i] = v;
                qsum += 2.0 * v;
            }
        }
        let qsum = qsum.max(1e-12);

        // KL gradient: 4 Σ_j (p_ij − q_ij) (y_i − y_j) / (1 + ‖y_i − y_j‖²).
        let exag = if iter < exaggerate_until {
            cfg.exaggeration
        } else {
            1.0
        };
        let mut grad = Tensor::zeros(n, cfg.out_dim);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let pij = exag * p[i * n + j];
                let qij = q[i * n + j] / qsum;
                let coeff = 4.0 * (pij - qij) * q[i * n + j];
                for d in 0..cfg.out_dim {
                    let g = grad.get(i, d) + coeff * (y.get(i, d) - y.get(j, d));
                    grad.set(i, d, g);
                }
            }
        }
        velocity = velocity
            .scale(cfg.momentum)
            .sub(&grad.scale(cfg.learning_rate));
        y = y.add(&velocity);
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::intra_inter_ratio;

    fn blobs(n_per: usize, sep: f32, seed: u64) -> (Tensor, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..n_per {
                for d in 0..5 {
                    let center = if d == c { sep } else { 0.0 };
                    data.push(center + 0.1 * trng::standard_normal(&mut rng));
                }
                labels.push(c);
            }
        }
        (Tensor::from_vec(3 * n_per, 5, data), labels)
    }

    #[test]
    fn output_shape_and_finiteness() {
        let (x, _) = blobs(8, 3.0, 0);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 100,
                ..TsneConfig::default()
            },
        );
        assert_eq!(y.shape(), (24, 2));
        assert!(y.all_finite());
    }

    #[test]
    fn preserves_blob_structure() {
        let (x, labels) = blobs(10, 5.0, 1);
        let y = tsne(
            &x,
            &TsneConfig {
                iterations: 250,
                ..TsneConfig::default()
            },
        );
        // The 2-D embedding must keep the classes separated.
        let ratio = intra_inter_ratio(&y, &labels);
        assert!(ratio < 0.6, "t-SNE lost cluster structure: ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, _) = blobs(5, 3.0, 2);
        let cfg = TsneConfig {
            iterations: 50,
            ..TsneConfig::default()
        };
        let a = tsne(&x, &cfg);
        let b = tsne(&x, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 3 points")]
    fn too_few_points_panics() {
        let x = Tensor::zeros(2, 2);
        let _ = tsne(&x, &TsneConfig::default());
    }
}
