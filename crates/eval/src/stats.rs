//! Accuracy statistics in the paper's `mean ± std` format.

use std::fmt;

/// Mean and sample standard deviation of a set of per-episode scores.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f32,
    /// Sample (n−1) standard deviation; 0 for fewer than two samples.
    pub std: f32,
    /// Number of samples.
    pub n: usize,
}

impl MeanStd {
    /// Aggregate a slice of scores.
    ///
    /// Accumulation runs in `f64` so many-episode runs don't lose digits
    /// to f32 rounding — summing thousands of near-equal f32 scores can
    /// otherwise report a spurious non-zero std for identical inputs.
    pub fn of(xs: &[f32]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = xs.iter().map(|&x| f64::from(x)).sum::<f64>() / n as f64;
        let std = if n > 1 {
            (xs.iter()
                .map(|&x| (f64::from(x) - mean).powi(2))
                .sum::<f64>()
                / (n - 1) as f64)
                .sqrt()
        } else {
            0.0
        };
        Self {
            mean: mean as f32,
            std: std as f32,
            n,
        }
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ±{:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_matches_hand_computation() {
        let s = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-6);
        // Sample std of that classic set is ≈ 2.138.
        assert!((s.std - 2.1381).abs() < 1e-3, "std {}", s.std);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(MeanStd::of(&[]).n, 0);
        let one = MeanStd::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.std, 0.0);
    }

    /// Regression for the f32-accumulation bug: 10 000 copies of the same
    /// value must give exactly that mean and *exactly* zero std — the old
    /// f32 sums drifted enough that `(x - mean)` was non-zero.
    #[test]
    fn identical_values_have_exactly_zero_std() {
        let xs = vec![0.8712345f32; 10_000];
        let s = MeanStd::of(&xs);
        assert_eq!(s.mean, 0.8712345);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.n, 10_000);
    }

    #[test]
    fn display_matches_paper_format() {
        let s = MeanStd {
            mean: 78.571,
            std: 15.21,
            n: 5,
        };
        assert_eq!(s.to_string(), "78.57 ±15.21");
    }
}
