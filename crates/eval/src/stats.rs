//! Accuracy statistics in the paper's `mean ± std` format.

use std::fmt;

/// Mean and sample standard deviation of a set of per-episode scores.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f32,
    /// Sample (n−1) standard deviation; 0 for fewer than two samples.
    pub std: f32,
    /// Number of samples.
    pub n: usize,
}

impl MeanStd {
    /// Aggregate a slice of scores.
    pub fn of(xs: &[f32]) -> Self {
        let n = xs.len();
        if n == 0 {
            return Self {
                mean: 0.0,
                std: 0.0,
                n: 0,
            };
        }
        let mean = xs.iter().sum::<f32>() / n as f32;
        let std = if n > 1 {
            (xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / (n - 1) as f32).sqrt()
        } else {
            0.0
        };
        Self { mean, std, n }
    }
}

impl fmt::Display for MeanStd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ±{:.2}", self.mean, self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn of_matches_hand_computation() {
        let s = MeanStd::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-6);
        // Sample std of that classic set is ≈ 2.138.
        assert!((s.std - 2.1381).abs() < 1e-3, "std {}", s.std);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(MeanStd::of(&[]).n, 0);
        let one = MeanStd::of(&[3.5]);
        assert_eq!(one.mean, 3.5);
        assert_eq!(one.std, 0.0);
    }

    #[test]
    fn display_matches_paper_format() {
        let s = MeanStd {
            mean: 78.571,
            std: 15.21,
            n: 5,
        };
        assert_eq!(s.to_string(), "78.57 ±15.21");
    }
}
