//! Minimal markdown table rendering for experiment reports.

use std::fmt::Write as _;

/// A markdown table under construction.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width != header width");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: row from display-able items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        let strings: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&strings)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render as github-flavored markdown with padded columns.
    pub fn to_markdown(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                widths[c] = widths[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(c, cell)| format!("{cell:<width$}", width = widths[c]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header));
        let sep: Vec<String> = (0..cols).map(|c| "-".repeat(widths[c])).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_markdown() {
        let mut t = Table::new("Demo", &["Method", "Acc"]);
        t.row(&["Prodigy".into(), "61.52".into()]);
        t.row(&["GraphPrompter".into(), "68.85".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| Method        | Acc   |"));
        assert!(md.contains("| GraphPrompter | 68.85 |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn wrong_width_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }
}
