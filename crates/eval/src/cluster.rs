//! Cluster-quality metrics over labelled embeddings.
//!
//! Fig. 7 of the paper argues visually (t-SNE) that GraphPrompter's data
//! node embeddings form *tighter* class clusters than Prodigy's. These
//! metrics quantify the same property so the experiment harness can
//! assert it numerically.

use gp_tensor::Tensor;

fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Mean silhouette coefficient over all points, in `[-1, 1]`; higher
/// means tighter, better-separated clusters. Points in singleton classes
/// contribute 0 (the scikit-learn convention).
///
/// # Panics
/// Panics if `labels.len() != embeddings.rows()` or fewer than 2 classes.
pub fn silhouette_score(embeddings: &Tensor, labels: &[usize]) -> f32 {
    let n = embeddings.rows();
    assert_eq!(labels.len(), n, "one label per embedding row");
    let num_classes = labels.iter().copied().max().map_or(0, |m| m + 1);
    assert!(
        labels
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
            >= 2,
        "silhouette needs at least 2 classes"
    );

    let mut total = 0.0f32;
    for i in 0..n {
        // Mean distance to every class.
        let mut sum = vec![0.0f32; num_classes];
        let mut cnt = vec![0usize; num_classes];
        for j in 0..n {
            if i == j {
                continue;
            }
            sum[labels[j]] += euclidean(embeddings.row(i), embeddings.row(j));
            cnt[labels[j]] += 1;
        }
        let own = labels[i];
        if cnt[own] == 0 {
            continue; // singleton class → 0 contribution
        }
        let a = sum[own] / cnt[own] as f32;
        let b = (0..num_classes)
            .filter(|&c| c != own && cnt[c] > 0)
            .map(|c| sum[c] / cnt[c] as f32)
            .fold(f32::INFINITY, f32::min);
        if b.is_finite() {
            total += (b - a) / a.max(b).max(1e-12);
        }
    }
    total / n as f32
}

/// Mean intra-class distance divided by mean inter-class distance.
/// Lower is tighter; 1.0 means class structure is invisible.
pub fn intra_inter_ratio(embeddings: &Tensor, labels: &[usize]) -> f32 {
    let n = embeddings.rows();
    assert_eq!(labels.len(), n, "one label per embedding row");
    let (mut intra, mut inter) = (0.0f32, 0.0f32);
    let (mut n_intra, mut n_inter) = (0usize, 0usize);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = euclidean(embeddings.row(i), embeddings.row(j));
            if labels[i] == labels[j] {
                intra += d;
                n_intra += 1;
            } else {
                inter += d;
                n_inter += 1;
            }
        }
    }
    if n_intra == 0 || n_inter == 0 {
        return 1.0;
    }
    (intra / n_intra as f32) / (inter / n_inter as f32).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs(sep: f32) -> (Tensor, Vec<usize>) {
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..2 {
            for k in 0..5 {
                data.push(c as f32 * sep + 0.01 * k as f32);
                data.push(0.02 * k as f32);
                labels.push(c);
            }
        }
        (Tensor::from_vec(10, 2, data), labels)
    }

    #[test]
    fn well_separated_blobs_score_high() {
        let (e, l) = two_blobs(10.0);
        assert!(silhouette_score(&e, &l) > 0.9);
        assert!(intra_inter_ratio(&e, &l) < 0.05);
    }

    #[test]
    fn overlapping_blobs_score_low() {
        let (e, l) = two_blobs(0.01);
        assert!(silhouette_score(&e, &l) < 0.5);
        assert!(intra_inter_ratio(&e, &l) > 0.4);
    }

    #[test]
    fn tighter_clusters_rank_better_on_both_metrics() {
        let (tight, l) = two_blobs(5.0);
        let (loose, _) = two_blobs(1.0);
        assert!(silhouette_score(&tight, &l) > silhouette_score(&loose, &l));
        assert!(intra_inter_ratio(&tight, &l) < intra_inter_ratio(&loose, &l));
    }

    #[test]
    #[should_panic(expected = "at least 2 classes")]
    fn single_class_panics() {
        let e = Tensor::zeros(3, 2);
        let _ = silhouette_score(&e, &[0, 0, 0]);
    }
}
