//! Property tests for the core components: cache policies, the prompt
//! selector, the augmenter's invariants, and the cross-episode
//! embedding store's transparency guarantees.

use gp_core::{
    select_prompts, AnyCache, CachePolicy, Engine, InferenceConfig, LfuCache, ModelConfig,
    PretrainConfig, PromptAugmenter,
};
use gp_datasets::CitationConfig;
use gp_graph::SamplerConfig;
use gp_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Operations for cache-model testing.
#[derive(Clone, Debug)]
enum CacheOp {
    Insert(u8),
    Touch(u8),
}

fn ops_strategy() -> impl Strategy<Value = Vec<CacheOp>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..32).prop_map(CacheOp::Insert),
            (0u8..32).prop_map(CacheOp::Touch),
        ],
        1..200,
    )
}

/// Operations for the LFU-vs-reference agreement test ([`LfuCache`] also
/// exposes explicit eviction, unlike [`AnyCache`]).
#[derive(Clone, Debug)]
enum LfuOp {
    Insert(u8),
    Touch(u8),
    Evict,
}

fn lfu_ops_strategy() -> impl Strategy<Value = Vec<LfuOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (0u8..16).prop_map(LfuOp::Insert),
            4 => (0u8..16).prop_map(LfuOp::Touch),
            1 => Just(LfuOp::Evict),
        ],
        1..400,
    )
}

/// Naive O(n²) LFU reference model: the victim is the minimum by
/// `(frequency, time of promotion into its current frequency)`, which is
/// exactly the FIFO-within-bucket rule the real cache implements.
struct NaiveLfu {
    cap: usize,
    /// `(key, value, freq, promoted_at)`.
    entries: Vec<(u8, u32, u64, u64)>,
    clock: u64,
}

impl NaiveLfu {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            entries: Vec::new(),
            clock: 0,
        }
    }

    fn touch(&mut self, key: u8) -> bool {
        self.clock += 1;
        for e in &mut self.entries {
            if e.0 == key {
                e.2 += 1;
                e.3 = self.clock;
                return true;
            }
        }
        false
    }

    fn insert(&mut self, key: u8, value: u32) -> Option<u8> {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
            e.1 = value;
            self.touch(key);
            return None;
        }
        let evicted = if self.entries.len() >= self.cap {
            self.evict()
        } else {
            None
        };
        self.clock += 1;
        self.entries.push((key, value, 1, self.clock));
        evicted
    }

    fn evict(&mut self) -> Option<u8> {
        let pos = self
            .entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.2, e.3))
            .map(|(i, _)| i)?;
        Some(self.entries.remove(pos).0)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn caches_never_exceed_capacity(ops in ops_strategy(), cap in 1usize..8) {
        for policy in [CachePolicy::Lfu, CachePolicy::Lru, CachePolicy::Fifo] {
            let mut cache: AnyCache<u8, u32> = AnyCache::new(policy, cap);
            for (i, op) in ops.iter().enumerate() {
                match op {
                    CacheOp::Insert(k) => {
                        cache.insert(*k, i as u32);
                    }
                    CacheOp::Touch(k) => {
                        cache.touch(k);
                    }
                }
                prop_assert!(cache.len() <= cap, "{policy:?} overflowed");
            }
        }
    }

    /// The intrusive-list LFU agrees with the naive reference on every
    /// evicted key and on the final contents, and its internal bucket
    /// membership stays exactly `len()` — the invariant the lazy-removal
    /// design violated.
    #[test]
    fn lfu_agrees_with_naive_reference(ops in lfu_ops_strategy(), cap in 1usize..7) {
        let mut real: LfuCache<u8, u32> = LfuCache::new(cap);
        let mut naive = NaiveLfu::new(cap);
        for (i, op) in ops.iter().enumerate() {
            match *op {
                LfuOp::Insert(k) => {
                    let got = real.insert(k, i as u32).map(|(k, _)| k);
                    let want = naive.insert(k, i as u32);
                    prop_assert_eq!(got, want, "step {}: eviction disagreed", i);
                }
                LfuOp::Touch(k) => {
                    prop_assert_eq!(real.touch(&k), naive.touch(k), "step {}", i);
                }
                LfuOp::Evict => {
                    let got = real.evict().map(|(k, _)| k);
                    let want = naive.evict();
                    prop_assert_eq!(got, want, "step {}: evict() disagreed", i);
                }
            }
            prop_assert_eq!(real.len(), naive.entries.len());
            prop_assert_eq!(real.bucket_members(), real.len(), "stale bucket members");
        }
        let mut got: Vec<(u8, u32, u64)> = real.iter().map(|(k, v, f)| (*k, *v, f)).collect();
        got.sort_unstable();
        let mut want: Vec<(u8, u32, u64)> =
            naive.entries.iter().map(|e| (e.0, e.1, e.2)).collect();
        want.sort_unstable();
        prop_assert_eq!(got, want, "final contents disagreed");
    }

    #[test]
    fn lfu_eviction_order_is_by_frequency(freqs in proptest::collection::vec(0u8..6, 2..8)) {
        let mut cache: LfuCache<usize, ()> = LfuCache::new(freqs.len());
        for (k, &f) in freqs.iter().enumerate() {
            cache.insert(k, ());
            for _ in 0..f {
                cache.touch(&k);
            }
        }
        // Draining evictions must come out in non-decreasing frequency.
        let mut last = -1i32;
        while let Some((k, ())) = cache.evict() {
            let f = freqs[k] as i32;
            prop_assert!(f >= last, "evicted freq {f} after {last}");
            last = f;
        }
    }

    #[test]
    fn selector_output_is_class_balanced_subset(
        n_per_class in 1usize..6,
        classes in 2usize..5,
        shots in 1usize..4,
        seed in any::<u64>(),
        use_knn in any::<bool>(),
        use_sel in any::<bool>(),
    ) {
        let p = n_per_class * classes;
        let mut rng = StdRng::seed_from_u64(seed);
        let embs = gp_tensor::rng::randn(&mut rng, p, 8, 1.0);
        let queries = gp_tensor::rng::randn(&mut rng, 3, 8, 1.0);
        let labels: Vec<usize> = (0..p).map(|i| i % classes).collect();
        let imps = vec![0.5; p];
        let out = select_prompts(
            &embs, &imps, &labels, &queries, &[0.5; 3], classes, shots, use_knn, use_sel, &mut rng,
        );
        // Selected indices are unique and in range.
        let mut sorted = out.selected.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), out.selected.len(), "duplicate selections");
        prop_assert!(out.selected.iter().all(|&i| i < p));
        // Exactly min(shots, n_per_class) per class.
        for c in 0..classes {
            let got = out.selected.iter().filter(|&&i| labels[i] == c).count();
            prop_assert_eq!(got, shots.min(n_per_class), "class {} got {}", c, got);
        }
    }

    #[test]
    fn augmenter_respects_per_class_capacity(
        batches in proptest::collection::vec(
            proptest::collection::vec((0usize..4, 0.0f32..1.0), 1..6),
            1..8,
        ),
        cache_size in 1usize..4,
    ) {
        let mut aug = PromptAugmenter::new(cache_size, 4).with_min_confidence(0.2);
        for batch in &batches {
            let n = batch.len();
            let embs = Tensor::full(n, 4, 1.0);
            let preds: Vec<usize> = batch.iter().map(|(c, _)| *c).collect();
            let confs: Vec<f32> = batch.iter().map(|(_, f)| *f).collect();
            aug.observe(&embs, &preds, &confs);
            prop_assert!(aug.len() <= 4 * cache_size);
        }
        if let Some((embs, labels)) = aug.cached_prompts(4) {
            prop_assert_eq!(embs.rows(), labels.len());
            prop_assert!(labels.iter().all(|&l| l < 4));
        }
    }
}

/// A small engine over a generated citation graph, embedding cache on.
fn tiny_engine(data_seed: u64) -> (Engine, gp_datasets::Dataset) {
    let ds = CitationConfig::new("prop", 240, 5, 31 + data_seed).generate();
    let sampler = SamplerConfig {
        hops: 1,
        max_nodes: 10,
        neighbors_per_node: 5,
    };
    let engine = Engine::builder()
        .model_config(
            ModelConfig::builder()
                .embed_dim(16)
                .hidden_dim(24)
                .try_build()
                .expect("valid model config"),
        )
        .pretrain_config(
            PretrainConfig::builder()
                .steps(6)
                .ways(3)
                .shots(2)
                .queries(3)
                .nm_ways(3)
                .nm_shots(2)
                .nm_queries(3)
                .log_every(100)
                .sampler(sampler)
                .try_build()
                .expect("valid pretrain config"),
        )
        .inference_config(
            InferenceConfig::builder()
                .shots(2)
                .candidates_per_class(4)
                .cache_size(2)
                .query_batch(5)
                .sampler(sampler)
                .try_build()
                .expect("valid inference config"),
        )
        .try_build()
        .expect("valid engine");
    (engine, ds)
}

proptest! {
    // Each case pre-trains a model, so keep the case count low.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The embedding store is a pure memo: reusing cached candidate
    /// embeddings never changes predictions, and entries computed under
    /// old weights are never served after the weights move.
    #[test]
    fn embedding_reuse_is_invisible_and_weight_changes_invalidate(
        data_seed in 0u64..64,
        task_seed in any::<u64>(),
        ways in 2usize..4,
    ) {
        use gp_datasets::sample_few_shot_task;

        let (mut engine, ds) = tiny_engine(data_seed);
        let mut rng = StdRng::seed_from_u64(task_seed);
        let candidates = engine.inference_config().candidates_per_class;
        let task = sample_few_shot_task(&ds, ways, candidates, 6, &mut rng);
        let bits = |t: &Tensor| t.as_slice().iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        // Cold vs warm: the second run answers from the store.
        let cold = engine.run_episode(&ds, &task);
        let warm = engine.run_episode(&ds, &task);
        prop_assert_eq!(&cold.predictions, &warm.predictions);
        prop_assert_eq!(bits(&cold.query_embeddings), bits(&warm.query_embeddings));
        let stats = engine.embed_cache_stats().expect("cache on by default");
        prop_assert!(stats.hits > 0, "warm run must hit the store");

        // Move the weights (bumps the ParamStore revision), then compare a
        // store-carrying run against an explicitly cleared one: identical
        // output means no stale embedding survived the weight change.
        engine.pretrain(&ds);
        let stale = engine.run_episode(&ds, &task);
        engine.clear_embed_cache();
        let fresh = engine.run_episode(&ds, &task);
        prop_assert_eq!(&stale.predictions, &fresh.predictions);
        prop_assert_eq!(bits(&stale.query_embeddings), bits(&fresh.query_embeddings));
    }
}
