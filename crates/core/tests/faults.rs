//! Fault-injection harness for the GPCK v2 checkpoint subsystem.
//!
//! Simulates the ways checkpoints die in the wild — truncated writes,
//! bit rot at arbitrary offsets, processes killed mid-run, stale temp
//! files — and asserts that (a) corruption is always detected as a typed
//! [`CheckpointError`], never a panic or a silently-wrong model, and
//! (b) a killed-and-resumed pre-training run reproduces the uninterrupted
//! run bit for bit.

use std::path::PathBuf;

use gp_core::checkpoint::{
    checkpoint_file_name, list_checkpoints, load_trainer_checkpoint, read_container, save_model,
    save_trainer_checkpoint, save_trainer_checkpoint_faulty, scan_for_recovery, TrainerMeta,
    WriteFault,
};
use gp_core::{
    pretrain_resumable, CheckpointConfig, GraphPrompterModel, ModelConfig, PretrainConfig,
    StageConfig, TrainingCurve,
};
use gp_datasets::CitationConfig;
use gp_graph::SamplerConfig;
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gp_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn tiny_model_cfg(embed: usize, hidden: usize, seed: u64) -> ModelConfig {
    ModelConfig {
        embed_dim: embed,
        hidden_dim: hidden,
        seed,
        ..ModelConfig::default()
    }
}

fn tiny_pretrain_cfg(steps: usize) -> PretrainConfig {
    PretrainConfig {
        steps,
        ways: 3,
        shots: 2,
        queries: 3,
        nm_ways: 3,
        nm_shots: 2,
        nm_queries: 3,
        log_every: 5,
        sampler: SamplerConfig {
            hops: 1,
            max_nodes: 10,
            neighbors_per_node: 5,
        },
        ..PretrainConfig::default()
    }
}

fn curve_bits(c: &TrainingCurve) -> (Vec<usize>, Vec<u32>, Vec<u32>) {
    (
        c.steps.clone(),
        c.loss.iter().map(|l| l.to_bits()).collect(),
        c.accuracy.iter().map(|a| a.to_bits()).collect(),
    )
}

fn param_bits(m: &GraphPrompterModel) -> Vec<Vec<u32>> {
    m.store
        .iter()
        .map(|(_, t)| t.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Property tests: roundtrip fidelity and corruption detection.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any model configuration must roundtrip through a GPCK v2 container
    /// with bit-identical parameters.
    #[test]
    fn gpck_roundtrip_any_config(
        embed in 4usize..12,
        hidden in 4usize..16,
        gen in 0u8..3,
        seed in any::<u64>(),
        recon_normalize in any::<bool>(),
        proto_residual in any::<bool>(),
    ) {
        let generator = match gen {
            0 => gp_core::GeneratorKind::Sage,
            1 => gp_core::GeneratorKind::Gat,
            _ => gp_core::GeneratorKind::Gcn,
        };
        let cfg = ModelConfig {
            generator,
            recon_normalize,
            proto_residual,
            ..tiny_model_cfg(embed, hidden, seed)
        };
        let model = GraphPrompterModel::new(cfg.clone());
        let dir = tmpdir("rt");
        let path = dir.join("m.gpck");
        save_model(&path, &model).unwrap();
        let loaded = GraphPrompterModel::load(&path).unwrap();
        prop_assert_eq!(loaded.config(), &cfg);
        prop_assert_eq!(param_bits(&loaded), param_bits(&model));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corrupting any single byte anywhere in the file — header or payload
    /// — must yield a typed load error: no panic, no silently-wrong model.
    #[test]
    fn any_single_byte_corruption_is_detected(
        seed in any::<u64>(),
        offset_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let model = GraphPrompterModel::new(tiny_model_cfg(6, 8, seed));
        let dir = tmpdir("flip");
        let path = dir.join("m.gpck");
        save_model(&path, &model).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let i = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[i] ^= mask;
        std::fs::write(&path, &bytes).unwrap();
        let res = GraphPrompterModel::load(&path);
        prop_assert!(res.is_err(), "flip of byte {} (mask {:#04x}) went undetected", i, mask);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A file cut off at any point must load as a typed error, never hang
    /// or panic — the torn-write scenario atomic renames protect against,
    /// still exercised in case a checkpoint is copied around by hand.
    #[test]
    fn any_truncation_is_detected(seed in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let model = GraphPrompterModel::new(tiny_model_cfg(6, 8, seed));
        let dir = tmpdir("cut");
        let path = dir.join(checkpoint_file_name(10));
        let meta = TrainerMeta {
            step: 10,
            best_params: model.store.snapshot(),
            ..TrainerMeta::default()
        };
        save_trainer_checkpoint(&path, &model, &meta).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(load_trainer_checkpoint(&path).is_err(), "cut at {} undetected", cut);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Kill/resume integration tests.
// ---------------------------------------------------------------------------

/// The tentpole guarantee: a run killed at a checkpoint boundary and
/// resumed reproduces the uninterrupted run bit for bit — same curve,
/// same best snapshot, same final parameters.
#[test]
fn resumed_run_is_bit_identical_to_uninterrupted() {
    let ds = CitationConfig::new("t", 300, 5, 31).generate();
    let mk = || GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));

    // Uninterrupted reference run: 40 steps, checkpoint+validate every 10.
    let dir_a = tmpdir("resume_a");
    let mut model_a = mk();
    let ckpt_a = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir_a)
    };
    let report_a = pretrain_resumable(
        &mut model_a,
        &ds,
        &tiny_pretrain_cfg(40),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_a),
    )
    .unwrap();

    // "Killed" run: the same configuration stopped after 20 steps — the
    // checkpoint at step 20 is written before the end-of-run best-snapshot
    // restore, so it is exactly the mid-run trainer state.
    let dir_b = tmpdir("resume_b");
    let mut model_b = mk();
    let ckpt_b = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir_b)
    };
    pretrain_resumable(
        &mut model_b,
        &ds,
        &tiny_pretrain_cfg(20),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_b),
    )
    .unwrap();

    // Resume with the full step budget from the step-20 checkpoint.
    let mut model_r = mk();
    let ckpt_r = CheckpointConfig {
        every: 10,
        keep_last: 0,
        resume: true,
        ..CheckpointConfig::new(&dir_b)
    };
    let report_r = pretrain_resumable(
        &mut model_r,
        &ds,
        &tiny_pretrain_cfg(40),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_r),
    )
    .unwrap();

    assert_eq!(report_r.resumed_from, Some(20));
    assert_eq!(curve_bits(&report_r.curve), curve_bits(&report_a.curve));
    assert_eq!(report_r.best_acc.to_bits(), report_a.best_acc.to_bits());
    assert_eq!(report_r.best_step, report_a.best_step);
    assert_eq!(param_bits(&model_r), param_bits(&model_a));

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Recovery must skip a corrupted newest checkpoint and resume from the
/// previous valid one, reporting what it skipped.
#[test]
fn resume_skips_corrupt_newest_checkpoint() {
    let ds = CitationConfig::new("t", 300, 5, 32).generate();
    let dir = tmpdir("skipcorrupt");
    let mut model = GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));
    let ckpt = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir)
    };
    pretrain_resumable(
        &mut model,
        &ds,
        &tiny_pretrain_cfg(20),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt),
    )
    .unwrap();

    // Flip a payload byte in the newest checkpoint (step 20).
    let newest = dir.join(checkpoint_file_name(20));
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let mut resumed = GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));
    let ckpt_r = CheckpointConfig {
        resume: true,
        ..ckpt
    };
    let report = pretrain_resumable(
        &mut resumed,
        &ds,
        &tiny_pretrain_cfg(20),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_r),
    )
    .unwrap();
    assert_eq!(
        report.resumed_from,
        Some(10),
        "must fall back to the step-10 checkpoint"
    );
    assert_eq!(report.skipped_checkpoints.len(), 1);
    assert!(
        report.skipped_checkpoints[0].1.contains("checksum"),
        "{:?}",
        report.skipped_checkpoints
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Debris a killed process can leave behind — stale temp files from
/// interrupted atomic writes, an empty final-name file, junk — must not
/// confuse directory listing or recovery.
#[test]
fn recovery_ignores_kill_debris() {
    let dir = tmpdir("debris");
    let model = GraphPrompterModel::new(tiny_model_cfg(8, 12, 9));
    let meta = TrainerMeta {
        step: 10,
        best_params: model.store.snapshot(),
        ..TrainerMeta::default()
    };
    save_trainer_checkpoint(&dir.join(checkpoint_file_name(10)), &model, &meta).unwrap();

    // A torn temp file (interrupted before rename) and assorted junk.
    std::fs::write(
        dir.join(format!("{}.tmp.12345", checkpoint_file_name(20))),
        b"torn",
    )
    .unwrap();
    std::fs::write(dir.join("notes.txt"), b"hello").unwrap();
    // A zero-byte file under a checkpoint name (e.g. `touch`ed by hand).
    std::fs::write(dir.join(checkpoint_file_name(30)), b"").unwrap();

    let listed: Vec<usize> = list_checkpoints(&dir).into_iter().map(|(s, _)| s).collect();
    assert_eq!(listed, vec![10, 30], "temp/junk files must not be listed");

    let scan = scan_for_recovery(&dir);
    let (step, _, _, recovered_meta) = scan.recovered.expect("valid checkpoint must recover");
    assert_eq!(step, 10);
    assert_eq!(recovered_meta.step, 10);
    assert_eq!(
        scan.skipped.len(),
        1,
        "only the empty ckpt-30 file is skipped"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected crashes inside the atomic writer itself — mid-`write` before
/// any fsync, and between fsync and rename — must leave the newest valid
/// checkpoint recoverable and must never surface a partial file under a
/// final checkpoint name.
#[test]
fn injected_writer_crash_never_loses_newest_valid_checkpoint() {
    let dir = tmpdir("faultywrite");
    let model = GraphPrompterModel::new(tiny_model_cfg(8, 12, 9));
    let meta_at = |step: usize| TrainerMeta {
        step,
        best_params: model.store.snapshot(),
        ..TrainerMeta::default()
    };
    save_trainer_checkpoint(&dir.join(checkpoint_file_name(10)), &model, &meta_at(10)).unwrap();

    for fault in [WriteFault::TornWrite, WriteFault::BeforeRename] {
        let newer = dir.join(checkpoint_file_name(20));
        let err = save_trainer_checkpoint_faulty(&newer, &model, &meta_at(20), fault)
            .expect_err("an injected crash must report failure");
        assert!(err.to_string().contains("injected fault"), "{err}");

        // The final name must not exist at all: the crash happened before
        // the rename, so there is nothing — partial or whole — to load.
        assert!(
            !newer.exists(),
            "{fault:?} must never materialize the final checkpoint name"
        );
        let listed: Vec<usize> = list_checkpoints(&dir).into_iter().map(|(s, _)| s).collect();
        assert_eq!(listed, vec![10], "{fault:?} residue must not be listed");

        let scan = scan_for_recovery(&dir);
        let (step, _, _, meta) = scan.recovered.expect("step 10 must survive the crash");
        assert_eq!((step, meta.step), (10, 10), "{fault:?} lost the newest valid checkpoint");
        assert!(scan.skipped.is_empty(), "{fault:?} residue reached recovery");
    }

    // The post-fsync orphan temp file is a *complete* container (that is
    // what "synced before rename" means) — recovery just never looks at
    // temp names, so it cannot be half-adopted.
    let orphan = dir.join(format!(
        "{}.tmp.{}",
        checkpoint_file_name(20),
        std::process::id()
    ));
    assert!(orphan.exists(), "BeforeRename must leave its temp file");
    read_container(&orphan).expect("the synced orphan is internally complete");

    // A later healthy write at the same step goes through cleanly and
    // becomes the recovery target.
    save_trainer_checkpoint(&dir.join(checkpoint_file_name(20)), &model, &meta_at(20)).unwrap();
    let scan = scan_for_recovery(&dir);
    assert_eq!(scan.recovered.expect("recovers").0, 20);
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming against a model built with a different architecture must be a
/// typed error, not a silent shape-corrupted merge.
#[test]
fn resume_rejects_mismatched_model_config() {
    let ds = CitationConfig::new("t", 300, 5, 33).generate();
    let dir = tmpdir("mismatch");
    let mut model = GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));
    let ckpt = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir)
    };
    pretrain_resumable(
        &mut model,
        &ds,
        &tiny_pretrain_cfg(10),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt),
    )
    .unwrap();

    // Different embed width: the checkpoint must be refused.
    let mut other = GraphPrompterModel::new(tiny_model_cfg(8, 24, 0));
    let ckpt_r = CheckpointConfig {
        resume: true,
        ..ckpt
    };
    let err = pretrain_resumable(
        &mut other,
        &ds,
        &tiny_pretrain_cfg(10),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_r),
    )
    .unwrap_err();
    assert!(err.to_string().contains("configuration"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

// ---------------------------------------------------------------------------
// GPES embedding-shard faults: the persistent embedding tier must treat
// ANY damaged shard as a cold miss — never serve wrong data, never panic
// — and its lossy encodings must stay inside their documented error
// envelopes for arbitrary rows.
// ---------------------------------------------------------------------------

use gp_core::{DiskTierConfig, EmbeddingStore, Quantization};
use gp_datasets::DataPoint;

const GPES_REVISION: u64 = 7;
const GPES_FP: u64 = 0xfeed_beef;
const GPES_DATASET: u64 = 42;

fn gpes_sampler() -> SamplerConfig {
    SamplerConfig {
        hops: 2,
        max_nodes: 16,
        neighbors_per_node: 4,
    }
}

/// A store over `dir` with `rows` embeddings persisted to one shard.
fn populated_gpes_store(dir: &PathBuf, rows: usize) -> EmbeddingStore {
    let store = EmbeddingStore::with_disk_tier(64, DiskTierConfig::new(dir.clone()));
    store.set_weights_context(GPES_REVISION, GPES_FP);
    for i in 0..rows {
        store.insert(
            GPES_REVISION,
            GPES_DATASET,
            DataPoint::Node(i as u32),
            9,
            &gpes_sampler(),
            true,
            vec![i as f32 + 0.25, -(i as f32), 1.5],
            0.5,
        );
    }
    assert_eq!(store.flush(), rows);
    store
}

fn gpes_files(dir: &PathBuf) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "gpes"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flip one arbitrary byte anywhere in a shard — header, payload or
    /// CRC — and a fresh store over the directory must answer every key
    /// as a cold miss with exactly one corrupt shard counted; the bad
    /// file is reclaimed so the next flush starts clean.
    #[test]
    fn any_single_byte_shard_corruption_is_a_cold_miss(
        offset_sel in 0usize..1 << 16,
        flip in 1u8..=255u8,
    ) {
        let dir = tmpdir("gpes_corrupt");
        drop(populated_gpes_store(&dir, 5));
        let files = gpes_files(&dir);
        prop_assert_eq!(files.len(), 1);
        let mut bytes = std::fs::read(&files[0]).unwrap();
        let off = offset_sel % bytes.len();
        bytes[off] ^= flip;
        std::fs::write(&files[0], &bytes).unwrap();

        let fresh = EmbeddingStore::with_disk_tier(64, DiskTierConfig::new(dir.clone()));
        fresh.set_weights_context(GPES_REVISION, GPES_FP);
        for i in 0..5u32 {
            let hit = fresh.lookup(
                GPES_REVISION,
                GPES_DATASET,
                DataPoint::Node(i),
                9,
                &gpes_sampler(),
                true,
            );
            prop_assert!(hit.is_none(), "corrupt shard served row {i}");
        }
        prop_assert_eq!(fresh.stats().corrupt_shards, 1);
        prop_assert!(gpes_files(&dir).is_empty(), "bad shard must be reclaimed");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating a shard at any length is detected the same way.
    #[test]
    fn any_shard_truncation_is_a_cold_miss(cut_sel in 0usize..1 << 16) {
        let dir = tmpdir("gpes_truncate");
        drop(populated_gpes_store(&dir, 4));
        let files = gpes_files(&dir);
        prop_assert_eq!(files.len(), 1);
        let bytes = std::fs::read(&files[0]).unwrap();
        let cut = cut_sel % bytes.len(); // strictly shorter than the file
        std::fs::write(&files[0], &bytes[..cut]).unwrap();

        let fresh = EmbeddingStore::with_disk_tier(64, DiskTierConfig::new(dir.clone()));
        fresh.set_weights_context(GPES_REVISION, GPES_FP);
        let hit = fresh.lookup(
            GPES_REVISION,
            GPES_DATASET,
            DataPoint::Node(0),
            9,
            &gpes_sampler(),
            true,
        );
        prop_assert!(hit.is_none(), "truncated shard served data");
        prop_assert_eq!(fresh.stats().corrupt_shards, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A crash inside the flush (torn temp file, or killed between fsync
    /// and rename) must leave the previously-flushed shard intact — the
    /// reader sees old-or-nothing, never a blend.
    #[test]
    fn kill_mid_flush_leaves_old_or_nothing(
        torn_sel in 0u8..2,
        extra_rows in 1usize..6,
    ) {
        let dir = tmpdir("gpes_kill");
        let store = populated_gpes_store(&dir, 3);
        for i in 0..extra_rows {
            store.insert(
                GPES_REVISION,
                GPES_DATASET,
                DataPoint::Node(100 + i as u32),
                9,
                &gpes_sampler(),
                true,
                vec![7.0, 8.0, 9.0],
                0.5,
            );
        }
        let fault = if torn_sel == 0 {
            WriteFault::TornWrite
        } else {
            WriteFault::BeforeRename
        };
        store.flush_with_fault(fault);
        drop(store);

        let fresh = EmbeddingStore::with_disk_tier(64, DiskTierConfig::new(dir.clone()));
        fresh.set_weights_context(GPES_REVISION, GPES_FP);
        let hit = fresh.lookup(
            GPES_REVISION,
            GPES_DATASET,
            DataPoint::Node(0),
            9,
            &gpes_sampler(),
            true,
        );
        prop_assert!(hit.is_some(), "pre-crash shard must survive a failed flush");
        prop_assert_eq!(hit.unwrap().0, vec![0.25f32, 0.0, 1.5]);
        prop_assert_eq!(fresh.stats().corrupt_shards, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Lossy encodings honor their envelopes on arbitrary rows: f16 is
    /// within 1/2048 relative per element, i8 within half a quantization
    /// step of the row's max absolute value. f32 roundtrips bit-exactly.
    #[test]
    fn quantized_shard_roundtrip_error_is_bounded(
        vals in proptest::collection::vec(-100.0f32..100.0, 1..48),
    ) {
        for quant in [Quantization::F32, Quantization::F16, Quantization::I8] {
            let dir = tmpdir("gpes_quant");
            let store = EmbeddingStore::with_disk_tier(
                64,
                DiskTierConfig::new(dir.clone()).quantization(quant),
            );
            store.set_weights_context(GPES_REVISION, GPES_FP);
            store.insert(
                GPES_REVISION,
                GPES_DATASET,
                DataPoint::Node(1),
                9,
                &gpes_sampler(),
                true,
                vals.clone(),
                0.5,
            );
            store.flush();
            drop(store);

            let fresh = EmbeddingStore::with_disk_tier(
                64,
                DiskTierConfig::new(dir.clone()).quantization(quant),
            );
            fresh.set_weights_context(GPES_REVISION, GPES_FP);
            let (row, _) = fresh
                .lookup(GPES_REVISION, GPES_DATASET, DataPoint::Node(1), 9, &gpes_sampler(), true)
                .expect("persisted row must be readable");
            let max_abs = vals.iter().fold(0f32, |m, &x| m.max(x.abs()));
            for (a, b) in vals.iter().zip(&row) {
                match quant {
                    Quantization::F32 => prop_assert_eq!(a.to_bits(), b.to_bits()),
                    Quantization::F16 => prop_assert!(
                        (a - b).abs() <= a.abs() / 2048.0 + 1e-6,
                        "f16 err {} at {a}", (a - b).abs()
                    ),
                    Quantization::I8 => prop_assert!(
                        (a - b).abs() <= max_abs / 127.0 * 0.5 + max_abs * 1e-6 + 1e-6,
                        "i8 err {} at {a}", (a - b).abs()
                    ),
                }
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Tiering is an implementation detail: under ANY interleaving of
    /// inserts, lookups, flushes and revision bumps, a tiny-L0 + disk-L1
    /// store answers bit-identically to one unbounded in-memory store —
    /// and a revision bump empties BOTH tiers at once.
    #[test]
    fn tiered_store_matches_unbounded_reference_under_any_interleaving(
        ops in proptest::collection::vec((0u8..8, 0u8..20), 1..160),
    ) {
        let dir = tmpdir("gpes_tiers");
        // L0 of 3 forces constant demote/promote churn; the reference
        // never evicts, so every divergence is the tier's fault.
        let tiered = EmbeddingStore::with_disk_tier(3, DiskTierConfig::new(dir.clone()));
        let reference = EmbeddingStore::new(4096);
        let mut rev = GPES_REVISION;
        let fp = |rev: u64| rev ^ GPES_FP;
        tiered.set_weights_context(rev, fp(rev));
        // Row content depends on (key, revision): stale data is visible.
        let row = |k: u8, rev: u64| vec![f32::from(k) * 1.25 + rev as f32, -f32::from(k)];
        let mut live = [false; 20];

        for &(sel, k) in &ops {
            let point = DataPoint::Node(u32::from(k));
            match sel {
                // Insert (idempotent per (key, revision), so re-inserts
                // cannot mask overwrite-order differences).
                0..=2 => {
                    for store in [&tiered, &reference] {
                        store.insert(
                            rev, GPES_DATASET, point, 9, &gpes_sampler(), true,
                            row(k, rev), 0.5,
                        );
                    }
                    live[usize::from(k)] = true;
                }
                // Lookup: both stores must agree bit-for-bit, and the
                // tiered store must be lossless for this revision.
                3..=5 => {
                    let t = tiered.lookup(rev, GPES_DATASET, point, 9, &gpes_sampler(), true);
                    let r = reference.lookup(rev, GPES_DATASET, point, 9, &gpes_sampler(), true);
                    prop_assert_eq!(&t, &r, "tiers diverged on key {}", k);
                    if live[usize::from(k)] {
                        let (emb, _) = t.expect("live key must hit");
                        prop_assert_eq!(emb, row(k, rev));
                    } else {
                        prop_assert!(t.is_none(), "key {} never inserted this revision", k);
                    }
                }
                // Flush mid-stream: persistence must not change answers.
                6 => {
                    tiered.flush();
                }
                // Weights moved: every prior entry — RAM or disk — dies.
                _ => {
                    rev += 1;
                    tiered.set_weights_context(rev, fp(rev));
                    live = [false; 20];
                }
            }
        }
        // Final sweep: full pointwise agreement, including keys the op
        // stream never touched after the last bump.
        for k in 0..20u8 {
            let point = DataPoint::Node(u32::from(k));
            let t = tiered.lookup(rev, GPES_DATASET, point, 9, &gpes_sampler(), true);
            let r = reference.lookup(rev, GPES_DATASET, point, 9, &gpes_sampler(), true);
            prop_assert_eq!(t, r, "final sweep diverged on key {}", k);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
