//! Fault-injection harness for the GPCK v2 checkpoint subsystem.
//!
//! Simulates the ways checkpoints die in the wild — truncated writes,
//! bit rot at arbitrary offsets, processes killed mid-run, stale temp
//! files — and asserts that (a) corruption is always detected as a typed
//! [`CheckpointError`], never a panic or a silently-wrong model, and
//! (b) a killed-and-resumed pre-training run reproduces the uninterrupted
//! run bit for bit.

use std::path::PathBuf;

use gp_core::checkpoint::{
    checkpoint_file_name, list_checkpoints, load_trainer_checkpoint, read_container, save_model,
    save_trainer_checkpoint, save_trainer_checkpoint_faulty, scan_for_recovery, TrainerMeta,
    WriteFault,
};
use gp_core::{
    pretrain_resumable, CheckpointConfig, GraphPrompterModel, ModelConfig, PretrainConfig,
    StageConfig, TrainingCurve,
};
use gp_datasets::CitationConfig;
use gp_graph::SamplerConfig;
use proptest::prelude::*;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("gp_faults_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn tiny_model_cfg(embed: usize, hidden: usize, seed: u64) -> ModelConfig {
    ModelConfig {
        embed_dim: embed,
        hidden_dim: hidden,
        seed,
        ..ModelConfig::default()
    }
}

fn tiny_pretrain_cfg(steps: usize) -> PretrainConfig {
    PretrainConfig {
        steps,
        ways: 3,
        shots: 2,
        queries: 3,
        nm_ways: 3,
        nm_shots: 2,
        nm_queries: 3,
        log_every: 5,
        sampler: SamplerConfig {
            hops: 1,
            max_nodes: 10,
            neighbors_per_node: 5,
        },
        ..PretrainConfig::default()
    }
}

fn curve_bits(c: &TrainingCurve) -> (Vec<usize>, Vec<u32>, Vec<u32>) {
    (
        c.steps.clone(),
        c.loss.iter().map(|l| l.to_bits()).collect(),
        c.accuracy.iter().map(|a| a.to_bits()).collect(),
    )
}

fn param_bits(m: &GraphPrompterModel) -> Vec<Vec<u32>> {
    m.store
        .iter()
        .map(|(_, t)| t.as_slice().iter().map(|v| v.to_bits()).collect())
        .collect()
}

// ---------------------------------------------------------------------------
// Property tests: roundtrip fidelity and corruption detection.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any model configuration must roundtrip through a GPCK v2 container
    /// with bit-identical parameters.
    #[test]
    fn gpck_roundtrip_any_config(
        embed in 4usize..12,
        hidden in 4usize..16,
        gen in 0u8..3,
        seed in any::<u64>(),
        recon_normalize in any::<bool>(),
        proto_residual in any::<bool>(),
    ) {
        let generator = match gen {
            0 => gp_core::GeneratorKind::Sage,
            1 => gp_core::GeneratorKind::Gat,
            _ => gp_core::GeneratorKind::Gcn,
        };
        let cfg = ModelConfig {
            generator,
            recon_normalize,
            proto_residual,
            ..tiny_model_cfg(embed, hidden, seed)
        };
        let model = GraphPrompterModel::new(cfg.clone());
        let dir = tmpdir("rt");
        let path = dir.join("m.gpck");
        save_model(&path, &model).unwrap();
        let loaded = GraphPrompterModel::load(&path).unwrap();
        prop_assert_eq!(loaded.config(), &cfg);
        prop_assert_eq!(param_bits(&loaded), param_bits(&model));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Corrupting any single byte anywhere in the file — header or payload
    /// — must yield a typed load error: no panic, no silently-wrong model.
    #[test]
    fn any_single_byte_corruption_is_detected(
        seed in any::<u64>(),
        offset_frac in 0.0f64..1.0,
        mask in 1u8..=255,
    ) {
        let model = GraphPrompterModel::new(tiny_model_cfg(6, 8, seed));
        let dir = tmpdir("flip");
        let path = dir.join("m.gpck");
        save_model(&path, &model).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let i = ((bytes.len() - 1) as f64 * offset_frac) as usize;
        bytes[i] ^= mask;
        std::fs::write(&path, &bytes).unwrap();
        let res = GraphPrompterModel::load(&path);
        prop_assert!(res.is_err(), "flip of byte {} (mask {:#04x}) went undetected", i, mask);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A file cut off at any point must load as a typed error, never hang
    /// or panic — the torn-write scenario atomic renames protect against,
    /// still exercised in case a checkpoint is copied around by hand.
    #[test]
    fn any_truncation_is_detected(seed in any::<u64>(), cut_frac in 0.0f64..1.0) {
        let model = GraphPrompterModel::new(tiny_model_cfg(6, 8, seed));
        let dir = tmpdir("cut");
        let path = dir.join(checkpoint_file_name(10));
        let meta = TrainerMeta {
            step: 10,
            best_params: model.store.snapshot(),
            ..TrainerMeta::default()
        };
        save_trainer_checkpoint(&path, &model, &meta).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        prop_assert!(load_trainer_checkpoint(&path).is_err(), "cut at {} undetected", cut);
        std::fs::remove_dir_all(&dir).ok();
    }
}

// ---------------------------------------------------------------------------
// Kill/resume integration tests.
// ---------------------------------------------------------------------------

/// The tentpole guarantee: a run killed at a checkpoint boundary and
/// resumed reproduces the uninterrupted run bit for bit — same curve,
/// same best snapshot, same final parameters.
#[test]
fn resumed_run_is_bit_identical_to_uninterrupted() {
    let ds = CitationConfig::new("t", 300, 5, 31).generate();
    let mk = || GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));

    // Uninterrupted reference run: 40 steps, checkpoint+validate every 10.
    let dir_a = tmpdir("resume_a");
    let mut model_a = mk();
    let ckpt_a = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir_a)
    };
    let report_a = pretrain_resumable(
        &mut model_a,
        &ds,
        &tiny_pretrain_cfg(40),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_a),
    )
    .unwrap();

    // "Killed" run: the same configuration stopped after 20 steps — the
    // checkpoint at step 20 is written before the end-of-run best-snapshot
    // restore, so it is exactly the mid-run trainer state.
    let dir_b = tmpdir("resume_b");
    let mut model_b = mk();
    let ckpt_b = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir_b)
    };
    pretrain_resumable(
        &mut model_b,
        &ds,
        &tiny_pretrain_cfg(20),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_b),
    )
    .unwrap();

    // Resume with the full step budget from the step-20 checkpoint.
    let mut model_r = mk();
    let ckpt_r = CheckpointConfig {
        every: 10,
        keep_last: 0,
        resume: true,
        ..CheckpointConfig::new(&dir_b)
    };
    let report_r = pretrain_resumable(
        &mut model_r,
        &ds,
        &tiny_pretrain_cfg(40),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_r),
    )
    .unwrap();

    assert_eq!(report_r.resumed_from, Some(20));
    assert_eq!(curve_bits(&report_r.curve), curve_bits(&report_a.curve));
    assert_eq!(report_r.best_acc.to_bits(), report_a.best_acc.to_bits());
    assert_eq!(report_r.best_step, report_a.best_step);
    assert_eq!(param_bits(&model_r), param_bits(&model_a));

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Recovery must skip a corrupted newest checkpoint and resume from the
/// previous valid one, reporting what it skipped.
#[test]
fn resume_skips_corrupt_newest_checkpoint() {
    let ds = CitationConfig::new("t", 300, 5, 32).generate();
    let dir = tmpdir("skipcorrupt");
    let mut model = GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));
    let ckpt = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir)
    };
    pretrain_resumable(
        &mut model,
        &ds,
        &tiny_pretrain_cfg(20),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt),
    )
    .unwrap();

    // Flip a payload byte in the newest checkpoint (step 20).
    let newest = dir.join(checkpoint_file_name(20));
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&newest, &bytes).unwrap();

    let mut resumed = GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));
    let ckpt_r = CheckpointConfig {
        resume: true,
        ..ckpt
    };
    let report = pretrain_resumable(
        &mut resumed,
        &ds,
        &tiny_pretrain_cfg(20),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_r),
    )
    .unwrap();
    assert_eq!(
        report.resumed_from,
        Some(10),
        "must fall back to the step-10 checkpoint"
    );
    assert_eq!(report.skipped_checkpoints.len(), 1);
    assert!(
        report.skipped_checkpoints[0].1.contains("checksum"),
        "{:?}",
        report.skipped_checkpoints
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Debris a killed process can leave behind — stale temp files from
/// interrupted atomic writes, an empty final-name file, junk — must not
/// confuse directory listing or recovery.
#[test]
fn recovery_ignores_kill_debris() {
    let dir = tmpdir("debris");
    let model = GraphPrompterModel::new(tiny_model_cfg(8, 12, 9));
    let meta = TrainerMeta {
        step: 10,
        best_params: model.store.snapshot(),
        ..TrainerMeta::default()
    };
    save_trainer_checkpoint(&dir.join(checkpoint_file_name(10)), &model, &meta).unwrap();

    // A torn temp file (interrupted before rename) and assorted junk.
    std::fs::write(
        dir.join(format!("{}.tmp.12345", checkpoint_file_name(20))),
        b"torn",
    )
    .unwrap();
    std::fs::write(dir.join("notes.txt"), b"hello").unwrap();
    // A zero-byte file under a checkpoint name (e.g. `touch`ed by hand).
    std::fs::write(dir.join(checkpoint_file_name(30)), b"").unwrap();

    let listed: Vec<usize> = list_checkpoints(&dir).into_iter().map(|(s, _)| s).collect();
    assert_eq!(listed, vec![10, 30], "temp/junk files must not be listed");

    let scan = scan_for_recovery(&dir);
    let (step, _, _, recovered_meta) = scan.recovered.expect("valid checkpoint must recover");
    assert_eq!(step, 10);
    assert_eq!(recovered_meta.step, 10);
    assert_eq!(
        scan.skipped.len(),
        1,
        "only the empty ckpt-30 file is skipped"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Injected crashes inside the atomic writer itself — mid-`write` before
/// any fsync, and between fsync and rename — must leave the newest valid
/// checkpoint recoverable and must never surface a partial file under a
/// final checkpoint name.
#[test]
fn injected_writer_crash_never_loses_newest_valid_checkpoint() {
    let dir = tmpdir("faultywrite");
    let model = GraphPrompterModel::new(tiny_model_cfg(8, 12, 9));
    let meta_at = |step: usize| TrainerMeta {
        step,
        best_params: model.store.snapshot(),
        ..TrainerMeta::default()
    };
    save_trainer_checkpoint(&dir.join(checkpoint_file_name(10)), &model, &meta_at(10)).unwrap();

    for fault in [WriteFault::TornWrite, WriteFault::BeforeRename] {
        let newer = dir.join(checkpoint_file_name(20));
        let err = save_trainer_checkpoint_faulty(&newer, &model, &meta_at(20), fault)
            .expect_err("an injected crash must report failure");
        assert!(err.to_string().contains("injected fault"), "{err}");

        // The final name must not exist at all: the crash happened before
        // the rename, so there is nothing — partial or whole — to load.
        assert!(
            !newer.exists(),
            "{fault:?} must never materialize the final checkpoint name"
        );
        let listed: Vec<usize> = list_checkpoints(&dir).into_iter().map(|(s, _)| s).collect();
        assert_eq!(listed, vec![10], "{fault:?} residue must not be listed");

        let scan = scan_for_recovery(&dir);
        let (step, _, _, meta) = scan.recovered.expect("step 10 must survive the crash");
        assert_eq!((step, meta.step), (10, 10), "{fault:?} lost the newest valid checkpoint");
        assert!(scan.skipped.is_empty(), "{fault:?} residue reached recovery");
    }

    // The post-fsync orphan temp file is a *complete* container (that is
    // what "synced before rename" means) — recovery just never looks at
    // temp names, so it cannot be half-adopted.
    let orphan = dir.join(format!(
        "{}.tmp.{}",
        checkpoint_file_name(20),
        std::process::id()
    ));
    assert!(orphan.exists(), "BeforeRename must leave its temp file");
    read_container(&orphan).expect("the synced orphan is internally complete");

    // A later healthy write at the same step goes through cleanly and
    // becomes the recovery target.
    save_trainer_checkpoint(&dir.join(checkpoint_file_name(20)), &model, &meta_at(20)).unwrap();
    let scan = scan_for_recovery(&dir);
    assert_eq!(scan.recovered.expect("recovers").0, 20);
    std::fs::remove_dir_all(&dir).ok();
}

/// Resuming against a model built with a different architecture must be a
/// typed error, not a silent shape-corrupted merge.
#[test]
fn resume_rejects_mismatched_model_config() {
    let ds = CitationConfig::new("t", 300, 5, 33).generate();
    let dir = tmpdir("mismatch");
    let mut model = GraphPrompterModel::new(tiny_model_cfg(16, 24, 0));
    let ckpt = CheckpointConfig {
        every: 10,
        keep_last: 0,
        ..CheckpointConfig::new(&dir)
    };
    pretrain_resumable(
        &mut model,
        &ds,
        &tiny_pretrain_cfg(10),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt),
    )
    .unwrap();

    // Different embed width: the checkpoint must be refused.
    let mut other = GraphPrompterModel::new(tiny_model_cfg(8, 24, 0));
    let ckpt_r = CheckpointConfig {
        resume: true,
        ..ckpt
    };
    let err = pretrain_resumable(
        &mut other,
        &ds,
        &tiny_pretrain_cfg(10),
        StageConfig::full(),
        10,
        2,
        Some(&ckpt_r),
    )
    .unwrap_err();
    assert!(err.to_string().contains("configuration"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}
