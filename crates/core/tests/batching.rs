//! Property suite for cross-request batched inference (the
//! `BatchPlanner` / `run_episodes_batched` layer behind
//! `gp serve --max-batch`).
//!
//! The contract under test: **batch membership is invisible in
//! results**. On `Backend::Reference` a fused member must be
//! bit-identical to running the same episode alone — same predictions,
//! same labels, confidences equal to the bit — for every batch size,
//! any mix of member shapes, and any mix of deadlines. On
//! `Backend::Fast` the fused pass must stay within the same numeric
//! tolerance the backend already promises for solo runs.
//!
//! Locally these compile against the proptest stub (one deterministic
//! case per property, `build.sh check-faults`); CI runs the full
//! random-case sweep against the real crate.

use gp_core::{Deadline, Engine, EngineError, EpisodeRequest, EpisodeResult};
use gp_datasets::{sample_few_shot_task, CitationConfig, Dataset, FewShotTask};
use gp_graph::SamplerConfig;
use gp_tensor::Backend;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn tiny_engine(source: &Dataset, backend: Backend) -> Engine {
    let mut engine = Engine::builder()
        .model_config(gp_core::ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..gp_core::ModelConfig::default()
        })
        .pretrain_config(gp_core::PretrainConfig {
            steps: 12,
            ways: 3,
            shots: 2,
            queries: 3,
            nm_ways: 3,
            nm_shots: 2,
            nm_queries: 3,
            log_every: 10,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 10,
                neighbors_per_node: 5,
            },
            ..gp_core::PretrainConfig::default()
        })
        .inference_config(gp_core::InferenceConfig {
            shots: 2,
            candidates_per_class: 4,
            query_batch: 5,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 10,
                neighbors_per_node: 5,
            },
            ..gp_core::InferenceConfig::default()
        })
        .backend(backend)
        .try_build()
        .expect("tiny configs are valid");
    engine.pretrain(source);
    engine
}

/// `count` tasks with shapes drawn from `rng` (2–4 ways, 1–12 queries).
fn varied_tasks(source: &Dataset, count: usize, rng: &mut StdRng) -> Vec<FewShotTask> {
    use rand::Rng;
    (0..count)
        .map(|_| {
            let ways = rng.gen_range(2..=4usize);
            let queries = rng.gen_range(1..=12usize);
            sample_few_shot_task(source, ways, 4, queries, rng)
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn assert_bit_identical(batched: &EpisodeResult, serial: &EpisodeResult, label: &str) {
    assert_eq!(batched.predictions, serial.predictions, "{label}");
    assert_eq!(batched.query_labels, serial.query_labels, "{label}");
    assert_eq!(
        bits(&batched.confidences),
        bits(&serial.confidences),
        "{label}: confidences must match to the bit"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Reference backend: any batch size from 1 to all members, over
    /// randomly-shaped episodes, is bit-identical to serial runs.
    #[test]
    fn batched_reference_is_bit_identical_to_serial(
        task_seed in any::<u64>(),
        data_seed in 100u64..140,
    ) {
        let source = CitationConfig::new("batch-prop", 250, 4, data_seed).generate();
        let engine = tiny_engine(&source, Backend::Reference);
        let mut rng = StdRng::seed_from_u64(task_seed);
        let tasks = varied_tasks(&source, 8, &mut rng);
        let serial: Vec<EpisodeResult> =
            tasks.iter().map(|t| engine.run_episode(&source, t)).collect();

        for batch_size in [1usize, 2, 5, 8] {
            let requests: Vec<EpisodeRequest> = tasks[..batch_size]
                .iter()
                .map(|t| EpisodeRequest { task: t, deadline: None })
                .collect();
            let batched = engine.run_episodes_batched(&source, &requests);
            prop_assert_eq!(batched.len(), batch_size);
            for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
                let b = b.as_ref().expect("no deadline must not expire");
                assert_bit_identical(b, s, &format!("batch {batch_size} member {i}"));
            }
        }
    }

    /// Deadlines are per-member properties: a batch mixing generous
    /// deadlines with none at all answers every member bit-identically
    /// to its solo run — a neighbour's deadline never perturbs results.
    #[test]
    fn mixed_deadlines_do_not_perturb_members(
        task_seed in any::<u64>(),
        stagger in 1u64..4,
    ) {
        let source = CitationConfig::new("batch-prop-ddl", 250, 4, 123).generate();
        let engine = tiny_engine(&source, Backend::Reference);
        let mut rng = StdRng::seed_from_u64(task_seed);
        let tasks = varied_tasks(&source, 6, &mut rng);
        let serial: Vec<EpisodeResult> =
            tasks.iter().map(|t| engine.run_episode(&source, t)).collect();

        let requests: Vec<EpisodeRequest> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| EpisodeRequest {
                task: t,
                deadline: (i as u64 % stagger != 0)
                    .then(|| Deadline::after_millis(600_000)),
            })
            .collect();
        let batched = engine.run_episodes_batched(&source, &requests);
        for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
            let b = b.as_ref().expect("generous deadline must not expire");
            assert_bit_identical(b, s, &format!("mixed-deadline member {i}"));
        }
    }

    /// A member whose deadline is already gone when the fused pass
    /// starts is reported as `DeadlineExceeded` for that member alone;
    /// every live member still answers bit-identically to serial.
    #[test]
    fn expired_member_does_not_poison_the_batch(
        task_seed in any::<u64>(),
        victim in 0usize..4,
    ) {
        let source = CitationConfig::new("batch-prop-exp", 250, 4, 129).generate();
        let engine = tiny_engine(&source, Backend::Reference);
        let mut rng = StdRng::seed_from_u64(task_seed);
        let tasks = varied_tasks(&source, 4, &mut rng);
        let serial: Vec<EpisodeResult> =
            tasks.iter().map(|t| engine.run_episode(&source, t)).collect();

        let requests: Vec<EpisodeRequest> = tasks
            .iter()
            .enumerate()
            .map(|(i, t)| EpisodeRequest {
                task: t,
                deadline: Some(if i == victim {
                    Deadline::after_millis(0) // expired before dispatch
                } else {
                    Deadline::after_millis(600_000)
                }),
            })
            .collect();
        let batched = engine.run_episodes_batched(&source, &requests);
        prop_assert_eq!(batched.len(), tasks.len());
        for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
            if i == victim {
                match b {
                    Err(EngineError::DeadlineExceeded(d)) => {
                        prop_assert_eq!(d.completed_queries, 0, "victim ran no queries");
                    }
                    other => panic!("victim must expire, got {other:?}"),
                }
            } else {
                let b = b.as_ref().expect("live member must not expire");
                assert_bit_identical(b, s, &format!("live member {i}"));
            }
        }
    }

    /// Fast backend: fused members stay within the backend's own solo
    /// tolerance — same predictions, confidences within 1e-4.
    #[test]
    fn batched_fast_matches_serial_within_tolerance(
        task_seed in any::<u64>(),
    ) {
        let source = CitationConfig::new("batch-prop-fast", 250, 4, 131).generate();
        let engine = tiny_engine(&source, Backend::Fast);
        let mut rng = StdRng::seed_from_u64(task_seed);
        let tasks = varied_tasks(&source, 5, &mut rng);
        let serial: Vec<EpisodeResult> =
            tasks.iter().map(|t| engine.run_episode(&source, t)).collect();

        let requests: Vec<EpisodeRequest> = tasks
            .iter()
            .map(|t| EpisodeRequest { task: t, deadline: None })
            .collect();
        let batched = engine.run_episodes_batched(&source, &requests);
        for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
            let b = b.as_ref().expect("no deadline must not expire");
            prop_assert_eq!(&b.predictions, &s.predictions, "fast member {}", i);
            prop_assert_eq!(&b.query_labels, &s.query_labels, "fast member {}", i);
            for (j, (bc, sc)) in b.confidences.iter().zip(&s.confidences).enumerate() {
                prop_assert!(
                    (bc - sc).abs() <= 1e-4,
                    "fast member {} confidence {}: {} vs {}",
                    i, j, bc, sc
                );
            }
        }
    }
}
