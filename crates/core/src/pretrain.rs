//! Pre-training (Alg. 1): joint optimization of the reconstruction layer,
//! `GNN_D`, selection layer and task-graph GNN on in-context episodes,
//! with the loss `L = L_NM + L_MT` (Eqs. 12–14).
//!
//! Training is organized in deterministic *chunks* whose boundaries fall
//! on validation and checkpoint cadences; each chunk reseeds the episode
//! stream from `cfg.seed + steps_done`, so a run killed between chunks
//! and resumed from a [`crate::checkpoint`] trainer checkpoint reproduces
//! the uninterrupted run bit for bit (parameters, optimizer moments and
//! training curve alike).

use std::path::PathBuf;
use std::sync::Arc;

use gp_datasets::{sample_few_shot_from_splits, DataPoint, Dataset, Split, Task};
use gp_graph::{RandomWalkSampler, Subgraph};
use gp_nn::{AdamW, Optimizer, Session};
use gp_tensor::Var;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::batch::SubgraphBatch;
use crate::checkpoint::{self, CheckpointError, TrainerMeta};
use crate::config::{PretrainConfig, StageConfig};
use crate::guard::{DivergenceError, GuardAction, GuardRail, StepVerdict};
use crate::model::{sample_datapoint_subgraphs, GraphPrompterModel};

static LOSS_MILLI: gp_obs::Histogram = gp_obs::Histogram::new("pretrain.loss_milli");
static GRAD_NORM_MILLI: gp_obs::Histogram = gp_obs::Histogram::new("pretrain.grad_norm_milli");
static STEP_MICROS: gp_obs::Histogram = gp_obs::Histogram::new("pretrain.step_micros");
static CHECKPOINT_WRITE_MICROS: gp_obs::Histogram =
    gp_obs::Histogram::new("pretrain.checkpoint_write_micros");

/// Loss/accuracy trajectory recorded during pre-training (Fig. 9).
#[derive(Clone, Debug, Default)]
pub struct TrainingCurve {
    /// Step indices at which metrics were recorded.
    pub steps: Vec<usize>,
    /// Total loss `L_NM + L_MT` at each recorded step.
    pub loss: Vec<f32>,
    /// Multi-Task episode training accuracy at each recorded step.
    pub accuracy: Vec<f32>,
}

/// Build an episode's task-graph loss on the session tape.
///
/// Shared by both pre-training tasks: embeds prompts and queries in one
/// block-diagonal batch, applies selection-layer importance weighting to
/// the prompt rows (`G'_p = G_p · I_p`) when enabled, runs the task graph,
/// and returns `(loss, #correct)` for the episode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn episode_loss(
    model: &GraphPrompterModel,
    sess: &mut Session<'_>,
    graph: &gp_graph::Graph,
    prompt_sgs: &[Subgraph],
    prompt_labels: &[usize],
    query_sgs: &[Subgraph],
    query_labels: &[usize],
    num_classes: usize,
    stages: StageConfig,
) -> (Var, usize) {
    let p = prompt_sgs.len();
    let n = query_sgs.len();
    let all: Vec<Subgraph> = prompt_sgs.iter().chain(query_sgs).cloned().collect();
    let batch = match SubgraphBatch::build(graph, &all, model.config().rel_dim) {
        Ok(b) => b,
        // gp-lint: allow(R1) — structurally impossible: sampled subgraphs are non-empty and anchored
        Err(e) => unreachable!("subgraph fusion failed: {e}"),
    };
    let emb = model.embed_batch(sess, &batch, stages.use_reconstruction);

    let p_idx: Arc<Vec<usize>> = Arc::new((0..p).collect());
    let q_idx: Arc<Vec<usize>> = Arc::new((p..p + n).collect());
    let mut prompts = sess.tape.gather_rows(emb.embeddings, p_idx.clone());
    let queries = sess.tape.gather_rows(emb.embeddings, q_idx);
    if stages.use_selection_layer {
        let p_imp = sess.tape.gather_rows(emb.importance, p_idx);
        prompts = sess.tape.mul_rows_by_col(prompts, p_imp);
    }

    let out = model.task_forward(sess, prompts, prompt_labels, queries, num_classes);
    let targets = Arc::new(query_labels.to_vec());
    let loss = sess.tape.cross_entropy_logits(out.logits, targets);
    let preds = sess.value(out.logits).argmax_rows();
    let correct = preds
        .iter()
        .zip(query_labels)
        .filter(|(a, b)| a == b)
        .count();
    (loss, correct)
}

/// Prompts, prompt labels, queries and query labels of one NM episode.
type NmEpisode = (Vec<DataPoint>, Vec<usize>, Vec<DataPoint>, Vec<usize>);

/// Sample a Neighbor-Matching episode (§IV-D): `nm_ways` disjoint local
/// neighborhoods; examples and queries are nodes from each neighborhood
/// and the episode label is *which neighborhood a node belongs to*.
fn sample_neighbor_matching<R: Rng + ?Sized>(
    graph: &gp_graph::Graph,
    sampler: &RandomWalkSampler,
    nm_ways: usize,
    nm_shots: usize,
    nm_queries: usize,
    rng: &mut R,
) -> Option<NmEpisode> {
    let per_class_queries = nm_queries.div_ceil(nm_ways).max(1);
    let need = nm_shots + per_class_queries;
    let mut used = std::collections::HashSet::new();
    let mut prompts = Vec::new();
    let mut prompt_labels = Vec::new();
    let mut queries = Vec::new();
    let mut query_labels = Vec::new();

    let mut class = 0usize;
    let mut attempts = 0;
    while class < nm_ways {
        attempts += 1;
        if attempts > nm_ways * 20 {
            return None; // graph too small/disconnected for this episode
        }
        let center = rng.gen_range(0..graph.num_nodes()) as u32;
        if used.contains(&center) || graph.degree(center) == 0 {
            continue;
        }
        // Gather the center's local neighborhood via the data-graph sampler.
        let sg = sampler.sample(graph, &[center], rng);
        let mut pool: Vec<u32> = sg
            .nodes
            .iter()
            .copied()
            .filter(|n| !used.contains(n))
            .collect();
        if pool.len() < need {
            continue;
        }
        pool.shuffle(rng);
        for &n in &pool[..need] {
            used.insert(n);
        }
        for &n in &pool[..nm_shots] {
            prompts.push(DataPoint::Node(n));
            prompt_labels.push(class);
        }
        for &n in &pool[nm_shots..need] {
            queries.push(DataPoint::Node(n));
            query_labels.push(class);
        }
        class += 1;
    }
    Some((prompts, prompt_labels, queries, query_labels))
}

/// Everything a validated pre-training run reports back.
#[derive(Debug, Default)]
pub struct PretrainReport {
    /// Loss/accuracy trajectory over the whole run (resumed runs include
    /// the curve recorded before the interruption).
    pub curve: TrainingCurve,
    /// Best validation accuracy observed.
    pub best_acc: f32,
    /// Step count at which `best_acc` was measured (the restored snapshot).
    pub best_step: usize,
    /// Step the run resumed from, when recovery found a valid checkpoint.
    pub resumed_from: Option<usize>,
    /// Checkpoints that failed validation during recovery, with the reason.
    pub skipped_checkpoints: Vec<(PathBuf, String)>,
    /// Optimizer steps the guard rail skipped.
    pub guard_skipped: usize,
    /// Steps whose gradients the guard rail clipped.
    pub guard_clipped: usize,
}

/// Why a validated/resumable pre-training run stopped early.
#[derive(Debug)]
pub enum PretrainError {
    /// The guard rail aborted on a divergence incident.
    Divergence(DivergenceError),
    /// Writing or recovering a checkpoint failed.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for PretrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PretrainError::Divergence(e) => write!(f, "training diverged: {e}"),
            PretrainError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for PretrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PretrainError::Divergence(e) => Some(e),
            PretrainError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<DivergenceError> for PretrainError {
    fn from(e: DivergenceError) -> Self {
        PretrainError::Divergence(e)
    }
}

impl From<CheckpointError> for PretrainError {
    fn from(e: CheckpointError) -> Self {
        PretrainError::Checkpoint(e)
    }
}

/// Where and how often [`pretrain_resumable`] persists trainer state.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory holding `ckpt-<step>.gpck` files (created if missing).
    pub dir: PathBuf,
    /// Persist trainer state every this many steps (also at run end).
    pub every: usize,
    /// Retain only the newest `keep_last` checkpoints (0 keeps all).
    pub keep_last: usize,
    /// Scan `dir` for the newest *valid* checkpoint and continue from it.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every 100 steps, keeping the last 3.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            every: 100,
            keep_last: 3,
            resume: false,
        }
    }
}

/// As [`pretrain`], additionally evaluating held-out episodes (drawn from
/// the valid partition) every `validate_every` steps and restoring the
/// best-validation snapshot at the end — the checkpoint-selection practice
/// the paper follows ("we checkpoint the model every 500 steps", §V-A4).
pub fn pretrain_with_validation(
    model: &mut GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
    validate_every: usize,
    valid_episodes: usize,
) -> Result<PretrainReport, PretrainError> {
    pretrain_resumable(
        model,
        dataset,
        cfg,
        stages,
        validate_every,
        valid_episodes,
        None,
    )
}

/// Crash-safe variant of [`pretrain_with_validation`]: when `ckpt` is set,
/// the full trainer state (parameters, optimizer moments, best-validation
/// snapshot, curve, guard window) is written atomically as a GPCK v2
/// trainer checkpoint every [`CheckpointConfig::every`] steps, old files
/// are pruned to [`CheckpointConfig::keep_last`], and with
/// [`CheckpointConfig::resume`] the run continues from the newest valid
/// checkpoint — corrupt ones are skipped and reported, and the resumed
/// run's curve and final parameters are bit-identical to an uninterrupted
/// run with the same configuration.
#[allow(clippy::too_many_arguments)]
pub fn pretrain_resumable(
    model: &mut GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
    validate_every: usize,
    valid_episodes: usize,
    ckpt: Option<&CheckpointConfig>,
) -> Result<PretrainReport, PretrainError> {
    assert!(validate_every > 0, "validate_every must be positive");
    let total = cfg.steps;
    let mut opt = AdamW::new(cfg.lr, cfg.weight_decay);
    let mut guard = cfg.guard.clone().map(GuardRail::new);
    let mut done = 0usize;
    let mut best_acc = f32::NEG_INFINITY;
    let mut best_step = 0usize;
    let mut best_snapshot = model.store.snapshot();
    let mut curve = TrainingCurve::default();
    let mut resumed_from = None;
    let mut skipped_checkpoints = Vec::new();

    if let Some(c) = ckpt {
        std::fs::create_dir_all(&c.dir).map_err(CheckpointError::from)?;
        if c.resume {
            let scan = checkpoint::scan_for_recovery(&c.dir);
            skipped_checkpoints = scan
                .skipped
                .into_iter()
                .map(|(p, e)| (p, e.to_string()))
                .collect();
            if let Some((step, _, saved, meta)) = scan.recovered {
                if *saved.config() != *model.config() {
                    return Err(CheckpointError::ShapeMismatch(
                        "checkpoint was trained with a different model configuration".into(),
                    )
                    .into());
                }
                *model = saved;
                opt.restore_state(&meta.optim);
                if let Some(g) = guard.as_mut() {
                    g.restore_window(&meta.guard_window);
                }
                done = meta.step.min(total);
                best_acc = meta.best_acc;
                best_step = meta.best_step;
                best_snapshot = meta.best_params;
                curve = meta.curve;
                resumed_from = Some(step);
            }
        }
    }

    while done < total {
        // Chunk boundaries are deterministic functions of the cadences, so
        // an interrupted run and an uninterrupted one reseed the episode
        // stream at exactly the same steps.
        let mut boundary = done + validate_every - done % validate_every;
        if let Some(c) = ckpt {
            let every = c.every.max(1);
            boundary = boundary.min(done + every - done % every);
        }
        let boundary = boundary.min(total);
        let mut chunk_cfg = cfg.clone();
        chunk_cfg.steps = boundary - done;
        // Advance the episode stream deterministically across chunks.
        chunk_cfg.seed = cfg.seed.wrapping_add(done as u64);
        let part = pretrain_steps(
            model,
            dataset,
            &chunk_cfg,
            stages,
            &mut opt,
            guard.as_mut(),
            done,
        )?;
        for (i, &s) in part.steps.iter().enumerate() {
            curve.steps.push(done + s);
            curve.loss.push(part.loss[i]);
            curve.accuracy.push(part.accuracy[i]);
        }
        done = boundary;

        if done % validate_every == 0 || done == total {
            let acc = validation_accuracy(model, dataset, cfg, stages, valid_episodes, done as u64);
            if acc > best_acc {
                best_acc = acc;
                best_step = done;
                best_snapshot = model.store.snapshot();
            }
        }

        if let Some(c) = ckpt {
            if done % c.every.max(1) == 0 || done == total {
                let meta = TrainerMeta {
                    step: done,
                    best_acc,
                    best_step,
                    best_params: best_snapshot.clone(),
                    optim: opt.state(),
                    curve: curve.clone(),
                    guard_window: guard.as_ref().map(GuardRail::window).unwrap_or_default(),
                };
                let path = c.dir.join(checkpoint::checkpoint_file_name(done));
                {
                    let _span = CHECKPOINT_WRITE_MICROS.span();
                    checkpoint::save_trainer_checkpoint(&path, model, &meta)?;
                }
                if c.keep_last > 0 {
                    checkpoint::prune_checkpoints(&c.dir, c.keep_last);
                }
            }
        }
    }

    model
        .store
        .try_restore(&best_snapshot)
        .map_err(|e| CheckpointError::ShapeMismatch(e.to_string()))?;
    Ok(PretrainReport {
        curve,
        best_acc,
        best_step,
        resumed_from,
        skipped_checkpoints,
        guard_skipped: guard.as_ref().map_or(0, |g| g.skipped),
        guard_clipped: guard.as_ref().map_or(0, |g| g.clipped),
    })
}

/// Mean accuracy over `episodes` held-out episodes (prompts from train,
/// queries from valid) under the current parameters.
fn validation_accuracy(
    model: &GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
    episodes: usize,
    salt: u64,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xa111 ^ salt);
    let sampler = RandomWalkSampler::new(cfg.sampler);
    let ways = cfg.ways.min(dataset.num_classes);
    let mut correct = 0usize;
    let mut totals = 0usize;
    for _ in 0..episodes.max(1) {
        let ep = sample_few_shot_from_splits(
            dataset,
            Split::Train,
            Split::Valid,
            ways,
            cfg.shots,
            cfg.queries,
            &mut rng,
        );
        let (p_points, p_labels): (Vec<_>, Vec<_>) = ep.candidates.iter().copied().unzip();
        let (q_points, q_labels): (Vec<_>, Vec<_>) = ep.queries.iter().copied().unzip();
        let p_sgs =
            sample_datapoint_subgraphs(&dataset.graph, &sampler, &p_points, dataset.task, &mut rng);
        let q_sgs =
            sample_datapoint_subgraphs(&dataset.graph, &sampler, &q_points, dataset.task, &mut rng);
        let mut sess = Session::new(&model.store);
        let (_, c) = episode_loss(
            model,
            &mut sess,
            &dataset.graph,
            &p_sgs,
            &p_labels,
            &q_sgs,
            &q_labels,
            ways,
            stages,
        );
        correct += c;
        totals += q_labels.len();
    }
    correct as f32 / totals.max(1) as f32
}

/// Run Alg. 1: pre-train `model` on `dataset` and return the training
/// curve. Stage toggles control what is trained (the Prodigy baseline
/// pre-trains with everything off — plain Prodigy episodes).
///
/// Panics if the configured guard rail aborts; use [`try_pretrain`] for a
/// `Result`-returning variant.
pub fn pretrain(
    model: &mut GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
) -> TrainingCurve {
    try_pretrain(model, dataset, cfg, stages)
        .unwrap_or_else(|e| panic!("pre-training diverged: {e}"))
}

/// As [`pretrain`], surfacing guard-rail aborts as a typed
/// [`DivergenceError`] instead of panicking.
pub fn try_pretrain(
    model: &mut GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
) -> Result<TrainingCurve, DivergenceError> {
    let mut opt = AdamW::new(cfg.lr, cfg.weight_decay);
    let mut guard = cfg.guard.clone().map(GuardRail::new);
    pretrain_steps(model, dataset, cfg, stages, &mut opt, guard.as_mut(), 0)
}

/// The inner training loop: runs `cfg.steps` optimization steps against a
/// caller-owned optimizer (so moments survive across chunks on resume) and
/// an optional guard rail. `step_offset` is the absolute index of this
/// chunk's first step, used for guard diagnostics; the returned curve's
/// step indices stay chunk-relative.
fn pretrain_steps(
    model: &mut GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
    opt: &mut AdamW,
    mut guard: Option<&mut GuardRail>,
    step_offset: usize,
) -> Result<TrainingCurve, DivergenceError> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = RandomWalkSampler::new(cfg.sampler);
    let mut curve = TrainingCurve::default();

    let ways = cfg.ways.min(dataset.num_classes);
    for step in 0..cfg.steps {
        let _step_span = STEP_MICROS.span();
        let mut sess = Session::new(&model.store);

        // Multi-Task episode (Eq. 13): real labels, few-shot prompt format.
        let mt = sample_few_shot_from_splits(
            dataset,
            Split::Train,
            Split::Train,
            ways,
            cfg.shots,
            cfg.queries,
            &mut rng,
        );
        let (mt_prompt_points, mt_prompt_labels): (Vec<_>, Vec<_>) =
            mt.candidates.iter().copied().unzip();
        let (mt_query_points, mt_query_labels): (Vec<_>, Vec<_>) =
            mt.queries.iter().copied().unzip();
        let mt_prompt_sgs = sample_datapoint_subgraphs(
            &dataset.graph,
            &sampler,
            &mt_prompt_points,
            dataset.task,
            &mut rng,
        );
        let mt_query_sgs = sample_datapoint_subgraphs(
            &dataset.graph,
            &sampler,
            &mt_query_points,
            dataset.task,
            &mut rng,
        );
        let (mt_loss, mt_correct) = episode_loss(
            model,
            &mut sess,
            &dataset.graph,
            &mt_prompt_sgs,
            &mt_prompt_labels,
            &mt_query_sgs,
            &mt_query_labels,
            ways,
            stages,
        );
        let mt_total = mt_query_labels.len();

        // Neighbor-Matching episode (Eq. 12): pseudo-labels from locality.
        let nm_loss = sample_neighbor_matching(
            &dataset.graph,
            &sampler,
            cfg.nm_ways,
            cfg.nm_shots,
            cfg.nm_queries,
            &mut rng,
        )
        .map(|(np, nl, nq, nql)| {
            let np_sgs = sample_datapoint_subgraphs(
                &dataset.graph,
                &sampler,
                &np,
                Task::NodeClassification,
                &mut rng,
            );
            let nq_sgs = sample_datapoint_subgraphs(
                &dataset.graph,
                &sampler,
                &nq,
                Task::NodeClassification,
                &mut rng,
            );
            episode_loss(
                model,
                &mut sess,
                &dataset.graph,
                &np_sgs,
                &nl,
                &nq_sgs,
                &nql,
                cfg.nm_ways,
                stages,
            )
            .0
        });

        // L = L_NM + L_MT (Eq. 14).
        let total = match nm_loss {
            Some(nm) => sess.tape.add(mt_loss, nm),
            None => mt_loss,
        };
        let (loss_value, mut grads) = sess.grads(total);
        if gp_obs::enabled() {
            // The grad-norm pass is only worth its O(params) cost when
            // someone is actually collecting metrics.
            LOSS_MILLI.record_f64(f64::from(loss_value) * 1000.0);
            GRAD_NORM_MILLI.record_f64(f64::from(crate::guard::grad_l2_norm(&grads)) * 1000.0);
        }
        let abs_step = step_offset + step;
        let mut apply = true;
        if let Some(rail) = guard.as_deref_mut() {
            match rail.check(abs_step, loss_value, &mut grads)? {
                StepVerdict::Proceed => {}
                StepVerdict::Skip(_) => apply = false,
            }
        }
        if apply {
            if guard.is_some() {
                // Guarded runs keep a pre-step snapshot so an update that
                // still yields non-finite weights can be rolled back.
                let pre = model.store.snapshot();
                opt.step(&mut model.store, &grads);
                let finite = model.store.iter().all(|(_, t)| t.all_finite());
                let rail = guard.as_deref_mut().expect("guard checked above");
                if let Some(err) = rail.after_step(abs_step, finite) {
                    model.store.restore(&pre);
                    if rail.config().action == GuardAction::Abort {
                        return Err(err);
                    }
                }
            } else {
                opt.step(&mut model.store, &grads);
            }
        }

        if step % cfg.log_every == 0 || step + 1 == cfg.steps {
            curve.steps.push(step);
            curve.loss.push(loss_value);
            curve
                .accuracy
                .push(mt_correct as f32 / mt_total.max(1) as f32);
        }
    }
    Ok(curve)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::guard::GuardRailConfig;
    use gp_datasets::CitationConfig;
    use gp_graph::SamplerConfig;

    fn quick_cfg(steps: usize) -> PretrainConfig {
        PretrainConfig {
            steps,
            ways: 3,
            shots: 2,
            queries: 3,
            nm_ways: 3,
            nm_shots: 2,
            nm_queries: 3,
            log_every: 5,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 10,
                neighbors_per_node: 5,
            },
            ..PretrainConfig::default()
        }
    }

    #[test]
    fn pretrain_reduces_loss() {
        let ds = CitationConfig::new("t", 300, 6, 21).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let curve = pretrain(&mut model, &ds, &quick_cfg(60), StageConfig::full());
        assert!(curve.loss.len() >= 3);
        let head: f32 = curve.loss[..2].iter().sum::<f32>() / 2.0;
        let tail: f32 = curve.loss[curve.loss.len() - 2..].iter().sum::<f32>() / 2.0;
        assert!(tail < head, "loss did not decrease: {head} -> {tail}");
    }

    #[test]
    fn neighbor_matching_episode_is_well_formed() {
        let ds = CitationConfig::new("t", 300, 4, 22).generate();
        let sampler = RandomWalkSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let (p, pl, q, ql) =
            sample_neighbor_matching(&ds.graph, &sampler, 3, 2, 3, &mut rng).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(pl.len(), 6);
        assert_eq!(q.len(), 3);
        assert_eq!(ql.len(), 3);
        // Disjoint node use across the episode.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for dp in p.iter().chain(&q) {
            let DataPoint::Node(n) = dp else {
                panic!("NM must use node datapoints")
            };
            assert!(seen.insert(*n), "node {n} reused across neighborhoods");
        }
        assert!(pl.iter().all(|&l| l < 3));
        assert!(ql.iter().all(|&l| l < 3));
    }

    #[test]
    fn pretrain_works_on_edge_task_dataset() {
        let ds = gp_datasets::KgConfig::new("t", 300, 6, 5, 23).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let curve = pretrain(&mut model, &ds, &quick_cfg(10), StageConfig::full());
        assert_eq!(curve.steps.len(), curve.loss.len());
        assert!(curve.loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn validation_pretraining_restores_best_snapshot() {
        let ds = CitationConfig::new("t", 300, 5, 25).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let report =
            pretrain_with_validation(&mut model, &ds, &quick_cfg(40), StageConfig::full(), 20, 2)
                .expect("unguarded pretraining cannot fail");
        assert!(report.curve.loss.iter().all(|l| l.is_finite()));
        let best = report.best_acc;
        assert!((0.0..=1.0).contains(&best), "best acc {best}");
        // The snapshot's step index must be one of the validation points.
        assert!(
            report.best_step % 20 == 0 && report.best_step <= 40,
            "{}",
            report.best_step
        );
        assert!(report.resumed_from.is_none());
        // The restored parameters must reproduce the best validation
        // accuracy exactly (same seed & salt ⇒ same episodes).
        // A weaker but robust check: the model is usable for inference.
        let cfg = crate::config::InferenceConfig {
            shots: 2,
            candidates_per_class: 4,
            ..crate::config::InferenceConfig::default()
        };
        let accs = crate::infer::evaluate_episodes_impl(&model, &ds, 3, 8, 1, &cfg, None, None, 1);
        assert_eq!(accs.len(), 1);
    }

    #[test]
    fn guarded_pretraining_matches_unguarded_when_healthy() {
        let ds = CitationConfig::new("t", 300, 5, 26).generate();
        let cfg_plain = quick_cfg(15);
        let mut cfg_guarded = cfg_plain.clone();
        // A permissive rail: nothing in a healthy run should trip it.
        cfg_guarded.guard = Some(GuardRailConfig {
            spike_factor: 1e6,
            ..GuardRailConfig::skip()
        });
        let mk = || {
            GraphPrompterModel::new(ModelConfig {
                embed_dim: 16,
                hidden_dim: 24,
                ..ModelConfig::default()
            })
        };
        let mut a = mk();
        let mut b = mk();
        let curve_a = pretrain(&mut a, &ds, &cfg_plain, StageConfig::full());
        let curve_b = try_pretrain(&mut b, &ds, &cfg_guarded, StageConfig::full()).unwrap();
        let bits = |c: &TrainingCurve| c.loss.iter().map(|l| l.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&curve_a), bits(&curve_b));
        for ((_, ta), (_, tb)) in a.store.iter().zip(b.store.iter()) {
            assert_eq!(ta.as_slice(), tb.as_slice());
        }
    }

    #[test]
    fn abort_guard_surfaces_divergence_error() {
        let ds = CitationConfig::new("t", 300, 5, 27).generate();
        let mut cfg = quick_cfg(12);
        // An absurdly small grad-norm ceiling: any real step exceeds it,
        // so the rail must abort on the very first step.
        cfg.guard = Some(GuardRailConfig {
            action: GuardAction::Abort,
            clip_norm: Some(1e-12),
            ..GuardRailConfig::default()
        });
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let err = try_pretrain(&mut model, &ds, &cfg, StageConfig::full()).unwrap_err();
        assert!(
            matches!(err, DivergenceError::GradNormExceeded { step: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn resumable_writes_and_prunes_checkpoints() {
        let dir = std::env::temp_dir().join(format!("gp-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ds = CitationConfig::new("t", 300, 5, 28).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let ckpt = CheckpointConfig {
            every: 10,
            keep_last: 2,
            ..CheckpointConfig::new(&dir)
        };
        let report = pretrain_resumable(
            &mut model,
            &ds,
            &quick_cfg(30),
            StageConfig::full(),
            15,
            2,
            Some(&ckpt),
        )
        .unwrap();
        assert!(report.curve.loss.iter().all(|l| l.is_finite()));
        let found = checkpoint::list_checkpoints(&dir);
        let steps: Vec<usize> = found.iter().map(|(s, _)| *s).collect();
        assert_eq!(steps, vec![20, 30], "retention should keep the newest 2");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn prodigy_stages_also_train() {
        let ds = CitationConfig::new("t", 250, 4, 24).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let curve = pretrain(&mut model, &ds, &quick_cfg(10), StageConfig::prodigy());
        assert!(curve.loss.iter().all(|l| l.is_finite()));
    }
}
