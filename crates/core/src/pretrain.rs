//! Pre-training (Alg. 1): joint optimization of the reconstruction layer,
//! `GNN_D`, selection layer and task-graph GNN on in-context episodes,
//! with the loss `L = L_NM + L_MT` (Eqs. 12–14).

use std::sync::Arc;

use gp_datasets::{sample_few_shot_from_splits, DataPoint, Dataset, Split, Task};
use gp_graph::{RandomWalkSampler, Subgraph};
use gp_nn::{AdamW, Optimizer, Session};
use gp_tensor::Var;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::batch::SubgraphBatch;
use crate::config::{PretrainConfig, StageConfig};
use crate::model::{sample_datapoint_subgraphs, GraphPrompterModel};

/// Loss/accuracy trajectory recorded during pre-training (Fig. 9).
#[derive(Clone, Debug, Default)]
pub struct TrainingCurve {
    /// Step indices at which metrics were recorded.
    pub steps: Vec<usize>,
    /// Total loss `L_NM + L_MT` at each recorded step.
    pub loss: Vec<f32>,
    /// Multi-Task episode training accuracy at each recorded step.
    pub accuracy: Vec<f32>,
}

/// Build an episode's task-graph loss on the session tape.
///
/// Shared by both pre-training tasks: embeds prompts and queries in one
/// block-diagonal batch, applies selection-layer importance weighting to
/// the prompt rows (`G'_p = G_p · I_p`) when enabled, runs the task graph,
/// and returns `(loss, #correct)` for the episode.
#[allow(clippy::too_many_arguments)]
pub(crate) fn episode_loss(
    model: &GraphPrompterModel,
    sess: &mut Session<'_>,
    graph: &gp_graph::Graph,
    prompt_sgs: &[Subgraph],
    prompt_labels: &[usize],
    query_sgs: &[Subgraph],
    query_labels: &[usize],
    num_classes: usize,
    stages: StageConfig,
) -> (Var, usize) {
    let p = prompt_sgs.len();
    let n = query_sgs.len();
    let all: Vec<Subgraph> = prompt_sgs.iter().chain(query_sgs).cloned().collect();
    let batch = SubgraphBatch::build(graph, &all, model.config().rel_dim);
    let emb = model.embed_batch(sess, &batch, stages.use_reconstruction);

    let p_idx: Arc<Vec<usize>> = Arc::new((0..p).collect());
    let q_idx: Arc<Vec<usize>> = Arc::new((p..p + n).collect());
    let mut prompts = sess.tape.gather_rows(emb.embeddings, p_idx.clone());
    let queries = sess.tape.gather_rows(emb.embeddings, q_idx);
    if stages.use_selection_layer {
        let p_imp = sess.tape.gather_rows(emb.importance, p_idx);
        prompts = sess.tape.mul_rows_by_col(prompts, p_imp);
    }

    let out = model.task_forward(sess, prompts, prompt_labels, queries, num_classes);
    let targets = Arc::new(query_labels.to_vec());
    let loss = sess.tape.cross_entropy_logits(out.logits, targets);
    let preds = sess.value(out.logits).argmax_rows();
    let correct = preds
        .iter()
        .zip(query_labels)
        .filter(|(a, b)| a == b)
        .count();
    (loss, correct)
}

/// Prompts, prompt labels, queries and query labels of one NM episode.
type NmEpisode = (Vec<DataPoint>, Vec<usize>, Vec<DataPoint>, Vec<usize>);

/// Sample a Neighbor-Matching episode (§IV-D): `nm_ways` disjoint local
/// neighborhoods; examples and queries are nodes from each neighborhood
/// and the episode label is *which neighborhood a node belongs to*.
fn sample_neighbor_matching<R: Rng + ?Sized>(
    graph: &gp_graph::Graph,
    sampler: &RandomWalkSampler,
    nm_ways: usize,
    nm_shots: usize,
    nm_queries: usize,
    rng: &mut R,
) -> Option<NmEpisode> {
    let per_class_queries = nm_queries.div_ceil(nm_ways).max(1);
    let need = nm_shots + per_class_queries;
    let mut used = std::collections::HashSet::new();
    let mut prompts = Vec::new();
    let mut prompt_labels = Vec::new();
    let mut queries = Vec::new();
    let mut query_labels = Vec::new();

    let mut class = 0usize;
    let mut attempts = 0;
    while class < nm_ways {
        attempts += 1;
        if attempts > nm_ways * 20 {
            return None; // graph too small/disconnected for this episode
        }
        let center = rng.gen_range(0..graph.num_nodes()) as u32;
        if used.contains(&center) || graph.degree(center) == 0 {
            continue;
        }
        // Gather the center's local neighborhood via the data-graph sampler.
        let sg = sampler.sample(graph, &[center], rng);
        let mut pool: Vec<u32> = sg
            .nodes
            .iter()
            .copied()
            .filter(|n| !used.contains(n))
            .collect();
        if pool.len() < need {
            continue;
        }
        pool.shuffle(rng);
        for &n in &pool[..need] {
            used.insert(n);
        }
        for &n in &pool[..nm_shots] {
            prompts.push(DataPoint::Node(n));
            prompt_labels.push(class);
        }
        for &n in &pool[nm_shots..need] {
            queries.push(DataPoint::Node(n));
            query_labels.push(class);
        }
        class += 1;
    }
    Some((prompts, prompt_labels, queries, query_labels))
}

/// As [`pretrain`], additionally evaluating held-out episodes (drawn from
/// the valid partition) every `validate_every` steps and restoring the
/// best-validation snapshot at the end — the checkpoint-selection practice
/// the paper follows ("we checkpoint the model every 500 steps", §V-A4).
///
/// Returns the training curve and the best validation accuracy seen.
pub fn pretrain_with_validation(
    model: &mut GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
    validate_every: usize,
    valid_episodes: usize,
) -> (TrainingCurve, f32) {
    assert!(validate_every > 0, "validate_every must be positive");
    let total = cfg.steps;
    let mut done = 0usize;
    let mut best_acc = f32::NEG_INFINITY;
    let mut best_snapshot = model.store.snapshot();
    let mut curve = TrainingCurve::default();

    while done < total {
        let chunk = validate_every.min(total - done);
        let mut chunk_cfg = cfg.clone();
        chunk_cfg.steps = chunk;
        // Advance the episode stream deterministically across chunks.
        chunk_cfg.seed = cfg.seed.wrapping_add(done as u64);
        let part = pretrain(model, dataset, &chunk_cfg, stages);
        for (i, &s) in part.steps.iter().enumerate() {
            curve.steps.push(done + s);
            curve.loss.push(part.loss[i]);
            curve.accuracy.push(part.accuracy[i]);
        }
        done += chunk;

        let acc = validation_accuracy(model, dataset, cfg, stages, valid_episodes, done as u64);
        if acc > best_acc {
            best_acc = acc;
            best_snapshot = model.store.snapshot();
        }
    }
    model.store.restore(&best_snapshot);
    (curve, best_acc)
}

/// Mean accuracy over `episodes` held-out episodes (prompts from train,
/// queries from valid) under the current parameters.
fn validation_accuracy(
    model: &GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
    episodes: usize,
    salt: u64,
) -> f32 {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xa111 ^ salt);
    let sampler = RandomWalkSampler::new(cfg.sampler);
    let ways = cfg.ways.min(dataset.num_classes);
    let mut correct = 0usize;
    let mut totals = 0usize;
    for _ in 0..episodes.max(1) {
        let ep = sample_few_shot_from_splits(
            dataset,
            Split::Train,
            Split::Valid,
            ways,
            cfg.shots,
            cfg.queries,
            &mut rng,
        );
        let (p_points, p_labels): (Vec<_>, Vec<_>) = ep.candidates.iter().copied().unzip();
        let (q_points, q_labels): (Vec<_>, Vec<_>) = ep.queries.iter().copied().unzip();
        let p_sgs =
            sample_datapoint_subgraphs(&dataset.graph, &sampler, &p_points, dataset.task, &mut rng);
        let q_sgs =
            sample_datapoint_subgraphs(&dataset.graph, &sampler, &q_points, dataset.task, &mut rng);
        let mut sess = Session::new(&model.store);
        let (_, c) = episode_loss(
            model,
            &mut sess,
            &dataset.graph,
            &p_sgs,
            &p_labels,
            &q_sgs,
            &q_labels,
            ways,
            stages,
        );
        correct += c;
        totals += q_labels.len();
    }
    correct as f32 / totals.max(1) as f32
}

/// Run Alg. 1: pre-train `model` on `dataset` and return the training
/// curve. Stage toggles control what is trained (the Prodigy baseline
/// pre-trains with everything off — plain Prodigy episodes).
pub fn pretrain(
    model: &mut GraphPrompterModel,
    dataset: &Dataset,
    cfg: &PretrainConfig,
    stages: StageConfig,
) -> TrainingCurve {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let sampler = RandomWalkSampler::new(cfg.sampler);
    let mut opt = AdamW::new(cfg.lr, cfg.weight_decay);
    let mut curve = TrainingCurve::default();

    let ways = cfg.ways.min(dataset.num_classes);
    for step in 0..cfg.steps {
        let mut sess = Session::new(&model.store);

        // Multi-Task episode (Eq. 13): real labels, few-shot prompt format.
        let mt = sample_few_shot_from_splits(
            dataset,
            Split::Train,
            Split::Train,
            ways,
            cfg.shots,
            cfg.queries,
            &mut rng,
        );
        let (mt_prompt_points, mt_prompt_labels): (Vec<_>, Vec<_>) =
            mt.candidates.iter().copied().unzip();
        let (mt_query_points, mt_query_labels): (Vec<_>, Vec<_>) =
            mt.queries.iter().copied().unzip();
        let mt_prompt_sgs = sample_datapoint_subgraphs(
            &dataset.graph,
            &sampler,
            &mt_prompt_points,
            dataset.task,
            &mut rng,
        );
        let mt_query_sgs = sample_datapoint_subgraphs(
            &dataset.graph,
            &sampler,
            &mt_query_points,
            dataset.task,
            &mut rng,
        );
        let (mt_loss, mt_correct) = episode_loss(
            model,
            &mut sess,
            &dataset.graph,
            &mt_prompt_sgs,
            &mt_prompt_labels,
            &mt_query_sgs,
            &mt_query_labels,
            ways,
            stages,
        );
        let mt_total = mt_query_labels.len();

        // Neighbor-Matching episode (Eq. 12): pseudo-labels from locality.
        let nm_loss = sample_neighbor_matching(
            &dataset.graph,
            &sampler,
            cfg.nm_ways,
            cfg.nm_shots,
            cfg.nm_queries,
            &mut rng,
        )
        .map(|(np, nl, nq, nql)| {
            let np_sgs = sample_datapoint_subgraphs(
                &dataset.graph,
                &sampler,
                &np,
                Task::NodeClassification,
                &mut rng,
            );
            let nq_sgs = sample_datapoint_subgraphs(
                &dataset.graph,
                &sampler,
                &nq,
                Task::NodeClassification,
                &mut rng,
            );
            episode_loss(
                model,
                &mut sess,
                &dataset.graph,
                &np_sgs,
                &nl,
                &nq_sgs,
                &nql,
                cfg.nm_ways,
                stages,
            )
            .0
        });

        // L = L_NM + L_MT (Eq. 14).
        let total = match nm_loss {
            Some(nm) => sess.tape.add(mt_loss, nm),
            None => mt_loss,
        };
        let (loss_value, grads) = sess.grads(total);
        opt.step(&mut model.store, &grads);

        if step % cfg.log_every == 0 || step + 1 == cfg.steps {
            curve.steps.push(step);
            curve.loss.push(loss_value);
            curve.accuracy.push(mt_correct as f32 / mt_total.max(1) as f32);
        }
    }
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use gp_datasets::CitationConfig;
    use gp_graph::SamplerConfig;

    fn quick_cfg(steps: usize) -> PretrainConfig {
        PretrainConfig {
            steps,
            ways: 3,
            shots: 2,
            queries: 3,
            nm_ways: 3,
            nm_shots: 2,
            nm_queries: 3,
            log_every: 5,
            sampler: SamplerConfig { hops: 1, max_nodes: 10, neighbors_per_node: 5 },
            ..PretrainConfig::default()
        }
    }

    #[test]
    fn pretrain_reduces_loss() {
        let ds = CitationConfig::new("t", 300, 6, 21).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let curve = pretrain(&mut model, &ds, &quick_cfg(60), StageConfig::full());
        assert!(curve.loss.len() >= 3);
        let head: f32 = curve.loss[..2].iter().sum::<f32>() / 2.0;
        let tail: f32 = curve.loss[curve.loss.len() - 2..].iter().sum::<f32>() / 2.0;
        assert!(tail < head, "loss did not decrease: {head} -> {tail}");
    }

    #[test]
    fn neighbor_matching_episode_is_well_formed() {
        let ds = CitationConfig::new("t", 300, 4, 22).generate();
        let sampler = RandomWalkSampler::new(SamplerConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let (p, pl, q, ql) =
            sample_neighbor_matching(&ds.graph, &sampler, 3, 2, 3, &mut rng).unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(pl.len(), 6);
        assert_eq!(q.len(), 3);
        assert_eq!(ql.len(), 3);
        // Disjoint node use across the episode.
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for dp in p.iter().chain(&q) {
            let DataPoint::Node(n) = dp else { panic!("NM must use node datapoints") };
            assert!(seen.insert(*n), "node {n} reused across neighborhoods");
        }
        assert!(pl.iter().all(|&l| l < 3));
        assert!(ql.iter().all(|&l| l < 3));
    }

    #[test]
    fn pretrain_works_on_edge_task_dataset() {
        let ds = gp_datasets::KgConfig::new("t", 300, 6, 5, 23).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let curve = pretrain(&mut model, &ds, &quick_cfg(10), StageConfig::full());
        assert_eq!(curve.steps.len(), curve.loss.len());
        assert!(curve.loss.iter().all(|l| l.is_finite()));
    }

    #[test]
    fn validation_pretraining_restores_best_snapshot() {
        let ds = CitationConfig::new("t", 300, 5, 25).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let (curve, best) =
            pretrain_with_validation(&mut model, &ds, &quick_cfg(40), StageConfig::full(), 20, 2);
        assert!(curve.loss.iter().all(|l| l.is_finite()));
        assert!((0.0..=1.0).contains(&best), "best acc {best}");
        // The restored parameters must reproduce the best validation
        // accuracy exactly (same seed & salt ⇒ same episodes).
        // A weaker but robust check: the model is usable for inference.
        let cfg = crate::config::InferenceConfig {
            shots: 2,
            candidates_per_class: 4,
            ..crate::config::InferenceConfig::default()
        };
        let accs = crate::infer::evaluate_episodes(&model, &ds, 3, 8, 1, &cfg);
        assert_eq!(accs.len(), 1);
    }

    #[test]
    fn prodigy_stages_also_train() {
        let ds = CitationConfig::new("t", 250, 4, 24).generate();
        let mut model = GraphPrompterModel::new(ModelConfig {
            embed_dim: 16,
            hidden_dim: 24,
            ..ModelConfig::default()
        });
        let curve = pretrain(&mut model, &ds, &quick_cfg(10), StageConfig::prodigy());
        assert!(curve.loss.iter().all(|l| l.is_finite()));
    }
}
