//! Cross-episode memoization of candidate subgraph embeddings.
//!
//! Candidate datapoints repeat heavily across evaluation episodes (an
//! episode draws `N` candidates per class from the same train split), and
//! since PR "parallel kernels + embedding reuse" their subgraph RNG is
//! derived purely from `(candidate_seed, datapoint)` — see
//! [`crate::config::InferenceConfig::candidate_seed`] — a candidate's
//! embedding is a pure function of:
//!
//! * the datapoint,
//! * the candidate sampling seed,
//! * the sampler geometry (hops, node cap, fan-out),
//! * the reconstruction stage toggle,
//! * and the model weights.
//!
//! * the dataset the point indexes into (a `DataPoint` is only an id;
//!   `Node(7)` on two graphs is two different subgraphs),
//!
//! [`EmbeddingStore`] memoizes exactly that function. The dataset enters
//! the key as a fingerprint ([`EmbeddingStore::dataset_id`]) so one store
//! can serve an `Engine` that is evaluated against several graphs in turn
//! (the experiment harness does exactly that) without cross-dataset
//! collisions. Weights are tracked
//! by [`gp_nn::ParamStore::revision`]: any mutation (an optimizer step,
//! `try_set`, `try_restore`, a checkpoint load) bumps the revision, and
//! the store drops its entire contents the next time it is consulted with
//! a different revision — stale reuse is impossible by construction.
//!
//! The store is internally synchronized, so one instance can serve all
//! episode worker threads of an `Engine` evaluation concurrently. Capacity
//! is bounded with FIFO eviction; candidates are re-requested uniformly
//! across episodes, so recency tracking buys nothing here.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use gp_datasets::{DataPoint, Dataset, Task};
use gp_graph::SamplerConfig;

static HITS: gp_obs::Counter = gp_obs::Counter::new("embed_store.hits");
static MISSES: gp_obs::Counter = gp_obs::Counter::new("embed_store.misses");
static INVALIDATIONS: gp_obs::Counter = gp_obs::Counter::new("embed_store.invalidations");
static LEN: gp_obs::Gauge = gp_obs::Gauge::new("embed_store.len");

/// Memoization key: everything an embedding depends on except the weights
/// (which are handled by revision tracking on the whole store).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    dataset_id: u64,
    point: DataPoint,
    candidate_seed: u64,
    hops: usize,
    max_nodes: usize,
    neighbors_per_node: usize,
    use_reconstruction: bool,
}

/// One memoized result: the embedding row and its selector importance.
#[derive(Clone, Debug)]
struct Entry {
    embedding: Vec<f32>,
    importance: f32,
}

struct Inner {
    /// [`gp_nn::ParamStore::revision`] the entries were computed at.
    revision: u64,
    map: HashMap<Key, Entry>,
    order: VecDeque<Key>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// Counters describing how an [`EmbeddingStore`] has been used.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EmbedCacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required a fresh embedding.
    pub misses: u64,
    /// Times the whole store was dropped because the model weights
    /// changed underneath it.
    pub invalidations: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// Bounded, internally synchronized memo table for candidate embeddings.
pub struct EmbeddingStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl EmbeddingStore {
    /// A store holding at most `capacity` embeddings (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                revision: 0,
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                invalidations: 0,
            }),
        }
    }

    /// Maximum number of resident embeddings.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fingerprint used as the dataset axis of the memoization key. Hashes
    /// the dataset's name, task, class count, graph size and split sizes —
    /// cheap, stable for the lifetime of a `Dataset`, and distinct for any
    /// two datasets a caller could plausibly interleave on one engine. Two
    /// genuinely identical datasets (same generator config) fingerprint
    /// identically, so regenerating a dataset does not cold-start the
    /// cache.
    pub fn dataset_id(dataset: &Dataset) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        dataset.name.hash(&mut h);
        match dataset.task {
            Task::NodeClassification => 0u8.hash(&mut h),
            Task::EdgeClassification => 1u8.hash(&mut h),
        }
        dataset.num_classes.hash(&mut h);
        dataset.graph.num_nodes().hash(&mut h);
        dataset.graph.num_edges().hash(&mut h);
        dataset.train.len().hash(&mut h);
        dataset.valid.len().hash(&mut h);
        dataset.test.len().hash(&mut h);
        h.finish()
    }

    #[allow(clippy::too_many_arguments)]
    fn key(
        dataset_id: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
    ) -> Key {
        Key {
            dataset_id,
            point,
            candidate_seed,
            hops: sampler.hops,
            max_nodes: sampler.max_nodes,
            neighbors_per_node: sampler.neighbors_per_node,
            use_reconstruction,
        }
    }

    /// Adopt `revision` if it is newer than the store's, dropping every
    /// entry computed under older weights. Older revisions are never
    /// adopted ([`gp_nn::ParamStore::revision`] is monotonic, so an older
    /// revision can only mean a stale caller) — the callers treat them as
    /// a miss / no-op instead of letting them clear fresher entries.
    fn sync_revision(inner: &mut Inner, revision: u64) {
        if revision > inner.revision {
            if !inner.map.is_empty() {
                inner.invalidations += 1;
                INVALIDATIONS.inc();
                LEN.set(0);
            }
            inner.map.clear();
            inner.order.clear();
            inner.revision = revision;
        }
    }

    /// Fetch a memoized embedding, if one computed at exactly `revision`
    /// (the current [`gp_nn::ParamStore::revision`]) exists. A newer
    /// revision drops every entry before the lookup; an older one is
    /// answered as a miss without touching the store.
    #[allow(clippy::too_many_arguments)]
    pub fn lookup(
        &self,
        revision: u64,
        dataset_id: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
    ) -> Option<(Vec<f32>, f32)> {
        let key = Self::key(dataset_id, point, candidate_seed, sampler, use_reconstruction);
        // Poison recovery everywhere in this store: entries are only ever
        // written whole under the lock, so a panicking holder cannot leave
        // a torn entry — the worst case after recovery is a stale miss.
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::sync_revision(&mut inner, revision);
        match inner.map.get(&key) {
            Some(entry) if inner.revision == revision => {
                let out = (entry.embedding.clone(), entry.importance);
                inner.hits += 1;
                HITS.inc();
                Some(out)
            }
            _ => {
                inner.misses += 1;
                MISSES.inc();
                None
            }
        }
    }

    /// Memoize an embedding computed at `revision`. A newer revision
    /// evicts everything older first; an embedding computed at an older
    /// revision than the store's current one is silently discarded (it
    /// belongs to weights that no longer exist). FIFO eviction keeps the
    /// store within capacity.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        revision: u64,
        dataset_id: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
        embedding: Vec<f32>,
        importance: f32,
    ) {
        let key = Self::key(dataset_id, point, candidate_seed, sampler, use_reconstruction);
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Self::sync_revision(&mut inner, revision);
        if inner.revision != revision || inner.map.contains_key(&key) {
            // Stale revision (weights moved since this embedding was
            // computed) or a concurrent worker beat us to the slot with an
            // equal entry — either way there is nothing to store.
            return;
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(victim) => {
                    inner.map.remove(&victim);
                }
                None => break,
            }
        }
        inner.order.push_back(key);
        inner.map.insert(
            key,
            Entry {
                embedding,
                importance,
            },
        );
        LEN.set(inner.map.len() as i64);
    }

    /// Drop every entry (counters survive).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.map.clear();
        inner.order.clear();
        LEN.set(0);
    }

    /// Usage counters and current size.
    pub fn stats(&self) -> EmbedCacheStats {
        let inner = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        EmbedCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dataset axis used by tests that are not about dataset separation.
    const DS: u64 = 7;

    fn sampler() -> SamplerConfig {
        SamplerConfig::default()
    }

    #[test]
    fn lookup_after_insert_hits() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_none());
        store.insert(1, DS, p, 0, &sampler(), true, vec![1.0, 2.0], 0.5);
        let (emb, imp) = store.lookup(1, DS, p, 0, &sampler(), true).expect("hit");
        assert_eq!(emb, vec![1.0, 2.0]);
        assert_eq!(imp, 0.5);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn key_distinguishes_every_dimension() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        store.insert(1, DS, p, 0, &sampler(), true, vec![1.0], 0.5);
        // Different dataset, point, candidate seed, sampler geometry,
        // stage flag.
        assert!(store.lookup(1, DS + 1, p, 0, &sampler(), true).is_none());
        assert!(store.lookup(1, DS, DataPoint::Node(4), 0, &sampler(), true).is_none());
        assert!(store.lookup(1, DS, DataPoint::Edge(3), 0, &sampler(), true).is_none());
        assert!(store.lookup(1, DS, p, 9, &sampler(), true).is_none());
        let mut other = sampler();
        other.max_nodes += 1;
        assert!(store.lookup(1, DS, p, 0, &other, true).is_none());
        assert!(store.lookup(1, DS, p, 0, &sampler(), false).is_none());
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_some());
    }

    #[test]
    fn same_point_id_on_two_datasets_never_collides() {
        // The high-stakes case: Node(i) on graph A and Node(i) on graph B
        // are different subgraphs; the store must keep both.
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        store.insert(1, 100, p, 0, &sampler(), true, vec![1.0], 0.1);
        store.insert(1, 200, p, 0, &sampler(), true, vec![2.0], 0.2);
        assert_eq!(store.lookup(1, 100, p, 0, &sampler(), true).unwrap().0, vec![1.0]);
        assert_eq!(store.lookup(1, 200, p, 0, &sampler(), true).unwrap().0, vec![2.0]);
        assert_eq!(store.stats().len, 2);
    }

    #[test]
    fn dataset_id_separates_different_graphs_and_is_stable() {
        let a = gp_datasets::CitationConfig::new("a", 120, 4, 1).generate();
        let b = gp_datasets::CitationConfig::new("b", 150, 5, 2).generate();
        assert_ne!(EmbeddingStore::dataset_id(&a), EmbeddingStore::dataset_id(&b));
        // Same generator config → same fingerprint (regeneration must not
        // cold-start the cache).
        let a2 = gp_datasets::CitationConfig::new("a", 120, 4, 1).generate();
        assert_eq!(EmbeddingStore::dataset_id(&a), EmbeddingStore::dataset_id(&a2));
    }

    #[test]
    fn revision_change_drops_everything() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(1);
        store.insert(1, DS, p, 0, &sampler(), true, vec![1.0], 0.1);
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_some());
        // The weights moved: the cached row must be gone.
        assert!(store.lookup(2, DS, p, 0, &sampler(), true).is_none());
        assert_eq!(store.stats().invalidations, 1);
        // And it stays gone for the old revision's entries.
        assert_eq!(store.stats().len, 0);
    }

    #[test]
    fn stale_revision_never_clears_or_pollutes_newer_entries() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(1);
        store.insert(2, DS, p, 0, &sampler(), true, vec![2.0], 0.2);
        // A straggler insert computed under older weights is discarded…
        store.insert(1, DS, DataPoint::Node(9), 0, &sampler(), true, vec![1.0], 0.1);
        // …and a stale lookup is a plain miss: neither may drop the
        // revision-2 entry.
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_none());
        assert_eq!(store.stats().len, 1);
        let (emb, _) = store.lookup(2, DS, p, 0, &sampler(), true).expect("fresh entry survives");
        assert_eq!(emb, vec![2.0]);
    }

    #[test]
    fn fifo_eviction_bounds_memory() {
        let store = EmbeddingStore::new(2);
        for i in 0..5u32 {
            store.insert(1, DS, DataPoint::Node(i), 0, &sampler(), true, vec![i as f32], 0.0);
        }
        assert_eq!(store.stats().len, 2);
        // The two most recent survive.
        assert!(store.lookup(1, DS, DataPoint::Node(3), 0, &sampler(), true).is_some());
        assert!(store.lookup(1, DS, DataPoint::Node(4), 0, &sampler(), true).is_some());
        assert!(store.lookup(1, DS, DataPoint::Node(0), 0, &sampler(), true).is_none());
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // raw threads on purpose: hammer the store from outside any pool
    fn concurrent_access_is_safe() {
        let store = EmbeddingStore::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..50u32 {
                        let p = DataPoint::Node(i % 8);
                        if store.lookup(1, DS, p, 0, &sampler(), true).is_none() {
                            store.insert(1, DS, p, 0, &sampler(), true, vec![(i + t) as f32], 0.0);
                        }
                    }
                });
            }
        });
        assert!(store.stats().len <= 8);
    }
}
