//! Cross-episode memoization of candidate subgraph embeddings.
//!
//! Candidate datapoints repeat heavily across evaluation episodes (an
//! episode draws `N` candidates per class from the same train split), and
//! since PR "parallel kernels + embedding reuse" their subgraph RNG is
//! derived purely from `(candidate_seed, datapoint)` — see
//! [`crate::config::InferenceConfig::candidate_seed`] — a candidate's
//! embedding is a pure function of:
//!
//! * the datapoint,
//! * the candidate sampling seed,
//! * the sampler geometry (hops, node cap, fan-out),
//! * the reconstruction stage toggle,
//! * the dataset the point indexes into (a `DataPoint` is only an id;
//!   `Node(7)` on two graphs is two different subgraphs),
//! * and the model weights.
//!
//! [`EmbeddingStore`] memoizes exactly that function, in two tiers:
//!
//! * **L0 (RAM)** — an [`crate::LfuCache`] of f32 rows. Lookups bump the
//!   use count; the least-frequently-used entry (FIFO within a count) is
//!   the eviction victim.
//! * **L1 (disk, optional)** — persistent GPES shards
//!   ([`crate::embed_disk`]), one per `(dataset, revision)`, holding
//!   quantized rows. L0 evictions *demote* into L1; an L1 hit dequantizes
//!   and *promotes* back into L0. Shards survive the process, so a
//!   restarted engine (same weights, same backend) warm-starts instead of
//!   re-embedding its prompt pool.
//!
//! The dataset enters the key as a fingerprint
//! ([`EmbeddingStore::dataset_id`]) covering the dataset's shape *and a
//! sample of its contents* (feature rows, edge endpoints), so one store
//! can serve an `Engine` that is evaluated against several graphs in turn
//! without cross-dataset collisions — including two same-shape datasets
//! generated from different seeds. Weights are tracked by
//! [`gp_nn::ParamStore::revision`]: any mutation bumps the revision and
//! both tiers drop their contents the next time the store is consulted —
//! stale reuse is impossible by construction. Because revision counters
//! are process-local, the disk tier additionally records a fingerprint of
//! the weight bits (see [`EmbeddingStore::set_weights_context`]); until
//! the context is installed the store runs L0-only.
//!
//! The store is internally synchronized, so one instance can serve all
//! episode worker threads of an `Engine` evaluation concurrently.
//!
//! Process-wide metrics: the `embed_store.*` counters and the
//! `embed_store.len` / `embed_store.disk.len` gauges aggregate across
//! *all* live stores (gp-serve runs one store per session): each store
//! publishes only the delta of its own residency, so concurrent sessions
//! add up instead of overwriting each other. Per-store numbers come from
//! [`EmbeddingStore::stats`], which is the per-session source of truth.

use std::hash::{Hash, Hasher};
use std::sync::Mutex;

use gp_datasets::{DataPoint, Dataset, Task};
use gp_graph::SamplerConfig;

use crate::embed_disk::{DiskTier, DiskTierConfig};
use crate::lfu::LfuCache;

static HITS: gp_obs::Counter = gp_obs::Counter::new("embed_store.hits");
static MISSES: gp_obs::Counter = gp_obs::Counter::new("embed_store.misses");
static INVALIDATIONS: gp_obs::Counter = gp_obs::Counter::new("embed_store.invalidations");
static LEN: gp_obs::Gauge = gp_obs::Gauge::new("embed_store.len");
static DISK_HITS: gp_obs::Counter = gp_obs::Counter::new("embed_store.disk.hits");
static DISK_LEN: gp_obs::Gauge = gp_obs::Gauge::new("embed_store.disk.len");
static DEMOTIONS: gp_obs::Counter = gp_obs::Counter::new("embed_store.demotions");
static PROMOTIONS: gp_obs::Counter = gp_obs::Counter::new("embed_store.promotions");

/// Memoization key: everything an embedding depends on except the weights
/// (which are handled by revision tracking on the whole store).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct Key {
    pub(crate) dataset_id: u64,
    pub(crate) point: DataPoint,
    pub(crate) candidate_seed: u64,
    pub(crate) hops: usize,
    pub(crate) max_nodes: usize,
    pub(crate) neighbors_per_node: usize,
    pub(crate) use_reconstruction: bool,
}

/// One memoized result: the embedding row and its selector importance.
#[derive(Clone, Debug)]
pub(crate) struct Entry {
    pub(crate) embedding: Vec<f32>,
    pub(crate) importance: f32,
}

struct Inner {
    /// [`gp_nn::ParamStore::revision`] the entries were computed at.
    revision: u64,
    /// Fingerprint of the weight bits at `revision`, once the owning
    /// engine has installed it. The disk tier is inert without it.
    weights_fp: Option<u64>,
    l0: LfuCache<Key, Entry>,
    disk: Option<DiskTier>,
    hits: u64,
    misses: u64,
    invalidations: u64,
    disk_hits: u64,
    demotions: u64,
    promotions: u64,
    /// L0/L1 sizes last published to the aggregate gauges; publishing
    /// deltas (not absolutes) keeps multiple live stores additive.
    reported_len: i64,
    reported_disk_len: i64,
}

impl Inner {
    /// Publish residency changes to the process-wide gauges as deltas.
    fn refresh_gauges(&mut self) {
        let len = self.l0.len() as i64;
        if len != self.reported_len {
            LEN.offset(len - self.reported_len);
            self.reported_len = len;
        }
        let disk_len = self.disk.as_ref().map_or(0, DiskTier::len) as i64;
        if disk_len != self.reported_disk_len {
            DISK_LEN.offset(disk_len - self.reported_disk_len);
            self.reported_disk_len = disk_len;
        }
    }
}

/// Counters describing how an [`EmbeddingStore`] has been used.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EmbedCacheStats {
    /// Lookups answered from the store (either tier).
    pub hits: u64,
    /// Lookups that required a fresh embedding.
    pub misses: u64,
    /// Times the whole store was dropped because the model weights
    /// changed underneath it.
    pub invalidations: u64,
    /// Entries currently resident in the RAM tier.
    pub len: usize,
    /// The subset of `hits` answered by the disk tier (always 0 without
    /// one).
    pub disk_hits: u64,
    /// RAM-tier evictions parked in the disk tier.
    pub demotions: u64,
    /// Disk-tier hits copied back into the RAM tier.
    pub promotions: u64,
    /// Entries currently resident in the disk tier's open shards.
    pub disk_len: usize,
    /// Damaged shard files detected (CRC/structure) and discarded as cold
    /// misses.
    pub corrupt_shards: u64,
}

/// Bounded, internally synchronized, optionally disk-backed memo table
/// for candidate embeddings.
pub struct EmbeddingStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl EmbeddingStore {
    /// A RAM-only store holding at most `capacity` embeddings (clamped to
    /// ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// A tiered store: `capacity` embeddings in RAM, overflow demoted to
    /// persistent GPES shards under `disk.dir`. The disk tier stays inert
    /// until [`EmbeddingStore::set_weights_context`] ties the current
    /// revision to actual weight bits.
    pub fn with_disk_tier(capacity: usize, disk: DiskTierConfig) -> Self {
        Self::build(capacity, Some(DiskTier::new(disk)))
    }

    fn build(capacity: usize, disk: Option<DiskTier>) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            inner: Mutex::new(Inner {
                revision: 0,
                weights_fp: None,
                l0: LfuCache::new(capacity),
                disk,
                hits: 0,
                misses: 0,
                invalidations: 0,
                disk_hits: 0,
                demotions: 0,
                promotions: 0,
                reported_len: 0,
                reported_disk_len: 0,
            }),
        }
    }

    /// Maximum number of RAM-resident embeddings.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True when this store was built with a persistent disk tier.
    pub fn has_disk_tier(&self) -> bool {
        self.lock().disk.is_some()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Poison recovery everywhere in this store: entries are only ever
        // written whole under the lock, so a panicking holder cannot leave
        // a torn entry — the worst case after recovery is a stale miss.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Fingerprint used as the dataset axis of the memoization key. Hashes
    /// the dataset's name, task, class count, graph size, split sizes,
    /// *and a strided sample of its contents* (up to 16 node-feature rows
    /// and 16 edge triples) — cheap, stable for the lifetime of a
    /// `Dataset`, and distinct for any two datasets a caller could
    /// plausibly interleave on one engine. The content sample is what
    /// separates two datasets generated from the same config with
    /// different seeds: they agree on every size, but not on feature bits
    /// or edge endpoints. Two genuinely identical datasets (same generator
    /// config, same seed) fingerprint identically, so regenerating a
    /// dataset does not cold-start the cache.
    pub fn dataset_id(dataset: &Dataset) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        dataset.name.hash(&mut h);
        match dataset.task {
            Task::NodeClassification => 0u8.hash(&mut h),
            Task::EdgeClassification => 1u8.hash(&mut h),
        }
        dataset.num_classes.hash(&mut h);
        dataset.graph.num_nodes().hash(&mut h);
        dataset.graph.num_edges().hash(&mut h);
        dataset.train.len().hash(&mut h);
        dataset.valid.len().hash(&mut h);
        dataset.test.len().hash(&mut h);
        // Content sample: same-shape datasets from different seeds agree
        // on everything above, so fold in actual bits.
        let n = dataset.graph.num_nodes();
        if n > 0 {
            let stride = (n / 16).max(1);
            let mut v = 0;
            while v < n {
                for x in dataset.graph.feature_row(v as u32) {
                    x.to_bits().hash(&mut h);
                }
                v += stride;
            }
        }
        let m = dataset.graph.num_edges();
        if m > 0 {
            let stride = (m / 16).max(1);
            let mut e = 0;
            while e < m {
                let t = dataset.graph.triple(e as u32);
                t.head.hash(&mut h);
                t.rel.hash(&mut h);
                t.tail.hash(&mut h);
                e += stride;
            }
        }
        h.finish()
    }

    fn key(
        dataset_id: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
    ) -> Key {
        Key {
            dataset_id,
            point,
            candidate_seed,
            hops: sampler.hops,
            max_nodes: sampler.max_nodes,
            neighbors_per_node: sampler.neighbors_per_node,
            use_reconstruction,
        }
    }

    /// Adopt `revision` if it is newer than the store's, dropping both
    /// tiers (entries computed under older weights, including their shard
    /// files). Older revisions are never adopted
    /// ([`gp_nn::ParamStore::revision`] is monotonic, so an older revision
    /// can only mean a stale caller) — the callers treat them as a miss /
    /// no-op instead of letting them clear fresher entries.
    fn sync_revision(&self, inner: &mut Inner, revision: u64) {
        if revision > inner.revision {
            let had_entries =
                !inner.l0.is_empty() || inner.disk.as_ref().is_some_and(|d| d.len() > 0);
            if had_entries {
                inner.invalidations += 1;
                INVALIDATIONS.inc();
            }
            inner.l0 = LfuCache::new(self.capacity);
            if let Some(disk) = inner.disk.as_mut() {
                disk.invalidate();
            }
            inner.revision = revision;
            inner.weights_fp = None;
            inner.refresh_gauges();
        }
    }

    /// Install the fingerprint of the weight bits backing `revision`,
    /// arming the disk tier. Revision counters are process-local, so the
    /// fingerprint (weight bits + compute backend) is what lets a shard
    /// written by a previous process be trusted — or rejected — on a warm
    /// start. The owning engine calls this before every episode batch;
    /// external callers only need it when driving the store directly.
    pub fn set_weights_context(&self, revision: u64, weights_fp: u64) {
        let mut inner = self.lock();
        // gp-lint: allow(C2) — sync_revision may drop stale shards on disk; the inner mutex IS the store's single-writer serialization point (tiered design)
        self.sync_revision(&mut inner, revision);
        if inner.revision == revision {
            inner.weights_fp = Some(weights_fp);
        }
    }

    /// Fetch a memoized embedding, if one computed at exactly `revision`
    /// (the current [`gp_nn::ParamStore::revision`]) exists in either
    /// tier. A newer revision drops every entry before the lookup; an
    /// older one is answered as a miss without touching the store. A disk
    /// hit dequantizes the row and promotes it into the RAM tier.
    pub fn lookup(
        &self,
        revision: u64,
        dataset_id: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
    ) -> Option<(Vec<f32>, f32)> {
        let key = Self::key(dataset_id, point, candidate_seed, sampler, use_reconstruction);
        let mut inner = self.lock();
        // gp-lint: allow(C2) — revision sync under the store lock is the design: a lookup must never race a shard invalidation
        self.sync_revision(&mut inner, revision);
        if inner.revision == revision {
            if let Some(entry) = inner.l0.get(&key) {
                let out = (entry.embedding.clone(), entry.importance);
                inner.hits += 1;
                HITS.inc();
                return Some(out);
            }
            let inner = &mut *inner;
            if let (Some(fp), Some(disk)) = (inner.weights_fp, inner.disk.as_mut()) {
                if let Some((embedding, importance)) = disk.lookup(&key, revision, fp) {
                    inner.hits += 1;
                    inner.disk_hits += 1;
                    inner.promotions += 1;
                    HITS.inc();
                    DISK_HITS.inc();
                    PROMOTIONS.inc();
                    let evicted = inner.l0.insert(
                        key,
                        Entry {
                            embedding: embedding.clone(),
                            importance,
                        },
                    );
                    if let Some((vk, ve)) = evicted {
                        disk.demote(vk, &ve, revision, fp);
                        inner.demotions += 1;
                        DEMOTIONS.inc();
                        if disk.should_autoflush() {
                            disk.flush();
                        }
                    }
                    inner.refresh_gauges();
                    return Some((embedding, importance));
                }
            }
            inner.misses += 1;
            MISSES.inc();
            inner.refresh_gauges();
            return None;
        }
        inner.misses += 1;
        MISSES.inc();
        None
    }

    /// Memoize an embedding computed at `revision`. A newer revision
    /// evicts everything older first; an embedding computed at an older
    /// revision than the store's current one is silently discarded (it
    /// belongs to weights that no longer exist). The RAM tier's LFU
    /// eviction victim is demoted to the disk tier when one is armed.
    #[allow(clippy::too_many_arguments)]
    pub fn insert(
        &self,
        revision: u64,
        dataset_id: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
        embedding: Vec<f32>,
        importance: f32,
    ) {
        let key = Self::key(dataset_id, point, candidate_seed, sampler, use_reconstruction);
        let mut inner = self.lock();
        // gp-lint: allow(C2) — same single-writer contract as lookup: insert and revision sync are atomic under the inner mutex
        self.sync_revision(&mut inner, revision);
        if inner.revision != revision || inner.l0.peek(&key).is_some() {
            // Stale revision (weights moved since this embedding was
            // computed) or a concurrent worker beat us to the slot with an
            // equal entry — either way there is nothing to store.
            return;
        }
        let inner = &mut *inner;
        let evicted = inner.l0.insert(
            key,
            Entry {
                embedding,
                importance,
            },
        );
        if let (Some((vk, ve)), Some(fp)) = (evicted, inner.weights_fp) {
            if let Some(disk) = inner.disk.as_mut() {
                // gp-lint: allow(C2) — demotion quantizes into the in-memory shard buffer; actual disk writes batch up behind should_autoflush
                disk.demote(vk, &ve, inner.revision, fp);
                inner.demotions += 1;
                DEMOTIONS.inc();
                if disk.should_autoflush() {
                    // gp-lint: allow(C2) — autoflush under the lock is deliberate: a consistent shard snapshot needs the store frozen while rows serialize
                    disk.flush();
                }
            }
        }
        inner.refresh_gauges();
    }

    /// Drop every entry in both tiers, including the current shard files
    /// — a full cold start (counters survive).
    pub fn clear(&self) {
        let mut inner = self.lock();
        let inner = &mut *inner;
        inner.l0 = LfuCache::new(self.capacity);
        if let Some(disk) = inner.disk.as_mut() {
            // gp-lint: allow(C2) — clear() must atomically drop RAM and disk tiers; unlocking between them would let a reader see half a store
            disk.invalidate();
        }
        inner.refresh_gauges();
    }

    /// Persist the store to its disk tier: RAM-resident entries are
    /// written back into their shards and every dirty shard is rewritten
    /// atomically (temp → fsync → rename). Returns the number of entries
    /// persisted. A no-op (0) without a disk tier, or before
    /// [`EmbeddingStore::set_weights_context`] has armed it. Also runs on
    /// drop, and automatically every
    /// [`crate::embed_disk::DiskTierConfig::flush_every`] demotions.
    pub fn flush(&self) -> usize {
        let mut inner = self.lock();
        // gp-lint: allow(C2) — flush-under-lock is the persistence contract: the shard on disk is a frozen snapshot of the locked store
        self.flush_locked(&mut inner, None)
    }

    /// [`EmbeddingStore::flush`] with an injected crash inside the shard
    /// write — fault-injection tests prove a kill mid-flush leaves the
    /// previous shard (or nothing), never a torn file.
    #[doc(hidden)]
    pub fn flush_with_fault(&self, fault: crate::checkpoint::WriteFault) -> usize {
        let mut inner = self.lock();
        // gp-lint: allow(C2) — fault-injection twin of flush(); same frozen-snapshot contract
        self.flush_locked(&mut inner, Some(fault))
    }

    fn flush_locked(
        &self,
        inner: &mut Inner,
        fault: Option<crate::checkpoint::WriteFault>,
    ) -> usize {
        let inner = &mut *inner;
        let Some(fp) = inner.weights_fp else { return 0 };
        let Some(disk) = inner.disk.as_mut() else { return 0 };
        let revision = inner.revision;
        for key in inner.l0.ordered_keys() {
            if let Some(entry) = inner.l0.peek(&key) {
                disk.demote(key, entry, revision, fp);
            }
        }
        let written = match fault {
            None => disk.flush(),
            Some(f) => disk.flush_with_fault(f),
        };
        inner.refresh_gauges();
        written
    }

    /// Usage counters and current per-tier sizes. This is the per-store
    /// (per-session, in gp-serve) source of truth; the `embed_store.*`
    /// gp-obs instruments aggregate across every live store.
    pub fn stats(&self) -> EmbedCacheStats {
        let inner = self.lock();
        EmbedCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            len: inner.l0.len(),
            disk_hits: inner.disk_hits,
            demotions: inner.demotions,
            promotions: inner.promotions,
            disk_len: inner.disk.as_ref().map_or(0, DiskTier::len),
            corrupt_shards: inner.disk.as_ref().map_or(0, DiskTier::corrupt_shards),
        }
    }
}

impl Drop for EmbeddingStore {
    fn drop(&mut self) {
        // Best-effort persistence, then retract this store's contribution
        // to the aggregate gauges so surviving stores keep them accurate.
        let mut inner = self.lock();
        // gp-lint: allow(C2) — drop-time flush; the store is unreachable so the held guard cannot stall any other thread
        self.flush_locked(&mut inner, None);
        if inner.reported_len != 0 {
            LEN.offset(-inner.reported_len);
            inner.reported_len = 0;
        }
        if inner.reported_disk_len != 0 {
            DISK_LEN.offset(-inner.reported_disk_len);
            inner.reported_disk_len = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::embed_disk::Quantization;
    use std::path::PathBuf;

    /// Dataset axis used by tests that are not about dataset separation.
    const DS: u64 = 7;

    fn sampler() -> SamplerConfig {
        SamplerConfig::default()
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gp_estore_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&d).ok();
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn tiered(capacity: usize, dir: &PathBuf) -> EmbeddingStore {
        let store = EmbeddingStore::with_disk_tier(capacity, DiskTierConfig::new(dir));
        store.set_weights_context(1, 42);
        store
    }

    #[test]
    fn lookup_after_insert_hits() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_none());
        store.insert(1, DS, p, 0, &sampler(), true, vec![1.0, 2.0], 0.5);
        let (emb, imp) = store.lookup(1, DS, p, 0, &sampler(), true).expect("hit");
        assert_eq!(emb, vec![1.0, 2.0]);
        assert_eq!(imp, 0.5);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn key_distinguishes_every_dimension() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        store.insert(1, DS, p, 0, &sampler(), true, vec![1.0], 0.5);
        // Different dataset, point, candidate seed, sampler geometry,
        // stage flag.
        assert!(store.lookup(1, DS + 1, p, 0, &sampler(), true).is_none());
        assert!(store.lookup(1, DS, DataPoint::Node(4), 0, &sampler(), true).is_none());
        assert!(store.lookup(1, DS, DataPoint::Edge(3), 0, &sampler(), true).is_none());
        assert!(store.lookup(1, DS, p, 9, &sampler(), true).is_none());
        let mut other = sampler();
        other.max_nodes += 1;
        assert!(store.lookup(1, DS, p, 0, &other, true).is_none());
        assert!(store.lookup(1, DS, p, 0, &sampler(), false).is_none());
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_some());
    }

    #[test]
    fn same_point_id_on_two_datasets_never_collides() {
        // The high-stakes case: Node(i) on graph A and Node(i) on graph B
        // are different subgraphs; the store must keep both.
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        store.insert(1, 100, p, 0, &sampler(), true, vec![1.0], 0.1);
        store.insert(1, 200, p, 0, &sampler(), true, vec![2.0], 0.2);
        assert_eq!(store.lookup(1, 100, p, 0, &sampler(), true).unwrap().0, vec![1.0]);
        assert_eq!(store.lookup(1, 200, p, 0, &sampler(), true).unwrap().0, vec![2.0]);
        assert_eq!(store.stats().len, 2);
    }

    #[test]
    fn dataset_id_separates_different_graphs_and_is_stable() {
        let a = gp_datasets::CitationConfig::new("a", 120, 4, 1).generate();
        let b = gp_datasets::CitationConfig::new("b", 150, 5, 2).generate();
        assert_ne!(EmbeddingStore::dataset_id(&a), EmbeddingStore::dataset_id(&b));
        // Same generator config → same fingerprint (regeneration must not
        // cold-start the cache).
        let a2 = gp_datasets::CitationConfig::new("a", 120, 4, 1).generate();
        assert_eq!(EmbeddingStore::dataset_id(&a), EmbeddingStore::dataset_id(&a2));
    }

    #[test]
    fn dataset_id_separates_same_shape_different_seed() {
        // Regression: two datasets from the same config except the seed
        // agree on every size the old fingerprint hashed; only the content
        // sample tells them apart. Serving one's embeddings for the other
        // would be silent corruption.
        let mut cfg_a = gp_datasets::CitationConfig::new("cora", 120, 4, 1);
        let mut cfg_b = gp_datasets::CitationConfig::new("cora", 120, 4, 1);
        cfg_a.seed = 11;
        cfg_b.seed = 12;
        let a = cfg_a.generate();
        let b = cfg_b.generate();
        assert_eq!(a.graph.num_nodes(), b.graph.num_nodes());
        assert_eq!(a.num_classes, b.num_classes);
        assert_ne!(EmbeddingStore::dataset_id(&a), EmbeddingStore::dataset_id(&b));

        let mut kg_a = gp_datasets::KgConfig::new("fb", 100, 6, 3, 1);
        let mut kg_b = gp_datasets::KgConfig::new("fb", 100, 6, 3, 1);
        kg_a.seed = 21;
        kg_b.seed = 22;
        let ka = kg_a.generate();
        let kb = kg_b.generate();
        assert_ne!(EmbeddingStore::dataset_id(&ka), EmbeddingStore::dataset_id(&kb));
    }

    #[test]
    fn revision_change_drops_everything() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(1);
        store.insert(1, DS, p, 0, &sampler(), true, vec![1.0], 0.1);
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_some());
        // The weights moved: the cached row must be gone.
        assert!(store.lookup(2, DS, p, 0, &sampler(), true).is_none());
        assert_eq!(store.stats().invalidations, 1);
        // And it stays gone for the old revision's entries.
        assert_eq!(store.stats().len, 0);
    }

    #[test]
    fn stale_revision_never_clears_or_pollutes_newer_entries() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(1);
        store.insert(2, DS, p, 0, &sampler(), true, vec![2.0], 0.2);
        // A straggler insert computed under older weights is discarded…
        store.insert(1, DS, DataPoint::Node(9), 0, &sampler(), true, vec![1.0], 0.1);
        // …and a stale lookup is a plain miss: neither may drop the
        // revision-2 entry.
        assert!(store.lookup(1, DS, p, 0, &sampler(), true).is_none());
        assert_eq!(store.stats().len, 1);
        let (emb, _) = store.lookup(2, DS, p, 0, &sampler(), true).expect("fresh entry survives");
        assert_eq!(emb, vec![2.0]);
    }

    #[test]
    fn eviction_bounds_memory() {
        let store = EmbeddingStore::new(2);
        for i in 0..5u32 {
            store.insert(1, DS, DataPoint::Node(i), 0, &sampler(), true, vec![i as f32], 0.0);
        }
        assert_eq!(store.stats().len, 2);
        // All entries are use-count 1, so LFU falls back to FIFO: the two
        // most recent survive.
        assert!(store.lookup(1, DS, DataPoint::Node(3), 0, &sampler(), true).is_some());
        assert!(store.lookup(1, DS, DataPoint::Node(4), 0, &sampler(), true).is_some());
        assert!(store.lookup(1, DS, DataPoint::Node(0), 0, &sampler(), true).is_none());
    }

    #[test]
    fn lfu_keeps_hot_entries_over_recent_ones() {
        let store = EmbeddingStore::new(2);
        store.insert(1, DS, DataPoint::Node(0), 0, &sampler(), true, vec![0.0], 0.0);
        store.insert(1, DS, DataPoint::Node(1), 0, &sampler(), true, vec![1.0], 0.0);
        // Heat up node 0; node 1 stays at use count 1.
        for _ in 0..3 {
            assert!(store.lookup(1, DS, DataPoint::Node(0), 0, &sampler(), true).is_some());
        }
        store.insert(1, DS, DataPoint::Node(2), 0, &sampler(), true, vec![2.0], 0.0);
        // The cold entry (node 1) was the victim, not the hot one.
        assert!(store.lookup(1, DS, DataPoint::Node(0), 0, &sampler(), true).is_some());
        assert!(store.lookup(1, DS, DataPoint::Node(1), 0, &sampler(), true).is_none());
    }

    #[test]
    #[allow(clippy::disallowed_methods)] // raw threads on purpose: hammer the store from outside any pool
    fn concurrent_access_is_safe() {
        let store = EmbeddingStore::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..50u32 {
                        let p = DataPoint::Node(i % 8);
                        if store.lookup(1, DS, p, 0, &sampler(), true).is_none() {
                            store.insert(1, DS, p, 0, &sampler(), true, vec![(i + t) as f32], 0.0);
                        }
                    }
                });
            }
        });
        assert!(store.stats().len <= 8);
    }

    // -- Tiered behavior ---------------------------------------------------

    #[test]
    fn demotion_and_promotion_roundtrip_bit_exact() {
        let dir = tmpdir("promote");
        let store = tiered(2, &dir);
        let rows: Vec<Vec<f32>> = (0..4).map(|i| vec![i as f32 * 0.37, -(i as f32)]).collect();
        for (i, row) in rows.iter().enumerate() {
            store.insert(1, DS, DataPoint::Node(i as u32), 0, &sampler(), true, row.clone(), 0.1);
        }
        // Capacity 2: nodes 0 and 1 were demoted to disk.
        let s = store.stats();
        assert_eq!(s.len, 2);
        assert_eq!(s.disk_len, 2);
        assert_eq!(s.demotions, 2);
        // A demoted entry still hits — from disk, bit-exact (f32 tier) —
        // and is promoted back into RAM.
        let (emb, imp) = store.lookup(1, DS, DataPoint::Node(0), 0, &sampler(), true).expect("disk hit");
        assert_eq!(emb, rows[0]);
        assert_eq!(imp, 0.1);
        let s = store.stats();
        assert_eq!(s.disk_hits, 1);
        assert_eq!(s.promotions, 1);
        // Promotion evicted something from L0 into the disk tier.
        assert_eq!(s.len, 2);
        assert!(s.demotions >= 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_start_from_disk_after_restart() {
        let dir = tmpdir("warm");
        let row = vec![0.5f32, -2.25, 3.0e-5];
        {
            let store = tiered(4, &dir);
            store.insert(1, DS, DataPoint::Node(9), 0, &sampler(), true, row.clone(), 0.7);
            assert!(store.flush() >= 1);
        } // drop also flushes; the block simulates process death

        // "Restart": a fresh store over the same directory, same weights
        // fingerprint → the entry is served from disk without recompute.
        let store2 = tiered(4, &dir);
        let (emb, imp) = store2.lookup(1, DS, DataPoint::Node(9), 0, &sampler(), true).expect("warm");
        assert_eq!(emb, row);
        assert_eq!(imp, 0.7);
        assert_eq!(store2.stats().disk_hits, 1);

        // Different weights fingerprint → cold, nothing served.
        let store3 = EmbeddingStore::with_disk_tier(4, DiskTierConfig::new(&dir));
        store3.set_weights_context(1, 43);
        assert!(store3.lookup(1, DS, DataPoint::Node(9), 0, &sampler(), true).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn revision_bump_invalidates_both_tiers() {
        let dir = tmpdir("rev_bump");
        let store = tiered(1, &dir);
        store.insert(1, DS, DataPoint::Node(0), 0, &sampler(), true, vec![0.0], 0.0);
        store.insert(1, DS, DataPoint::Node(1), 0, &sampler(), true, vec![1.0], 0.0);
        store.flush();
        let s = store.stats();
        assert!(s.disk_len >= 1 && s.len == 1);

        // Weights moved: both tiers must be empty, and the shard file gone.
        store.set_weights_context(2, 43);
        let s = store.stats();
        assert_eq!((s.len, s.disk_len), (0, 0));
        assert!(store.lookup(2, DS, DataPoint::Node(0), 0, &sampler(), true).is_none());
        assert!(store.lookup(2, DS, DataPoint::Node(1), 0, &sampler(), true).is_none());
        let shards: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".gpes"))
            .collect();
        assert!(shards.is_empty(), "old-revision shard files must be deleted");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_tier_inert_without_weights_context() {
        let dir = tmpdir("inert");
        let store = EmbeddingStore::with_disk_tier(1, DiskTierConfig::new(&dir));
        // No set_weights_context: evictions are dropped, not demoted.
        store.insert(1, DS, DataPoint::Node(0), 0, &sampler(), true, vec![0.0], 0.0);
        store.insert(1, DS, DataPoint::Node(1), 0, &sampler(), true, vec![1.0], 0.0);
        let s = store.stats();
        assert_eq!((s.len, s.disk_len, s.demotions), (1, 0, 0));
        assert_eq!(store.flush(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn quantized_tiers_bound_dequantize_error() {
        for (q, tol_rel, tol_abs) in [
            (Quantization::F16, 1.0 / 2048.0, 1e-6),
            (Quantization::I8, 0.0, 1.7 / 127.0 * 0.5 + 1e-6),
        ] {
            let dir = tmpdir(q.name());
            let store = EmbeddingStore::with_disk_tier(1, DiskTierConfig::new(&dir).quantization(q));
            store.set_weights_context(1, 42);
            let row: Vec<f32> = (0..16).map(|i| (i as f32 * 0.211 - 1.7).sin() * 1.7).collect();
            store.insert(1, DS, DataPoint::Node(0), 0, &sampler(), true, row.clone(), 0.3);
            // Evict node 0 to disk, then read it back through dequantize.
            store.insert(1, DS, DataPoint::Node(1), 0, &sampler(), true, vec![0.0; 16], 0.0);
            let (emb, _) = store.lookup(1, DS, DataPoint::Node(0), 0, &sampler(), true).expect("disk hit");
            for (a, b) in row.iter().zip(&emb) {
                let err = (a - b).abs();
                let bound = tol_abs + tol_rel * a.abs();
                assert!(err <= bound, "{q:?}: err {err} > {bound} at {a}");
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// Satellite regression: the process-wide gauges aggregate across
    /// stores (delta-based), instead of each store overwriting the other's
    /// absolute value; per-store `stats()` stays the per-session truth.
    #[test]
    fn len_gauges_aggregate_across_stores() {
        gp_obs::set_enabled(true);
        let gauge = || gp_obs::snapshot().gauge("embed_store.len").unwrap_or(0);
        let len_before = gauge();
        {
            let a = EmbeddingStore::new(8);
            let b = EmbeddingStore::new(8);
            for i in 0..3u32 {
                a.insert(1, DS, DataPoint::Node(i), 0, &sampler(), true, vec![0.0], 0.0);
            }
            for i in 0..2u32 {
                b.insert(1, DS + 1, DataPoint::Node(i), 0, &sampler(), true, vec![0.0], 0.0);
            }
            // Aggregate view: both stores' residency adds up.
            assert_eq!(gauge() - len_before, 5);
            // Per-store view stays per-store.
            assert_eq!(a.stats().len, 3);
            assert_eq!(b.stats().len, 2);
        }
        // Dropped stores retract their contribution.
        assert_eq!(gauge(), len_before);
    }

    /// Satellite property test: under a random interleaving of inserts,
    /// lookups (promotions), evictions (demotions) and flushes, a tiered
    /// f32 store answers bit-identically to an unbounded in-memory model —
    /// tiering placement may differ, contents may not.
    #[test]
    fn tiered_lookups_match_reference_model_under_random_interleaving() {
        use std::collections::HashMap as Model;
        let dir = tmpdir("prop");
        // Tiny L0 so demote/promote churn dominates.
        let store = tiered(3, &dir);
        let mut model: Model<u32, Vec<f32>> = Model::new();
        let mut rng = 0x9e37_79b9_7f4a_7c15u64;
        let mut step_rng = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for step in 0..2000 {
            let r = step_rng();
            let id = (r % 24) as u32;
            let p = DataPoint::Node(id);
            match (r >> 8) % 5 {
                // Insert (may evict → demote).
                0 | 1 => {
                    let row = vec![id as f32 * 1.25, -(step as f32)];
                    if !model.contains_key(&id) {
                        store.insert(1, DS, p, 0, &sampler(), true, row.clone(), 0.0);
                        model.insert(id, row);
                    }
                }
                // Lookup (may promote). Hits must be bit-identical to the
                // reference; a miss is only allowed if the model never saw
                // the key (the tiered store, unlike L0 alone, is lossless
                // for everything demoted).
                2 | 3 => match (store.lookup(1, DS, p, 0, &sampler(), true), model.get(&id)) {
                    (Some((emb, _)), Some(expect)) => assert_eq!(&emb, expect, "step {step}"),
                    (None, None) => {}
                    (None, Some(_)) => panic!("step {step}: tiered store lost an entry"),
                    (Some(_), None) => {
                        panic!("step {step}: tier served data the model never held")
                    }
                },
                // Flush mid-stream: must not change any answer.
                _ => {
                    store.flush();
                }
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn kill_mid_flush_never_serves_torn_data() {
        let dir = tmpdir("torn");
        let row = vec![1.0f32, 2.0, 3.0];
        let store = tiered(4, &dir);
        store.insert(1, DS, DataPoint::Node(0), 0, &sampler(), true, row.clone(), 0.0);
        store.flush();
        // A later flush with more data dies mid-write, at both crash
        // points. While the first store still lives (no graceful drop,
        // like a kill -9), a "restarted" store reads the crash residue.
        store.insert(1, DS, DataPoint::Node(1), 0, &sampler(), true, vec![9.0], 0.0);
        for fault in [
            crate::checkpoint::WriteFault::TornWrite,
            crate::checkpoint::WriteFault::BeforeRename,
        ] {
            store.flush_with_fault(fault);
            let restarted = tiered(4, &dir);
            // Old-or-nothing: the pre-crash shard must survive intact.
            let (emb, _) = restarted
                .lookup(1, DS, DataPoint::Node(0), 0, &sampler(), true)
                .expect("pre-crash shard intact");
            assert_eq!(emb, row);
            assert_eq!(restarted.stats().corrupt_shards, 0);
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
