//! Cross-episode memoization of candidate subgraph embeddings.
//!
//! Candidate datapoints repeat heavily across evaluation episodes (an
//! episode draws `N` candidates per class from the same train split), and
//! since PR "parallel kernels + embedding reuse" their subgraph RNG is
//! derived purely from `(candidate_seed, datapoint)` — see
//! [`crate::config::InferenceConfig::candidate_seed`] — a candidate's
//! embedding is a pure function of:
//!
//! * the datapoint,
//! * the candidate sampling seed,
//! * the sampler geometry (hops, node cap, fan-out),
//! * the reconstruction stage toggle,
//! * and the model weights.
//!
//! [`EmbeddingStore`] memoizes exactly that function. Weights are tracked
//! by [`gp_nn::ParamStore::revision`]: any mutation (an optimizer step,
//! `try_set`, `try_restore`, a checkpoint load) bumps the revision, and
//! the store drops its entire contents the next time it is consulted with
//! a different revision — stale reuse is impossible by construction.
//!
//! The store is internally synchronized, so one instance can serve all
//! episode worker threads of an `Engine` evaluation concurrently. Capacity
//! is bounded with FIFO eviction; candidates are re-requested uniformly
//! across episodes, so recency tracking buys nothing here.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;

use gp_datasets::DataPoint;
use gp_graph::SamplerConfig;

/// Memoization key: everything an embedding depends on except the weights
/// (which are handled by revision tracking on the whole store).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
struct Key {
    point: DataPoint,
    candidate_seed: u64,
    hops: usize,
    max_nodes: usize,
    neighbors_per_node: usize,
    use_reconstruction: bool,
}

/// One memoized result: the embedding row and its selector importance.
#[derive(Clone, Debug)]
struct Entry {
    embedding: Vec<f32>,
    importance: f32,
}

struct Inner {
    /// [`gp_nn::ParamStore::revision`] the entries were computed at.
    revision: u64,
    map: HashMap<Key, Entry>,
    order: VecDeque<Key>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// Counters describing how an [`EmbeddingStore`] has been used.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EmbedCacheStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required a fresh embedding.
    pub misses: u64,
    /// Times the whole store was dropped because the model weights
    /// changed underneath it.
    pub invalidations: u64,
    /// Entries currently resident.
    pub len: usize,
}

/// Bounded, internally synchronized memo table for candidate embeddings.
pub struct EmbeddingStore {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl EmbeddingStore {
    /// A store holding at most `capacity` embeddings (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner {
                revision: 0,
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                invalidations: 0,
            }),
        }
    }

    /// Maximum number of resident embeddings.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn key(
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
    ) -> Key {
        Key {
            point,
            candidate_seed,
            hops: sampler.hops,
            max_nodes: sampler.max_nodes,
            neighbors_per_node: sampler.neighbors_per_node,
            use_reconstruction,
        }
    }

    fn sync_revision(inner: &mut Inner, revision: u64) {
        if inner.revision != revision {
            if !inner.map.is_empty() {
                inner.invalidations += 1;
            }
            inner.map.clear();
            inner.order.clear();
            inner.revision = revision;
        }
    }

    /// Fetch a memoized embedding, if one computed at exactly `revision`
    /// (the current [`gp_nn::ParamStore::revision`]) exists. A revision
    /// change drops every entry before the lookup.
    pub fn lookup(
        &self,
        revision: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
    ) -> Option<(Vec<f32>, f32)> {
        let key = Self::key(point, candidate_seed, sampler, use_reconstruction);
        let mut inner = self.inner.lock().expect("EmbeddingStore lock");
        Self::sync_revision(&mut inner, revision);
        match inner.map.get(&key) {
            Some(entry) => {
                let out = (entry.embedding.clone(), entry.importance);
                inner.hits += 1;
                Some(out)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Memoize an embedding computed at `revision`. Entries computed at a
    /// different revision than the store's current one evict everything
    /// older first; FIFO eviction keeps the store within capacity.
    pub fn insert(
        &self,
        revision: u64,
        point: DataPoint,
        candidate_seed: u64,
        sampler: &SamplerConfig,
        use_reconstruction: bool,
        embedding: Vec<f32>,
        importance: f32,
    ) {
        let key = Self::key(point, candidate_seed, sampler, use_reconstruction);
        let mut inner = self.inner.lock().expect("EmbeddingStore lock");
        Self::sync_revision(&mut inner, revision);
        if inner.map.contains_key(&key) {
            return; // concurrent worker beat us to it; entries are equal
        }
        while inner.map.len() >= self.capacity {
            match inner.order.pop_front() {
                Some(victim) => {
                    inner.map.remove(&victim);
                }
                None => break,
            }
        }
        inner.order.push_back(key);
        inner.map.insert(
            key,
            Entry {
                embedding,
                importance,
            },
        );
    }

    /// Drop every entry (counters survive).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("EmbeddingStore lock");
        inner.map.clear();
        inner.order.clear();
    }

    /// Usage counters and current size.
    pub fn stats(&self) -> EmbedCacheStats {
        let inner = self.inner.lock().expect("EmbeddingStore lock");
        EmbedCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            len: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sampler() -> SamplerConfig {
        SamplerConfig::default()
    }

    #[test]
    fn lookup_after_insert_hits() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        assert!(store.lookup(1, p, 0, &sampler(), true).is_none());
        store.insert(1, p, 0, &sampler(), true, vec![1.0, 2.0], 0.5);
        let (emb, imp) = store.lookup(1, p, 0, &sampler(), true).expect("hit");
        assert_eq!(emb, vec![1.0, 2.0]);
        assert_eq!(imp, 0.5);
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn key_distinguishes_every_dimension() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(3);
        store.insert(1, p, 0, &sampler(), true, vec![1.0], 0.5);
        // Different point, candidate seed, sampler geometry, stage flag.
        assert!(store.lookup(1, DataPoint::Node(4), 0, &sampler(), true).is_none());
        assert!(store.lookup(1, DataPoint::Edge(3), 0, &sampler(), true).is_none());
        assert!(store.lookup(1, p, 9, &sampler(), true).is_none());
        let mut other = sampler();
        other.max_nodes += 1;
        assert!(store.lookup(1, p, 0, &other, true).is_none());
        assert!(store.lookup(1, p, 0, &sampler(), false).is_none());
        assert!(store.lookup(1, p, 0, &sampler(), true).is_some());
    }

    #[test]
    fn revision_change_drops_everything() {
        let store = EmbeddingStore::new(8);
        let p = DataPoint::Node(1);
        store.insert(1, p, 0, &sampler(), true, vec![1.0], 0.1);
        assert!(store.lookup(1, p, 0, &sampler(), true).is_some());
        // The weights moved: the cached row must be gone.
        assert!(store.lookup(2, p, 0, &sampler(), true).is_none());
        assert_eq!(store.stats().invalidations, 1);
        // And it stays gone for the old revision's entries.
        assert_eq!(store.stats().len, 0);
    }

    #[test]
    fn fifo_eviction_bounds_memory() {
        let store = EmbeddingStore::new(2);
        for i in 0..5u32 {
            store.insert(1, DataPoint::Node(i), 0, &sampler(), true, vec![i as f32], 0.0);
        }
        assert_eq!(store.stats().len, 2);
        // The two most recent survive.
        assert!(store.lookup(1, DataPoint::Node(3), 0, &sampler(), true).is_some());
        assert!(store.lookup(1, DataPoint::Node(4), 0, &sampler(), true).is_some());
        assert!(store.lookup(1, DataPoint::Node(0), 0, &sampler(), true).is_none());
    }

    #[test]
    fn concurrent_access_is_safe() {
        let store = EmbeddingStore::new(64);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let store = &store;
                s.spawn(move || {
                    for i in 0..50u32 {
                        let p = DataPoint::Node(i % 8);
                        if store.lookup(1, p, 0, &sampler(), true).is_none() {
                            store.insert(1, p, 0, &sampler(), true, vec![(i + t) as f32], 0.0);
                        }
                    }
                });
            }
        });
        assert!(store.stats().len <= 8);
    }
}
