//! Least-Frequently-Used cache, after Matani, Shah & Mitra,
//! *“An O(1) algorithm for implementing the LFU cache eviction scheme”*
//! (the paper's reference \[51\]).
//!
//! Design: a `HashMap<K, Entry>` stores values, use counts and intrusive
//! FIFO links; a `BTreeMap<u64, (head, tail)>` indexes the non-empty
//! frequency buckets, each bucket being a doubly-linked list threaded
//! through the entries. Ties within a frequency evict FIFO (oldest
//! promoted into the bucket first).
//!
//! A key is removed from its old bucket **eagerly** on every promotion
//! and empty buckets are pruned, so total bucket membership is exactly
//! [`LfuCache::len`] at all times (asserted by [`LfuCache::bucket_members`]
//! and a churn test) — an earlier lazy-removal design let stale key clones
//! accumulate without bound under touch-heavy workloads.
//!
//! Complexity: `get`/`touch`/`insert`/`evict` are O(1) hash operations
//! plus one O(log F) bucket-map lookup, where F is the number of
//! *distinct live frequencies* (≤ `len()`, tiny in practice) — there are
//! no scans over entries anywhere.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

static INSERTIONS: gp_obs::Counter = gp_obs::Counter::new("lfu.insertions");
static EVICTIONS: gp_obs::Counter = gp_obs::Counter::new("lfu.evictions");
static TOUCHES: gp_obs::Counter = gp_obs::Counter::new("lfu.touches");

struct Entry<K, V> {
    value: V,
    freq: u64,
    /// Previous (older) key in this entry's frequency bucket.
    prev: Option<K>,
    /// Next (newer) key in this entry's frequency bucket.
    next: Option<K>,
}

/// A fixed-capacity LFU cache.
///
/// ```
/// use gp_core::LfuCache;
///
/// let mut cache = LfuCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// cache.touch(&"a");                       // protect "a"
/// let evicted = cache.insert("c", 3);      // evicts the least used
/// assert_eq!(evicted, Some(("b", 2)));
/// ```
pub struct LfuCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    entries: HashMap<K, Entry<K, V>>,
    /// `freq → (head, tail)` of that bucket's FIFO list. Invariant: a
    /// bucket is present iff it has at least one member, so
    /// `first_key_value` is always the live minimum frequency.
    buckets: BTreeMap<u64, (K, K)>,
}

impl<K: Eq + Hash + Clone, V> LfuCache<K, V> {
    /// Create a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LfuCache capacity must be positive");
        Self {
            capacity,
            entries: HashMap::new(),
            buckets: BTreeMap::new(),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up without touching the frequency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|e| &e.value)
    }

    /// Look up and bump the use count.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.entries.contains_key(key) {
            self.touch(key);
        }
        self.entries.get(key).map(|e| &e.value)
    }

    /// Bump a key's use count without reading it (a "hit" in the paper's
    /// Prompt Augmenter: similar queries refresh cached prompts). The key
    /// moves from its old frequency bucket to the new one eagerly.
    pub fn touch(&mut self, key: &K) -> bool {
        if !self.entries.contains_key(key) {
            return false;
        }
        TOUCHES.inc();
        self.unlink(key);
        let new_freq = {
            let e = self.entries.get_mut(key).expect("checked above");
            e.freq += 1;
            e.freq
        };
        self.push_tail(new_freq, key.clone());
        true
    }

    /// Insert (or replace) a value with use count 1, evicting the least
    /// frequently used entry if at capacity. Returns the evicted pair.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(e) = self.entries.get_mut(&key) {
            e.value = value;
            self.touch(&key);
            return None;
        }
        let evicted = if self.entries.len() >= self.capacity {
            self.evict()
        } else {
            None
        };
        INSERTIONS.inc();
        self.entries.insert(
            key.clone(),
            Entry {
                value,
                freq: 1,
                prev: None,
                next: None,
            },
        );
        self.push_tail(1, key);
        evicted
    }

    /// Iterate `(key, value, freq)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V, u64)> {
        // gp-lint: allow(D1) — order-erased diagnostic API; result-affecting callers go through AnyCache::sorted_iter
        self.entries.iter().map(|(k, e)| (k, &e.value, e.freq))
    }

    /// Keys in deterministic eviction order: ascending use count, FIFO
    /// within a count (the next eviction victim comes first). Walks the
    /// intrusive bucket lists, so the order is reproducible across runs —
    /// unlike [`LfuCache::iter`] — at O(len) cost. The embedding store's
    /// disk-tier flush uses this to serialize shards deterministically.
    pub fn ordered_keys(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (head, _) in self.buckets.values() {
            let mut cur = Some(head.clone());
            while let Some(k) = cur {
                cur = self.entries.get(&k).and_then(|e| e.next.clone());
                out.push(k);
            }
        }
        out
    }

    /// Remove and return the least frequently used entry (FIFO within the
    /// minimum frequency).
    pub fn evict(&mut self) -> Option<(K, V)> {
        let victim = self.buckets.first_key_value()?.1 .0.clone();
        self.unlink(&victim);
        let entry = self.entries.remove(&victim).expect("bucket member exists");
        EVICTIONS.inc();
        Some((victim, entry.value))
    }

    /// Total membership across all frequency buckets, counted by walking
    /// the lists. Diagnostics only (O(len)): by construction this always
    /// equals [`LfuCache::len`] — the churn test and the augmenter's
    /// `augmenter.lfu_bucket_members` gauge use it as a regression
    /// tripwire against stale-entry growth.
    pub fn bucket_members(&self) -> usize {
        let mut n = 0usize;
        for (head, _) in self.buckets.values() {
            let mut cur = Some(head.clone());
            while let Some(k) = cur {
                n += 1;
                cur = self
                    .entries
                    .get(&k)
                    .expect("bucket links point at live entries")
                    .next
                    .clone();
            }
        }
        n
    }

    /// Detach `key` from its frequency bucket, pruning the bucket when it
    /// empties. The entry stays in `entries` with cleared links.
    fn unlink(&mut self, key: &K) {
        let (freq, prev, next) = {
            let e = self.entries.get_mut(key).expect("unlink of live key");
            (e.freq, e.prev.take(), e.next.take())
        };
        if let Some(p) = &prev {
            self.entries.get_mut(p).expect("prev link is live").next = next.clone();
        }
        if let Some(n) = &next {
            self.entries.get_mut(n).expect("next link is live").prev = prev.clone();
        }
        match (prev, next) {
            (None, None) => {
                self.buckets.remove(&freq);
            }
            (None, Some(n)) => {
                self.buckets.get_mut(&freq).expect("bucket exists").0 = n;
            }
            (Some(p), None) => {
                self.buckets.get_mut(&freq).expect("bucket exists").1 = p;
            }
            (Some(_), Some(_)) => {}
        }
    }

    /// Append `key` (links already cleared) to the tail of bucket `freq`.
    fn push_tail(&mut self, freq: u64, key: K) {
        match self.buckets.get_mut(&freq) {
            Some((_, tail)) => {
                let old_tail = std::mem::replace(tail, key.clone());
                self.entries
                    .get_mut(&old_tail)
                    .expect("tail link is live")
                    .next = Some(key.clone());
                self.entries.get_mut(&key).expect("pushed key is live").prev = Some(old_tail);
            }
            None => {
                self.buckets.insert(freq, (key.clone(), key));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // a: freq 2, b: freq 1
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(c.peek(&"a").is_some());
        assert!(c.peek(&"c").is_some());
    }

    #[test]
    fn fifo_tie_break_within_frequency() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Both freq 1 → oldest ("a") goes first.
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("a", 1)));
    }

    #[test]
    fn touch_protects_entry() {
        let mut c = LfuCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        c.touch(&"a");
        c.touch(&"a");
        c.touch(&"b");
        let evicted = c.insert("d", 4);
        assert_eq!(evicted, Some(("c", 3)));
    }

    #[test]
    fn reinsert_updates_value_and_bumps() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.peek(&"a"), Some(&10));
        c.insert("b", 2);
        // "a" has freq 2 (insert + touch), "b" freq 1 → b evicted.
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
    }

    #[test]
    fn touch_on_missing_key_is_false() {
        let mut c: LfuCache<&str, i32> = LfuCache::new(1);
        assert!(!c.touch(&"nope"));
    }

    #[test]
    fn never_exceeds_capacity_under_churn() {
        let mut c = LfuCache::new(3);
        for i in 0..100u64 {
            c.insert(i, i);
            if i % 3 == 0 {
                c.touch(&i);
            }
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn eviction_order_respects_frequency_globally() {
        let mut c = LfuCache::new(4);
        for (k, touches) in [("w", 5), ("x", 3), ("y", 1), ("z", 0)] {
            c.insert(k, 0);
            for _ in 0..touches {
                c.touch(&k);
            }
        }
        assert_eq!(c.evict().unwrap().0, "z");
        assert_eq!(c.evict().unwrap().0, "y");
        assert_eq!(c.evict().unwrap().0, "x");
        assert_eq!(c.evict().unwrap().0, "w");
        assert!(c.evict().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: LfuCache<u8, u8> = LfuCache::new(0);
    }

    /// The regression the lazy-removal design failed: under touch-heavy
    /// churn, internal bucket membership must stay exactly `len()` —
    /// stale key clones used to accumulate without bound.
    #[test]
    fn bucket_membership_bounded_under_touch_heavy_churn() {
        let mut c: LfuCache<u64, u64> = LfuCache::new(8);
        let mut state = 0x2545_F491_4F6C_DD1Du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in 0..10_000u64 {
            match rng() % 10 {
                // Touch-heavy mix: 70% touches, 20% inserts, 10% evict/get.
                0..=6 => {
                    c.touch(&(rng() % 16));
                }
                7..=8 => {
                    c.insert(rng() % 16, i);
                }
                9 => {
                    if i % 2 == 0 {
                        c.evict();
                    } else {
                        c.get(&(rng() % 16));
                    }
                }
                _ => unreachable!(),
            }
            assert!(c.len() <= 8);
            let members = c.bucket_members();
            assert!(
                members <= c.len(),
                "step {i}: {members} bucket members for {} entries",
                c.len()
            );
            assert_eq!(members, c.len(), "membership must be exact, step {i}");
        }
    }

    /// Naive O(n²) reference model: victim is min by (freq, order of
    /// promotion into its current frequency).
    struct NaiveLfu {
        cap: usize,
        /// `(key, value, freq, promoted_at)`.
        entries: Vec<(u64, u64, u64, u64)>,
        clock: u64,
    }

    impl NaiveLfu {
        fn new(cap: usize) -> Self {
            Self {
                cap,
                entries: Vec::new(),
                clock: 0,
            }
        }

        fn touch(&mut self, key: u64) -> bool {
            self.clock += 1;
            for e in &mut self.entries {
                if e.0 == key {
                    e.2 += 1;
                    e.3 = self.clock;
                    return true;
                }
            }
            false
        }

        fn insert(&mut self, key: u64, value: u64) -> Option<u64> {
            if let Some(e) = self.entries.iter_mut().find(|e| e.0 == key) {
                e.1 = value;
                self.touch(key);
                return None;
            }
            let evicted = if self.entries.len() >= self.cap {
                self.evict()
            } else {
                None
            };
            self.clock += 1;
            self.entries.push((key, value, 1, self.clock));
            evicted
        }

        fn evict(&mut self) -> Option<u64> {
            let pos = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| (e.2, e.3))
                .map(|(i, _)| i)?;
            Some(self.entries.remove(pos).0)
        }
    }

    /// Deterministic mirror of the CI proptest: the repaired cache agrees
    /// with the naive reference on every evicted key and on the final
    /// contents, over a long random op sequence.
    #[test]
    fn agrees_with_naive_reference_model() {
        for seed in [1u64, 7, 42, 1234] {
            let cap = 1 + (seed as usize % 6);
            let mut real: LfuCache<u64, u64> = LfuCache::new(cap);
            let mut naive = NaiveLfu::new(cap);
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for i in 0..2_000u64 {
                let key = rng() % 12;
                match rng() % 4 {
                    0 | 1 => {
                        let got = real.insert(key, i).map(|(k, _)| k);
                        let want = naive.insert(key, i);
                        assert_eq!(got, want, "seed {seed} step {i}: eviction disagreed");
                    }
                    2 => {
                        assert_eq!(real.touch(&key), naive.touch(key), "seed {seed} step {i}");
                    }
                    3 => {
                        let got = real.evict().map(|(k, _)| k);
                        let want = naive.evict();
                        assert_eq!(got, want, "seed {seed} step {i}: evict() disagreed");
                    }
                    _ => unreachable!(),
                }
                assert_eq!(real.len(), naive.entries.len());
                assert_eq!(real.bucket_members(), real.len());
            }
            // Final contents agree: same keys, values and frequencies.
            let mut got: Vec<(u64, u64, u64)> =
                real.iter().map(|(k, v, f)| (*k, *v, f)).collect();
            got.sort_unstable();
            let mut want: Vec<(u64, u64, u64)> =
                naive.entries.iter().map(|e| (e.0, e.1, e.2)).collect();
            want.sort_unstable();
            assert_eq!(got, want, "seed {seed}: final contents disagreed");
        }
    }
}
