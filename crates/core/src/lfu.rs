//! O(1) Least-Frequently-Used cache, after Matani, Shah & Mitra,
//! *“An O(1) algorithm for implementing the LFU cache eviction scheme”*
//! (the paper's reference \[51\]).
//!
//! Design: a `HashMap<K, Entry>` stores values and their current use
//! count; a `HashMap<u64, VecDeque<K>>` buckets keys by frequency, and a
//! tracked `min_freq` makes eviction O(1). Ties within a frequency bucket
//! evict FIFO (oldest inserted/promoted first). Bucket membership is
//! maintained lazily: a key may linger in an old bucket after promotion
//! and is skipped (its stored frequency disagrees) when popped.

use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

struct Entry<V> {
    value: V,
    freq: u64,
}

/// A fixed-capacity LFU cache.
///
/// ```
/// use gp_core::LfuCache;
///
/// let mut cache = LfuCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// cache.touch(&"a");                       // protect "a"
/// let evicted = cache.insert("c", 3);      // evicts the least used
/// assert_eq!(evicted, Some(("b", 2)));
/// ```
pub struct LfuCache<K: Eq + Hash + Clone, V> {
    capacity: usize,
    entries: HashMap<K, Entry<V>>,
    buckets: HashMap<u64, VecDeque<K>>,
    min_freq: u64,
}

impl<K: Eq + Hash + Clone, V> LfuCache<K, V> {
    /// Create a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LfuCache capacity must be positive");
        Self {
            capacity,
            entries: HashMap::new(),
            buckets: HashMap::new(),
            min_freq: 1,
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Look up without touching the frequency.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.entries.get(key).map(|e| &e.value)
    }

    /// Look up and bump the use count.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        if self.entries.contains_key(key) {
            self.touch(key);
        }
        self.entries.get(key).map(|e| &e.value)
    }

    /// Bump a key's use count without reading it (a "hit" in the paper's
    /// Prompt Augmenter: similar queries refresh cached prompts).
    pub fn touch(&mut self, key: &K) -> bool {
        let Some(e) = self.entries.get_mut(key) else {
            return false;
        };
        let old = e.freq;
        e.freq += 1;
        let new = e.freq;
        self.buckets.entry(new).or_default().push_back(key.clone());
        // Lazy removal: the stale copy in bucket `old` is skipped at pop
        // time. Advance min_freq if this was its last live member.
        if old == self.min_freq && !self.bucket_has_live(old) {
            self.min_freq = new.min(self.live_min_freq());
        }
        true
    }

    /// Insert (or replace) a value with use count 1, evicting the least
    /// frequently used entry if at capacity. Returns the evicted pair.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(e) = self.entries.get_mut(&key) {
            e.value = value;
            self.touch(&key);
            return None;
        }
        let evicted = if self.entries.len() >= self.capacity {
            self.evict()
        } else {
            None
        };
        self.entries.insert(key.clone(), Entry { value, freq: 1 });
        self.buckets.entry(1).or_default().push_back(key);
        self.min_freq = 1;
        evicted
    }

    /// Iterate `(key, value, freq)` in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V, u64)> {
        self.entries.iter().map(|(k, e)| (k, &e.value, e.freq))
    }

    /// Remove and return the least frequently used entry.
    pub fn evict(&mut self) -> Option<(K, V)> {
        if self.entries.is_empty() {
            return None;
        }
        // min_freq may be stale (all members promoted); resync if needed.
        if !self.bucket_has_live(self.min_freq) {
            self.min_freq = self.live_min_freq();
        }
        let bucket = self.buckets.get_mut(&self.min_freq)?;
        while let Some(key) = bucket.pop_front() {
            let live = matches!(self.entries.get(&key), Some(e) if e.freq == self.min_freq);
            if live {
                let entry = self.entries.remove(&key).expect("checked above");
                if self.entries.is_empty() {
                    self.min_freq = 1;
                } else if !self.bucket_has_live(self.min_freq) {
                    self.min_freq = self.live_min_freq();
                }
                return Some((key, entry.value));
            }
            // Stale bucket member (key promoted or removed): skip.
        }
        unreachable!("min_freq bucket guaranteed to contain a live key");
    }

    fn bucket_has_live(&self, freq: u64) -> bool {
        self.buckets.get(&freq).is_some_and(|b| {
            b.iter()
                .any(|k| matches!(self.entries.get(k), Some(e) if e.freq == freq))
        })
    }

    fn live_min_freq(&self) -> u64 {
        self.entries.values().map(|e| e.freq).min().unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_get() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.get(&"a"); // a: freq 2, b: freq 1
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
        assert!(c.peek(&"a").is_some());
        assert!(c.peek(&"c").is_some());
    }

    #[test]
    fn fifo_tie_break_within_frequency() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        // Both freq 1 → oldest ("a") goes first.
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("a", 1)));
    }

    #[test]
    fn touch_protects_entry() {
        let mut c = LfuCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        c.touch(&"a");
        c.touch(&"a");
        c.touch(&"b");
        let evicted = c.insert("d", 4);
        assert_eq!(evicted, Some(("c", 3)));
    }

    #[test]
    fn reinsert_updates_value_and_bumps() {
        let mut c = LfuCache::new(2);
        c.insert("a", 1);
        c.insert("a", 10);
        assert_eq!(c.peek(&"a"), Some(&10));
        c.insert("b", 2);
        // "a" has freq 2 (insert + touch), "b" freq 1 → b evicted.
        let evicted = c.insert("c", 3);
        assert_eq!(evicted, Some(("b", 2)));
    }

    #[test]
    fn touch_on_missing_key_is_false() {
        let mut c: LfuCache<&str, i32> = LfuCache::new(1);
        assert!(!c.touch(&"nope"));
    }

    #[test]
    fn never_exceeds_capacity_under_churn() {
        let mut c = LfuCache::new(3);
        for i in 0..100u64 {
            c.insert(i, i);
            if i % 3 == 0 {
                c.touch(&i);
            }
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn eviction_order_respects_frequency_globally() {
        let mut c = LfuCache::new(4);
        for (k, touches) in [("w", 5), ("x", 3), ("y", 1), ("z", 0)] {
            c.insert(k, 0);
            for _ in 0..touches {
                c.touch(&k);
            }
        }
        assert_eq!(c.evict().unwrap().0, "z");
        assert_eq!(c.evict().unwrap().0, "y");
        assert_eq!(c.evict().unwrap().0, "x");
        assert_eq!(c.evict().unwrap().0, "w");
        assert!(c.evict().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: LfuCache<u8, u8> = LfuCache::new(0);
    }
}
