//! # gp-core — GraphPrompter
//!
//! The paper's contribution: **multi-stage adaptive prompt optimization
//! for graph in-context learning** (Lv et al., ICDE 2025), built on a
//! Prodigy-style pre-train-once / adapt-with-prompts pipeline.
//!
//! The three stages:
//!
//! 1. **Prompt Generator** ([`model`], [`batch`]) — random-walk data-graph
//!    sampling (Eq. 1) plus a reconstruction layer that learns per-edge
//!    weights `w_uv = σ(MLP_φ(...))` (Eqs. 2–3) before `GNN_D`
//!    aggregation (Eq. 4).
//! 2. **Prompt Selector** ([`selector`]) — pre-trained selection-layer
//!    importance `I_p = σ(MLP_θ(G_p))` (Eq. 5), kNN retrieval
//!    `sim(p, q)` (Eq. 6), combined score (Eq. 7), and query voting
//!    (Eq. 8).
//! 3. **Prompt Augmenter** ([`augmenter`], [`lfu`]) — a test-time LFU
//!    cache of high-confidence pseudo-labelled queries, `Ŝ' = Ŝ ∪ C`
//!    (Eq. 9).
//!
//! Training (Alg. 1) lives in [`mod@pretrain`]; inference (Alg. 2) in
//! [`infer`]. Every stage has an ablation toggle in
//! [`config::StageConfig`]; with all stages off the pipeline *is* the
//! Prodigy baseline.
//!
//! The public entry point is the [`Engine`], built through the fallible
//! [`EngineBuilder`]: it validates every config, owns the model, owns a
//! [`gp_tensor::WorkerPool`] sized to one [`gp_tensor::Parallelism`]
//! thread budget shared by episode and kernel fan-out, and memoizes
//! candidate embeddings across episodes in an [`EmbeddingStore`]
//! (invalidated automatically whenever the weights change).
//!
//! ```
//! use gp_core::{Engine, InferenceConfig, ModelConfig, PretrainConfig};
//!
//! let source = gp_datasets::CitationConfig::new("pretrain", 300, 6, 1).generate();
//! let target = gp_datasets::CitationConfig::new("downstream", 200, 5, 2).generate();
//!
//! let mut engine = Engine::builder()
//!     .model_config(ModelConfig::default())
//!     .pretrain_config(PretrainConfig::builder().steps(30).try_build().unwrap())
//!     .inference_config(InferenceConfig::default())
//!     .try_build()
//!     .unwrap();
//! engine.pretrain(&source);
//!
//! // In-context adaptation: no gradient updates on the target graph.
//! let accs = engine.evaluate(&target, 3, 10, 2);
//! assert_eq!(accs.len(), 2);
//! ```

pub mod augmenter;
pub mod batch;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod deadline;
pub mod embed_disk;
pub mod embed_store;
pub mod engine;
pub mod error;
pub mod guard;
pub mod infer;
pub mod lfu;
pub mod model;
pub mod planner;
pub mod pretrain;
pub mod selector;

pub use augmenter::{CacheEntry, PromptAugmenter};
pub use batch::{BatchError, SubgraphBatch};
pub use cache::{AnyCache, CachePolicy, FifoCache, LruCache};
pub use checkpoint::{
    inspect_checkpoint, list_checkpoints, scan_for_recovery, CheckpointError, CheckpointKind,
    CheckpointSummary, RecoveryScan, TrainerMeta,
};
pub use config::{
    ConfigError, GeneratorKind, InferenceConfig, InferenceConfigBuilder, ModelConfig,
    ModelConfigBuilder, PretrainConfig, PretrainConfigBuilder, PseudoLabelPolicy, StageConfig,
};
pub use deadline::Deadline;
pub use embed_disk::{DiskTierConfig, Quantization};
pub use embed_store::{EmbedCacheStats, EmbeddingStore};
pub use engine::{Engine, EngineBuilder, DEFAULT_EMBED_CACHE_CAPACITY};
pub use error::{DeadlineExceeded, EngineError};
pub use guard::{DivergenceError, GuardAction, GuardRail, GuardRailConfig, StepVerdict};
pub use infer::EpisodeResult;
pub use lfu::LfuCache;
pub use model::{sample_datapoint_subgraphs, GraphPrompterModel};
pub use planner::{batch_deadline, BatchKey, BatchPlanner, EpisodeRequest, PlannedBatch};
pub use pretrain::{
    pretrain, pretrain_resumable, pretrain_with_validation, try_pretrain, CheckpointConfig,
    PretrainError, PretrainReport, TrainingCurve,
};
pub use selector::{select_prompts, select_prompts_with_metric, DistanceMetric, SelectionOutcome};
