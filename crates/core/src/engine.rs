//! The single public entry point for the GraphPrompter pipeline.
//!
//! [`EngineBuilder`] validates every config up front ([`ConfigError`]),
//! fixes the engine's **thread budget** ([`Parallelism`]) and decides
//! whether the cross-episode [`EmbeddingStore`] is wired in. The built
//! [`Engine`] owns a persistent [`gp_tensor::WorkerPool`] sized to that
//! budget — episode fan-out and tensor-kernel row-blocks all draw from
//! the one pool, so `--threads n` really means at most `n` live threads
//! — and exposes the whole lifecycle:
//!
//! ```
//! use gp_core::{Engine, InferenceConfig, PretrainConfig};
//!
//! let source = gp_datasets::CitationConfig::new("pretrain", 300, 6, 1).generate();
//! let target = gp_datasets::CitationConfig::new("downstream", 200, 5, 2).generate();
//!
//! let mut engine = Engine::builder()
//!     .pretrain_config(PretrainConfig::builder().steps(30).try_build().unwrap())
//!     .inference_config(InferenceConfig::default())
//!     .try_build()
//!     .unwrap();
//! engine.pretrain(&source);
//!
//! // In-context adaptation: no gradient updates on the target graph.
//! let accs = engine.evaluate(&target, 3, 10, 2);
//! assert_eq!(accs.len(), 2);
//! ```
//!
//! Kernel numerics are selected per engine with
//! [`EngineBuilder::backend`]: [`gp_tensor::Backend::Reference`] (the
//! default) keeps the historical bit-exact accumulation order, while
//! [`gp_tensor::Backend::Fast`] swaps in the tiled/SIMD kernels. Every
//! entry point installs the engine's backend alongside its worker pool,
//! so episode fan-out runs under the same kernels.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use gp_datasets::{Dataset, FewShotTask};
use gp_tensor::{Backend, Parallelism, PoolStats, WorkerPool};

use crate::config::{ConfigError, InferenceConfig, ModelConfig, PretrainConfig};
use crate::deadline::Deadline;
use crate::embed_disk::{DiskTierConfig, Quantization};
use crate::embed_store::{EmbedCacheStats, EmbeddingStore};
use crate::error::EngineError;
use crate::guard::DivergenceError;
use crate::infer::{
    evaluate_episodes_impl, run_episode_deadline_impl, run_episode_impl, run_episodes_batched_impl,
    EpisodeResult,
};
use crate::model::GraphPrompterModel;
use crate::planner::EpisodeRequest;
use crate::pretrain::{pretrain, try_pretrain, TrainingCurve};

/// Default capacity of the cross-episode embedding cache.
pub const DEFAULT_EMBED_CACHE_CAPACITY: usize = 4096;

/// Fallible builder for [`Engine`]; start from [`Engine::builder`].
pub struct EngineBuilder {
    model_cfg: ModelConfig,
    model: Option<GraphPrompterModel>,
    pretrain_cfg: PretrainConfig,
    infer_cfg: InferenceConfig,
    parallelism: Option<Parallelism>,
    timing_mode: bool,
    embed_cache: Option<usize>,
    embed_store_dir: Option<PathBuf>,
    embed_quantization: Quantization,
    shared_pool: Option<Arc<WorkerPool>>,
    backend: Backend,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self {
            model_cfg: ModelConfig::default(),
            model: None,
            pretrain_cfg: PretrainConfig::default(),
            infer_cfg: InferenceConfig::default(),
            parallelism: None,
            timing_mode: false,
            embed_cache: Some(DEFAULT_EMBED_CACHE_CAPACITY),
            embed_store_dir: None,
            embed_quantization: Quantization::F32,
            shared_pool: None,
            backend: Backend::default(),
        }
    }
}

impl EngineBuilder {
    /// A builder with the paper's default protocol everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Architecture config for the model the engine will create. Ignored
    /// when [`EngineBuilder::model`] supplies a pre-built model.
    pub fn model_config(mut self, cfg: ModelConfig) -> Self {
        self.model_cfg = cfg;
        self
    }

    /// Adopt an existing (e.g. already pre-trained or checkpoint-loaded)
    /// model instead of creating a fresh one.
    pub fn model(mut self, model: GraphPrompterModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Pre-training protocol for [`Engine::pretrain`].
    pub fn pretrain_config(mut self, cfg: PretrainConfig) -> Self {
        self.pretrain_cfg = cfg;
        self
    }

    /// Inference protocol for [`Engine::evaluate`] / [`Engine::run_episode`].
    pub fn inference_config(mut self, cfg: InferenceConfig) -> Self {
        self.infer_cfg = cfg;
        self
    }

    /// The engine's **thread budget** — the total number of threads its
    /// [`gp_tensor::WorkerPool`] may occupy across *every* parallelism
    /// layer: episode fan-out in [`Engine::evaluate`] and tensor-kernel
    /// row-blocks alike draw from this one allowance, so
    /// `Parallelism::Threads(n)` means at most `n` live threads, not
    /// `n × n`. Every budget produces bit-identical results — this is
    /// purely a throughput knob.
    ///
    /// The pool is per-engine: two engines with different settings no
    /// longer stomp a process-wide atomic. When not set, the engine
    /// resolves its budget from the ambient
    /// [`gp_tensor::configured_workers`] at each call (so transient
    /// engines, e.g. inside baselines, inherit the caller's choice).
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = Some(p);
        self
    }

    /// Timing mode: pin episode-level fan-out to 1 so [`Engine::evaluate`]
    /// measures uncontended per-query cost — the whole budget goes to the
    /// kernels of one episode at a time instead of episodes competing for
    /// it. The benchmarks (`experiments bench-inference` / `table8`) run
    /// this way; results are bit-identical either way.
    pub fn timing_mode(mut self, on: bool) -> Self {
        self.timing_mode = on;
        self
    }

    /// Share an existing [`WorkerPool`] instead of owning one: every
    /// engine built with the same `Arc` draws from that pool's single
    /// thread budget, so N engines in one process (e.g. gp-serve's
    /// per-session engines) together never exceed the pool's budget.
    /// Takes precedence over [`EngineBuilder::parallelism`], and
    /// [`Engine::set_parallelism`] becomes a no-op on the pool.
    pub fn worker_pool(mut self, pool: Arc<WorkerPool>) -> Self {
        self.shared_pool = Some(pool);
        self
    }

    /// Compute backend for every tensor kernel the engine runs:
    /// [`Backend::Reference`] (the default) is the bit-exact ground
    /// truth, [`Backend::Fast`] the tiled/SIMD implementation that is
    /// tolerance-equal to it. Both are bit-identical across worker
    /// counts; only Reference is bit-identical across *backends* of
    /// historical runs, so CI accuracy pins stay on Reference.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Capacity of the cross-episode candidate-embedding cache
    /// (default [`DEFAULT_EMBED_CACHE_CAPACITY`]).
    pub fn embedding_cache(mut self, capacity: usize) -> Self {
        self.embed_cache = Some(capacity);
        self
    }

    /// Disable the embedding cache: every episode embeds every candidate
    /// from scratch (the pre-Engine behavior).
    pub fn no_embedding_cache(mut self) -> Self {
        self.embed_cache = None;
        self
    }

    /// Attach a persistent disk tier (L1) under `dir` to the embedding
    /// cache. Entries evicted from the in-memory LFU tier are demoted to
    /// CRC-protected GPES shards keyed by `(dataset, weight revision)`
    /// and promoted back on a later lookup — including across process
    /// restarts: a fresh engine with the same weights pointed at the same
    /// directory starts warm. Requires the in-memory cache;
    /// [`EngineBuilder::try_build`] rejects the combination with
    /// [`ConfigError::DiskTierWithoutCache`] when
    /// [`EngineBuilder::no_embedding_cache`] is also set.
    pub fn embed_store_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.embed_store_dir = Some(dir.into());
        self
    }

    /// On-disk encoding for demoted embeddings: [`Quantization::F32`]
    /// (the default) is bit-exact on roundtrip; [`Quantization::F16`] /
    /// [`Quantization::I8`] shrink shards ~2×/~4× at a bounded, tested
    /// dequantization error. No effect unless
    /// [`EngineBuilder::embed_store_dir`] is set.
    pub fn embed_quantization(mut self, q: Quantization) -> Self {
        self.embed_quantization = q;
        self
    }

    /// Validate all configs and build the engine. The worker pool itself
    /// is created lazily on the first `pretrain`/`evaluate`/`run_episode`
    /// call (a budget of 1 never spawns any thread at all).
    pub fn try_build(self) -> Result<Engine, ConfigError> {
        let model = match self.model {
            Some(model) => {
                model.config().validate()?;
                model
            }
            None => {
                self.model_cfg.validate()?;
                GraphPrompterModel::new(self.model_cfg)
            }
        };
        self.pretrain_cfg.validate()?;
        self.infer_cfg.validate()?;
        let embed_store = match (self.embed_cache, self.embed_store_dir) {
            (Some(capacity), Some(dir)) => Some(EmbeddingStore::with_disk_tier(
                capacity,
                DiskTierConfig::new(dir).quantization(self.embed_quantization),
            )),
            (Some(capacity), None) => Some(EmbeddingStore::new(capacity)),
            (None, Some(_)) => return Err(ConfigError::DiskTierWithoutCache),
            (None, None) => None,
        };
        Ok(Engine {
            model,
            pretrain_cfg: self.pretrain_cfg,
            infer_cfg: self.infer_cfg,
            parallelism: self.parallelism,
            timing_mode: self.timing_mode,
            pool: Mutex::new(None),
            shared_pool: self.shared_pool,
            embed_store,
            weights_fp: Mutex::new(None),
            backend: self.backend,
        })
    }
}

/// Owns a [`GraphPrompterModel`], its validated configs, a budgeted
/// [`WorkerPool`] and the cross-episode [`EmbeddingStore`]; the one place
/// the pretrain → evaluate lifecycle happens.
pub struct Engine {
    model: GraphPrompterModel,
    pretrain_cfg: PretrainConfig,
    infer_cfg: InferenceConfig,
    parallelism: Option<Parallelism>,
    timing_mode: bool,
    /// Lazily built, cached worker pool; rebuilt when the resolved budget
    /// changes (e.g. an inherited ambient setting moved, or
    /// [`Engine::set_parallelism`] was called).
    pool: Mutex<Option<Arc<WorkerPool>>>,
    /// Externally owned pool shared across engines
    /// ([`EngineBuilder::worker_pool`]); takes precedence over `pool`.
    shared_pool: Option<Arc<WorkerPool>>,
    embed_store: Option<EmbeddingStore>,
    /// `(revision, fingerprint)` of the last weight fingerprint computed
    /// for the disk tier — hashing every parameter is O(weights), so it
    /// is cached until the revision moves.
    weights_fp: Mutex<Option<(u64, u64)>>,
    backend: Backend,
}

impl Engine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// The engine's worker pool at the currently resolved budget
    /// (explicit [`Parallelism`] if set, else the ambient
    /// [`gp_tensor::configured_workers`]), creating or resizing it as
    /// needed. Every entry point installs this pool for the duration of
    /// the call, so all kernel and episode fan-out shares one budget.
    fn thread_pool(&self) -> Arc<WorkerPool> {
        if let Some(shared) = &self.shared_pool {
            return Arc::clone(shared);
        }
        let want = self
            .parallelism
            .map_or_else(gp_tensor::configured_workers, Parallelism::workers)
            .max(1);
        // A poisoned slot only means a panicking thread held the lock; the
        // cached pool handle inside is still valid, so recover it rather
        // than cascading the panic into every later request.
        let mut slot = self.pool.lock().unwrap_or_else(PoisonError::into_inner);
        match slot.as_ref() {
            Some(pool) if pool.budget() == want => Arc::clone(pool),
            _ => {
                // gp-lint: allow(C2) — pool construction happens once per budget change; the slot lock guards exactly this memoization and is never nested
                let pool = Arc::new(WorkerPool::with_budget(want));
                *slot = Some(Arc::clone(&pool));
                pool
            }
        }
    }

    /// Arm the embedding store's disk tier with the weight fingerprint of
    /// the current revision. Revision counters are process-local, so
    /// shards persisted by a *previous* process cannot be validated by
    /// revision alone — they carry this fingerprint (parameter bits +
    /// backend name) and are trusted only when it matches. The hash walks
    /// every parameter tensor, so it is cached until the revision moves.
    /// A no-op without a disk tier: the pure in-memory path keeps its
    /// hash-free revision check.
    fn prepare_embed_store(&self) {
        let Some(store) = &self.embed_store else {
            return;
        };
        if !store.has_disk_tier() {
            return;
        }
        let revision = self.model.store.revision();
        let mut cached = self
            .weights_fp
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let fp = match *cached {
            Some((rev, fp)) if rev == revision => fp,
            _ => {
                let mut h = DefaultHasher::new();
                self.backend.name().hash(&mut h);
                for (_, tensor) in self.model.store.iter() {
                    for &x in tensor.as_slice() {
                        x.to_bits().hash(&mut h);
                    }
                }
                let fp = h.finish();
                *cached = Some((revision, fp));
                fp
            }
        };
        store.set_weights_context(revision, fp);
    }

    /// Episode-level workers for an `episodes`-episode evaluation: 1 in
    /// timing mode, else up to the whole budget (kernel fan-out inside
    /// the episodes shares the same pool either way).
    fn episode_workers(&self, pool: &WorkerPool, episodes: usize) -> usize {
        if self.timing_mode {
            1
        } else {
            pool.budget().min(episodes.max(1))
        }
    }

    /// Pre-train on `dataset` (Alg. 1) with the engine's pretrain config;
    /// stage toggles follow the inference config's
    /// [`crate::StageConfig`]. Weight updates automatically invalidate
    /// the embedding cache (revision tracking), so a later
    /// [`Engine::evaluate`] never sees stale embeddings.
    ///
    /// # Panics
    /// Panics if the configured guard rail aborts; use
    /// [`Engine::try_pretrain`] for a recoverable error.
    pub fn pretrain(&mut self, dataset: &Dataset) -> TrainingCurve {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        pretrain(
            &mut self.model,
            dataset,
            &self.pretrain_cfg,
            self.infer_cfg.stages,
        )
    }

    /// As [`Engine::pretrain`], surfacing guard-rail aborts as a typed
    /// [`DivergenceError`].
    pub fn try_pretrain(&mut self, dataset: &Dataset) -> Result<TrainingCurve, DivergenceError> {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        try_pretrain(
            &mut self.model,
            dataset,
            &self.pretrain_cfg,
            self.infer_cfg.stages,
        )
    }

    /// Evaluate `episodes` independent `ways`-way episodes and return
    /// per-episode accuracies in %. Candidate embeddings are memoized in
    /// the engine's [`EmbeddingStore`] and shared across episodes (and
    /// across repeated `evaluate` calls) — results are bit-identical to a
    /// cache-less run.
    pub fn evaluate(
        &self,
        dataset: &Dataset,
        ways: usize,
        queries_per_episode: usize,
        episodes: usize,
    ) -> Vec<f32> {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        self.prepare_embed_store();
        let episode_workers = self.episode_workers(&pool, episodes);
        evaluate_episodes_impl(
            &self.model,
            dataset,
            ways,
            queries_per_episode,
            episodes,
            &self.infer_cfg,
            self.embed_store.as_ref(),
            Some(&pool),
            episode_workers,
        )
    }

    /// As [`Engine::evaluate`], but under an explicit inference config
    /// instead of the engine's own — for sweeps that vary the protocol
    /// per call (the experiment harness, the baselines). The embedding
    /// cache is still shared: its keys carry the dataset fingerprint,
    /// sampler geometry, seed and stage flags, so entries from different
    /// configs — or from different datasets evaluated on one engine —
    /// never collide.
    pub fn evaluate_with(
        &self,
        dataset: &Dataset,
        ways: usize,
        queries_per_episode: usize,
        episodes: usize,
        cfg: &InferenceConfig,
    ) -> Vec<f32> {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        self.prepare_embed_store();
        let episode_workers = self.episode_workers(&pool, episodes);
        evaluate_episodes_impl(
            &self.model,
            dataset,
            ways,
            queries_per_episode,
            episodes,
            cfg,
            self.embed_store.as_ref(),
            Some(&pool),
            episode_workers,
        )
    }

    /// Run Alg. 2 over one explicit episode.
    pub fn run_episode(&self, dataset: &Dataset, task: &FewShotTask) -> EpisodeResult {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        self.prepare_embed_store();
        run_episode_impl(
            &self.model,
            dataset,
            task,
            &self.infer_cfg,
            self.embed_store.as_ref(),
        )
    }

    /// As [`Engine::run_episode`], enforcing `deadline` at the stage
    /// boundaries of the pipeline. `Err(EngineError::DeadlineExceeded)`
    /// reports the expiring stage, the queries completed, and the partial
    /// per-stage wall-clock — gp-serve maps it to HTTP 504. An expired
    /// deadline never corrupts engine state: the episode aborts between
    /// stages, the shared embedding cache keeps whatever was memoized,
    /// and the worker pool releases every thread it borrowed.
    pub fn run_episode_deadline(
        &self,
        dataset: &Dataset,
        task: &FewShotTask,
        deadline: Deadline,
    ) -> Result<EpisodeResult, EngineError> {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        self.prepare_embed_store();
        run_episode_deadline_impl(
            &self.model,
            dataset,
            task,
            &self.infer_cfg,
            self.embed_store.as_ref(),
            Some(deadline),
        )
        .map_err(EngineError::from)
    }

    /// Run several episodes as one fused cross-request batch (the
    /// [`crate::BatchPlanner`] layer). Candidate embedding runs once over
    /// the deduplicated union of every member's candidates, and all live
    /// members' queries go through a single stacked
    /// [`crate::SubgraphBatch`] pass — amortizing the per-request embed
    /// cost without changing any member's result: on
    /// [`Backend::Reference`] every member is **bit-identical** to a solo
    /// [`Engine::run_episode_deadline`] call (per-datapoint RNG streams +
    /// row-local embedding; asserted by proptest in
    /// `crates/core/tests/batching.rs`).
    ///
    /// Deadlines stay per member: an expired member gets its own
    /// `Err(EngineError::DeadlineExceeded)` slot while the rest of the
    /// batch completes.
    pub fn run_episodes_batched(
        &self,
        dataset: &Dataset,
        requests: &[EpisodeRequest<'_>],
    ) -> Vec<Result<EpisodeResult, EngineError>> {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        self.prepare_embed_store();
        run_episodes_batched_impl(
            &self.model,
            dataset,
            requests,
            &self.infer_cfg,
            self.embed_store.as_ref(),
        )
        .into_iter()
        .map(|r| r.map_err(EngineError::from))
        .collect()
    }

    /// As [`Engine::run_episode`], under an explicit inference config.
    pub fn run_episode_with(
        &self,
        dataset: &Dataset,
        task: &FewShotTask,
        cfg: &InferenceConfig,
    ) -> EpisodeResult {
        let pool = self.thread_pool();
        let _ctx = pool.install();
        let _be = self.backend.install();
        self.prepare_embed_store();
        run_episode_impl(&self.model, dataset, task, cfg, self.embed_store.as_ref())
    }

    /// The owned model (read-only).
    pub fn model(&self) -> &GraphPrompterModel {
        &self.model
    }

    /// The model's weight revision: bumped on every parameter mutation
    /// (pretraining steps, checkpoint loads). gp-serve reports it from
    /// `/v1/health` so a client can detect an engine swap mid-session.
    pub fn revision(&self) -> u64 {
        self.model.store.revision()
    }

    /// Mutable model access (checkpoint loading, manual surgery). Any
    /// weight mutation bumps the [`gp_nn::ParamStore::revision`], which
    /// invalidates the embedding cache on its next use.
    pub fn model_mut(&mut self) -> &mut GraphPrompterModel {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> GraphPrompterModel {
        self.model
    }

    /// The active inference config.
    pub fn inference_config(&self) -> &InferenceConfig {
        &self.infer_cfg
    }

    /// Replace the inference config (validated). Experiment sweeps use
    /// this to vary cache size, metric, stages, … on one engine.
    pub fn set_inference_config(&mut self, cfg: InferenceConfig) -> Result<(), ConfigError> {
        cfg.validate()?;
        self.infer_cfg = cfg;
        Ok(())
    }

    /// The active pretrain config.
    pub fn pretrain_config(&self) -> &PretrainConfig {
        &self.pretrain_cfg
    }

    /// The thread budget this engine was built with, or `None` when it
    /// inherits the ambient [`gp_tensor::configured_workers`] at each
    /// call. The budget is per-engine: it sizes this engine's own
    /// [`WorkerPool`] and never touches process-wide state.
    pub fn parallelism(&self) -> Option<Parallelism> {
        self.parallelism
    }

    /// Change the thread budget. The cached worker pool is dropped (its
    /// threads join) and a pool at the new budget is built lazily on the
    /// next `pretrain`/`evaluate`/`run_episode` call. Results are
    /// bit-identical across budgets — this only changes throughput.
    pub fn set_parallelism(&mut self, p: Option<Parallelism>) {
        self.parallelism = p;
        *self.pool.lock().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Whether episode-level fan-out is pinned to 1
    /// ([`EngineBuilder::timing_mode`]).
    pub fn timing_mode(&self) -> bool {
        self.timing_mode
    }

    /// The compute backend this engine installs around every call
    /// ([`EngineBuilder::backend`]).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Switch the compute backend. Takes effect on the next
    /// `pretrain`/`evaluate`/`run_episode` call; no cached state depends
    /// on the backend (the embedding cache is keyed by protocol + weights
    /// and Fast is only tolerance-equal to Reference, so benchmarks that
    /// flip backends on one engine should clear it between rows).
    pub fn set_backend(&mut self, backend: Backend) {
        self.backend = backend;
    }

    /// Counters of the engine's worker pool (budget, spawned workers,
    /// peak concurrently active tasks, executed/stolen task counts), or
    /// `None` before the first `pretrain`/`evaluate`/`run_episode` call
    /// builds the pool. The regression tests use `peak_active ≤ budget`
    /// to pin down that nested fan-out cannot oversubscribe.
    pub fn pool_stats(&self) -> Option<PoolStats> {
        if let Some(shared) = &self.shared_pool {
            return Some(shared.stats());
        }
        self.pool
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
            .map(|p| p.stats())
    }

    /// Usage counters of the embedding cache, or `None` when disabled.
    pub fn embed_cache_stats(&self) -> Option<EmbedCacheStats> {
        self.embed_store.as_ref().map(EmbeddingStore::stats)
    }

    /// Drop every memoized embedding (counters survive). Weight changes
    /// do this automatically; an explicit clear is only useful for
    /// benchmarking cold-cache behavior. With a disk tier attached this
    /// is a *full* cold start: the on-disk shards are deleted too.
    pub fn clear_embed_cache(&self) {
        if let Some(store) = &self.embed_store {
            store.clear();
        }
    }

    /// Whether the embedding cache has a persistent disk tier attached
    /// ([`EngineBuilder::embed_store_dir`]).
    pub fn has_embed_disk_tier(&self) -> bool {
        self.embed_store
            .as_ref()
            .is_some_and(EmbeddingStore::has_disk_tier)
    }

    /// Write every in-memory embedding back to the disk tier and fsync
    /// the shards, returning the number of entries persisted (0 without a
    /// disk tier, or before the first inference call arms it). Dropping
    /// the engine flushes too; the explicit call is a durability barrier
    /// — e.g. before handing the shard directory to another process.
    pub fn flush_embed_store(&self) -> usize {
        self.embed_store.as_ref().map_or(0, EmbeddingStore::flush)
    }

    /// Snapshot of the process-wide metrics registry (counters, gauges,
    /// per-stage latency histograms). Metrics collection is off by default
    /// — enable it with [`gp_obs::set_enabled`] before the calls you want
    /// observed, or the snapshot will be empty. Instruments are process-
    /// global, so two engines in one process share one registry.
    pub fn metrics_snapshot(&self) -> gp_obs::MetricsSnapshot {
        gp_obs::snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PseudoLabelPolicy, StageConfig};
    use gp_datasets::CitationConfig;
    use gp_graph::SamplerConfig;

    fn tiny_infer() -> InferenceConfig {
        InferenceConfig::builder()
            .shots(2)
            .candidates_per_class(4)
            .cache_size(2)
            .query_batch(5)
            .sampler(SamplerConfig {
                hops: 1,
                max_nodes: 10,
                neighbors_per_node: 5,
            })
            .try_build()
            .expect("valid tiny inference config")
    }

    fn tiny_model() -> ModelConfig {
        ModelConfig::builder()
            .embed_dim(16)
            .hidden_dim(24)
            .try_build()
            .expect("valid tiny model config")
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let err = Engine::builder()
            .model_config(ModelConfig {
                embed_dim: 0,
                ..ModelConfig::default()
            })
            .try_build()
            .err()
            .expect("zero embed_dim must fail");
        assert_eq!(err, ConfigError::ZeroField { field: "embed_dim" });

        assert!(Engine::builder()
            .inference_config(InferenceConfig {
                shots: 9,
                candidates_per_class: 3,
                ..InferenceConfig::default()
            })
            .try_build()
            .is_err());

        assert!(Engine::builder()
            .pretrain_config(PretrainConfig {
                steps: 0,
                ..PretrainConfig::default()
            })
            .try_build()
            .is_err());
    }

    #[test]
    fn engine_lifecycle_pretrain_then_evaluate() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let pre = PretrainConfig::builder()
            .steps(30)
            .ways(4)
            .shots(2)
            .queries(4)
            .nm_ways(3)
            .nm_shots(2)
            .nm_queries(3)
            .log_every(15)
            .sampler(SamplerConfig {
                hops: 1,
                max_nodes: 10,
                neighbors_per_node: 5,
            })
            .try_build()
            .expect("valid pretrain config");
        let mut engine = Engine::builder()
            .model_config(tiny_model())
            .pretrain_config(pre)
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let curve = engine.pretrain(&ds);
        assert!(!curve.loss.is_empty());
        let accs = engine.evaluate(&ds, 3, 8, 2);
        assert_eq!(accs.len(), 2);
        let stats = engine.embed_cache_stats().expect("cache on by default");
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn engine_cache_matches_cacheless_engine_bitwise() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let cached = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let plain = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .no_embedding_cache()
            .try_build()
            .expect("valid engine");
        let a = cached.evaluate(&ds, 3, 10, 3);
        let b = plain.evaluate(&ds, 3, 10, 3);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        assert!(cached.embed_cache_stats().expect("cache on").misses > 0);
        assert_eq!(plain.embed_cache_stats(), None);
    }

    /// Enabling metrics must observe the pipeline, never perturb it:
    /// per-episode accuracies are bit-identical with collection on and
    /// off, and the per-stage inference histograms actually fill.
    #[test]
    fn metrics_collection_never_changes_predictions() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let engine = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .no_embedding_cache()
            .try_build()
            .expect("valid engine");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        let off = engine.evaluate(&ds, 3, 8, 2);
        let selection_before = engine
            .metrics_snapshot()
            .histogram("infer.selection_micros")
            .map_or(0, |h| h.count);
        gp_obs::set_enabled(true);
        let on = engine.evaluate(&ds, 3, 8, 2);
        gp_obs::set_enabled(false);
        assert_eq!(bits(&off), bits(&on), "metrics must be read-only");

        // Delta assertions only: the registry is process-global and other
        // tests in this binary run concurrently.
        let snap = engine.metrics_snapshot();
        let selection_after = snap
            .histogram("infer.selection_micros")
            .map_or(0, |h| h.count);
        assert!(
            selection_after > selection_before,
            "selection span did not record ({selection_before} -> {selection_after})"
        );
        let again = engine.evaluate(&ds, 3, 8, 2);
        assert_eq!(bits(&off), bits(&again), "disabling must also be clean");
    }

    #[test]
    fn engine_adopts_existing_model() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let model = GraphPrompterModel::new(tiny_model());
        let engine = Engine::builder()
            .model(model)
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let accs = engine.evaluate(&ds, 3, 6, 1);
        assert_eq!(accs.len(), 1);
        assert_eq!(engine.model().config().embed_dim, 16);
    }

    /// The tentpole invariant, engine-level: one budget bounds *total*
    /// thread use across episode fan-out and kernel fan-out, a Serial
    /// engine never spawns a worker, and every budget is bit-identical.
    #[test]
    fn thread_budget_bounds_total_threads_and_preserves_bits() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let build = |p: Parallelism| {
            Engine::builder()
                .model_config(tiny_model())
                .inference_config(tiny_infer())
                .parallelism(p)
                .try_build()
                .expect("valid engine")
        };

        let serial = build(Parallelism::Serial);
        let base = serial.evaluate(&ds, 3, 8, 4);
        let stats = serial.pool_stats().expect("pool built by evaluate");
        assert_eq!(stats.budget, 1);
        assert_eq!(stats.spawned_workers, 0, "budget 1 must not spawn");
        assert_eq!(stats.peak_active, 0, "budget 1 must run inline");

        let budgeted = build(Parallelism::Threads(3));
        let accs = budgeted.evaluate(&ds, 3, 8, 4);
        let stats = budgeted.pool_stats().expect("pool built by evaluate");
        assert_eq!(stats.budget, 3);
        assert_eq!(stats.spawned_workers, 2, "budget B spawns B-1 workers");
        assert!(
            stats.peak_active <= 3,
            "peak active tasks {} exceeded budget 3",
            stats.peak_active
        );
        assert!(stats.tasks_executed >= 4, "episodes should ride the pool");

        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&base), bits(&accs), "budget must not change results");
    }

    /// Timing mode pins episode fan-out to 1 while keeping the budget for
    /// kernels — and `set_parallelism` rebuilds the pool at the new size.
    #[test]
    fn timing_mode_and_set_parallelism_resize_pool() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let mut engine = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .parallelism(Parallelism::Threads(2))
            .timing_mode(true)
            .try_build()
            .expect("valid engine");
        assert!(engine.timing_mode());
        let base = engine.evaluate(&ds, 3, 8, 2);
        assert_eq!(engine.pool_stats().expect("pool").budget, 2);

        engine.set_parallelism(Some(Parallelism::Serial));
        assert_eq!(engine.pool_stats(), None, "set_parallelism drops pool");
        let again = engine.evaluate(&ds, 3, 8, 2);
        assert_eq!(engine.pool_stats().expect("pool").budget, 1);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&base), bits(&again));
    }

    /// A generous deadline is invisible (bit-identical results, populated
    /// confidences); an already-expired one aborts at the first stage
    /// boundary with a typed diagnosis, and the engine stays fully
    /// usable afterwards — no poisoned lock, no leaked pool thread.
    #[test]
    fn deadline_episode_matches_undeadlined_and_expires_cleanly() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;

        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let engine = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .parallelism(Parallelism::Threads(2))
            .try_build()
            .expect("valid engine");
        let mut rng = StdRng::seed_from_u64(9);
        let task = gp_datasets::sample_few_shot_task(&ds, 3, 4, 8, &mut rng);

        let plain = engine.run_episode(&ds, &task);
        let timed = engine
            .run_episode_deadline(&ds, &task, Deadline::after_millis(120_000))
            .expect("a two-minute deadline cannot expire here");
        assert_eq!(plain.predictions, timed.predictions);
        assert_eq!(timed.confidences.len(), timed.total);
        assert!(timed.confidences.iter().all(|c| (0.0..=1.0).contains(c)));
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&plain.confidences), bits(&timed.confidences));

        let err = engine
            .run_episode_deadline(&ds, &task, Deadline::after_millis(0))
            .err()
            .expect("an expired deadline must abort");
        match err {
            EngineError::DeadlineExceeded(d) => {
                assert_eq!(d.stage, "candidate_embed");
                assert_eq!(d.completed_queries, 0);
                assert_eq!(d.total_queries, 8);
                assert!(
                    d.stage_micros.iter().any(|(s, _)| *s == "candidate_embed"),
                    "partial timing must cover the aborting stage: {:?}",
                    d.stage_micros
                );
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }

        let again = engine.run_episode(&ds, &task);
        assert_eq!(bits(&[again.accuracy()]), bits(&[plain.accuracy()]));
        let stats = engine.pool_stats().expect("pool built");
        assert!(
            stats.peak_active <= stats.budget,
            "aborted episodes must release their pool slots"
        );
    }

    /// Engines sharing one pool ([`EngineBuilder::worker_pool`]) draw
    /// from a single thread budget — the gp-serve sessions model.
    #[test]
    fn shared_worker_pool_bounds_engines_jointly() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let pool = Arc::new(WorkerPool::with_budget(2));
        let build = || {
            Engine::builder()
                .model_config(tiny_model())
                .inference_config(tiny_infer())
                .worker_pool(Arc::clone(&pool))
                .try_build()
                .expect("valid engine")
        };
        let a = build();
        let b = build();
        let ra = a.evaluate(&ds, 3, 6, 2);
        let rb = b.evaluate(&ds, 3, 6, 2);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&ra), bits(&rb), "same pool, same weights, same task");
        let stats = pool.stats();
        assert_eq!(stats.budget, 2);
        assert!(
            stats.peak_active <= 2,
            "shared budget must bound both engines"
        );
        assert_eq!(a.pool_stats().expect("shared").budget, 2);
        assert_eq!(a.revision(), b.revision());
    }

    #[test]
    fn set_inference_config_validates() {
        let mut engine = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let mut bad = tiny_infer();
        bad.cache_size = 0;
        assert!(engine.set_inference_config(bad).is_err());
        let mut good = tiny_infer();
        good.pseudo_labels = PseudoLabelPolicy::UniformRandom;
        good.stages = StageConfig::without_knn();
        assert!(engine.set_inference_config(good).is_ok());
        assert_eq!(
            engine.inference_config().pseudo_labels,
            PseudoLabelPolicy::UniformRandom
        );
    }
}
