//! The single public entry point for the GraphPrompter pipeline.
//!
//! [`EngineBuilder`] validates every config up front ([`ConfigError`]),
//! resolves the tensor-kernel [`Parallelism`], and decides whether the
//! cross-episode [`EmbeddingStore`] is wired in. The built [`Engine`]
//! then owns the model and exposes the whole lifecycle:
//!
//! ```
//! use gp_core::{Engine, InferenceConfig, PretrainConfig};
//!
//! let source = gp_datasets::CitationConfig::new("pretrain", 300, 6, 1).generate();
//! let target = gp_datasets::CitationConfig::new("downstream", 200, 5, 2).generate();
//!
//! let mut engine = Engine::builder()
//!     .pretrain_config(PretrainConfig::builder().steps(30).try_build().unwrap())
//!     .inference_config(InferenceConfig::default())
//!     .try_build()
//!     .unwrap();
//! engine.pretrain(&source);
//!
//! // In-context adaptation: no gradient updates on the target graph.
//! let accs = engine.evaluate(&target, 3, 10, 2);
//! assert_eq!(accs.len(), 2);
//! ```
//!
//! The free functions (`evaluate_episodes`, `run_episode`, …) remain as
//! deprecated shims; they run the same pipeline without the embedding
//! cache.

use gp_datasets::{Dataset, FewShotTask};
use gp_tensor::Parallelism;

use crate::config::{ConfigError, InferenceConfig, ModelConfig, PretrainConfig};
use crate::embed_store::{EmbedCacheStats, EmbeddingStore};
use crate::guard::DivergenceError;
use crate::infer::{evaluate_episodes_impl, run_episode_impl, EpisodeResult};
use crate::model::GraphPrompterModel;
use crate::pretrain::{pretrain, try_pretrain, TrainingCurve};

/// Default capacity of the cross-episode embedding cache.
pub const DEFAULT_EMBED_CACHE_CAPACITY: usize = 4096;

/// Fallible builder for [`Engine`]; start from [`Engine::builder`].
pub struct EngineBuilder {
    model_cfg: ModelConfig,
    model: Option<GraphPrompterModel>,
    pretrain_cfg: PretrainConfig,
    infer_cfg: InferenceConfig,
    parallelism: Option<Parallelism>,
    embed_cache: Option<usize>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self {
            model_cfg: ModelConfig::default(),
            model: None,
            pretrain_cfg: PretrainConfig::default(),
            infer_cfg: InferenceConfig::default(),
            parallelism: None,
            embed_cache: Some(DEFAULT_EMBED_CACHE_CAPACITY),
        }
    }
}

impl EngineBuilder {
    /// A builder with the paper's default protocol everywhere.
    pub fn new() -> Self {
        Self::default()
    }

    /// Architecture config for the model the engine will create. Ignored
    /// when [`EngineBuilder::model`] supplies a pre-built model.
    pub fn model_config(mut self, cfg: ModelConfig) -> Self {
        self.model_cfg = cfg;
        self
    }

    /// Adopt an existing (e.g. already pre-trained or checkpoint-loaded)
    /// model instead of creating a fresh one.
    pub fn model(mut self, model: GraphPrompterModel) -> Self {
        self.model = Some(model);
        self
    }

    /// Pre-training protocol for [`Engine::pretrain`].
    pub fn pretrain_config(mut self, cfg: PretrainConfig) -> Self {
        self.pretrain_cfg = cfg;
        self
    }

    /// Inference protocol for [`Engine::evaluate`] / [`Engine::run_episode`].
    pub fn inference_config(mut self, cfg: InferenceConfig) -> Self {
        self.infer_cfg = cfg;
        self
    }

    /// Tensor-kernel worker pool (process-wide; see
    /// [`gp_tensor::parallel`]). Every setting produces bit-identical
    /// results — this is purely a throughput knob. When not set, the
    /// builder leaves the process-wide setting untouched (so transient
    /// engines, e.g. inside baselines, inherit the caller's choice).
    ///
    /// Because the underlying setting is process-wide, an engine with an
    /// explicit parallelism re-applies it at the start of every
    /// `pretrain`/`evaluate`/`run_episode` call, so two engines built with
    /// different settings each run under their own (results are identical
    /// either way; only throughput differs).
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = Some(p);
        self
    }

    /// Capacity of the cross-episode candidate-embedding cache
    /// (default [`DEFAULT_EMBED_CACHE_CAPACITY`]).
    pub fn embedding_cache(mut self, capacity: usize) -> Self {
        self.embed_cache = Some(capacity);
        self
    }

    /// Disable the embedding cache: every episode embeds every candidate
    /// from scratch (the pre-Engine behavior).
    pub fn no_embedding_cache(mut self) -> Self {
        self.embed_cache = None;
        self
    }

    /// Validate all configs and build the engine. When a parallelism was
    /// chosen, the process-wide tensor setting is updated on success.
    pub fn try_build(self) -> Result<Engine, ConfigError> {
        let model = match self.model {
            Some(model) => {
                model.config().validate()?;
                model
            }
            None => {
                self.model_cfg.validate()?;
                GraphPrompterModel::new(self.model_cfg)
            }
        };
        self.pretrain_cfg.validate()?;
        self.infer_cfg.validate()?;
        if let Some(p) = self.parallelism {
            gp_tensor::set_parallelism(p);
        }
        Ok(Engine {
            model,
            pretrain_cfg: self.pretrain_cfg,
            infer_cfg: self.infer_cfg,
            parallelism: self.parallelism,
            embed_store: self.embed_cache.map(EmbeddingStore::new),
        })
    }
}

/// Owns a [`GraphPrompterModel`], its validated configs, the tensor
/// parallelism setting and the cross-episode [`EmbeddingStore`]; the one
/// place the pretrain → evaluate lifecycle happens.
pub struct Engine {
    model: GraphPrompterModel,
    pretrain_cfg: PretrainConfig,
    infer_cfg: InferenceConfig,
    parallelism: Option<Parallelism>,
    embed_store: Option<EmbeddingStore>,
}

impl Engine {
    /// Start building an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Re-assert this engine's tensor parallelism. The setting is
    /// process-wide, so another engine (or a direct
    /// [`gp_tensor::set_parallelism`] call) may have changed it since this
    /// engine was built; every entry point below re-applies it first.
    /// Purely a throughput knob — results are bit-identical regardless.
    fn apply_parallelism(&self) {
        if let Some(p) = self.parallelism {
            gp_tensor::set_parallelism(p);
        }
    }

    /// Pre-train on `dataset` (Alg. 1) with the engine's pretrain config;
    /// stage toggles follow the inference config's
    /// [`crate::StageConfig`]. Weight updates automatically invalidate
    /// the embedding cache (revision tracking), so a later
    /// [`Engine::evaluate`] never sees stale embeddings.
    ///
    /// # Panics
    /// Panics if the configured guard rail aborts; use
    /// [`Engine::try_pretrain`] for a recoverable error.
    pub fn pretrain(&mut self, dataset: &Dataset) -> TrainingCurve {
        self.apply_parallelism();
        pretrain(
            &mut self.model,
            dataset,
            &self.pretrain_cfg,
            self.infer_cfg.stages,
        )
    }

    /// As [`Engine::pretrain`], surfacing guard-rail aborts as a typed
    /// [`DivergenceError`].
    pub fn try_pretrain(&mut self, dataset: &Dataset) -> Result<TrainingCurve, DivergenceError> {
        self.apply_parallelism();
        try_pretrain(
            &mut self.model,
            dataset,
            &self.pretrain_cfg,
            self.infer_cfg.stages,
        )
    }

    /// Evaluate `episodes` independent `ways`-way episodes and return
    /// per-episode accuracies in %. Candidate embeddings are memoized in
    /// the engine's [`EmbeddingStore`] and shared across episodes (and
    /// across repeated `evaluate` calls) — results are bit-identical to a
    /// cache-less run.
    pub fn evaluate(
        &self,
        dataset: &Dataset,
        ways: usize,
        queries_per_episode: usize,
        episodes: usize,
    ) -> Vec<f32> {
        self.apply_parallelism();
        evaluate_episodes_impl(
            &self.model,
            dataset,
            ways,
            queries_per_episode,
            episodes,
            &self.infer_cfg,
            self.embed_store.as_ref(),
        )
    }

    /// As [`Engine::evaluate`], but under an explicit inference config
    /// instead of the engine's own — for sweeps that vary the protocol
    /// per call (the experiment harness, the baselines). The embedding
    /// cache is still shared: its keys carry the dataset fingerprint,
    /// sampler geometry, seed and stage flags, so entries from different
    /// configs — or from different datasets evaluated on one engine —
    /// never collide.
    pub fn evaluate_with(
        &self,
        dataset: &Dataset,
        ways: usize,
        queries_per_episode: usize,
        episodes: usize,
        cfg: &InferenceConfig,
    ) -> Vec<f32> {
        self.apply_parallelism();
        evaluate_episodes_impl(
            &self.model,
            dataset,
            ways,
            queries_per_episode,
            episodes,
            cfg,
            self.embed_store.as_ref(),
        )
    }

    /// Run Alg. 2 over one explicit episode.
    pub fn run_episode(&self, dataset: &Dataset, task: &FewShotTask) -> EpisodeResult {
        self.apply_parallelism();
        run_episode_impl(
            &self.model,
            dataset,
            task,
            &self.infer_cfg,
            self.embed_store.as_ref(),
        )
    }

    /// As [`Engine::run_episode`], under an explicit inference config.
    pub fn run_episode_with(
        &self,
        dataset: &Dataset,
        task: &FewShotTask,
        cfg: &InferenceConfig,
    ) -> EpisodeResult {
        self.apply_parallelism();
        run_episode_impl(&self.model, dataset, task, cfg, self.embed_store.as_ref())
    }

    /// The owned model (read-only).
    pub fn model(&self) -> &GraphPrompterModel {
        &self.model
    }

    /// Mutable model access (checkpoint loading, manual surgery). Any
    /// weight mutation bumps the [`gp_nn::ParamStore::revision`], which
    /// invalidates the embedding cache on its next use.
    pub fn model_mut(&mut self) -> &mut GraphPrompterModel {
        &mut self.model
    }

    /// Consume the engine, returning the model.
    pub fn into_model(self) -> GraphPrompterModel {
        self.model
    }

    /// The active inference config.
    pub fn inference_config(&self) -> &InferenceConfig {
        &self.infer_cfg
    }

    /// Replace the inference config (validated). Experiment sweeps use
    /// this to vary cache size, metric, stages, … on one engine.
    pub fn set_inference_config(&mut self, cfg: InferenceConfig) -> Result<(), ConfigError> {
        cfg.validate()?;
        self.infer_cfg = cfg;
        Ok(())
    }

    /// The active pretrain config.
    pub fn pretrain_config(&self) -> &PretrainConfig {
        &self.pretrain_cfg
    }

    /// The tensor parallelism this engine was built with, or `None` when
    /// the builder inherited the process-wide setting. The underlying
    /// knob is process-wide, so another engine may change it between this
    /// engine's calls — a `Some` setting is re-applied at the start of
    /// every `pretrain`/`evaluate`/`run_episode` call, which is the only
    /// window where it matters.
    pub fn parallelism(&self) -> Option<Parallelism> {
        self.parallelism
    }

    /// Usage counters of the embedding cache, or `None` when disabled.
    pub fn embed_cache_stats(&self) -> Option<EmbedCacheStats> {
        self.embed_store.as_ref().map(EmbeddingStore::stats)
    }

    /// Drop every memoized embedding (counters survive). Weight changes
    /// do this automatically; an explicit clear is only useful for
    /// benchmarking cold-cache behavior.
    pub fn clear_embed_cache(&self) {
        if let Some(store) = &self.embed_store {
            store.clear();
        }
    }

    /// Snapshot of the process-wide metrics registry (counters, gauges,
    /// per-stage latency histograms). Metrics collection is off by default
    /// — enable it with [`gp_obs::set_enabled`] before the calls you want
    /// observed, or the snapshot will be empty. Instruments are process-
    /// global, so two engines in one process share one registry.
    pub fn metrics_snapshot(&self) -> gp_obs::MetricsSnapshot {
        gp_obs::snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PseudoLabelPolicy, StageConfig};
    use gp_datasets::CitationConfig;
    use gp_graph::SamplerConfig;

    fn tiny_infer() -> InferenceConfig {
        InferenceConfig::builder()
            .shots(2)
            .candidates_per_class(4)
            .cache_size(2)
            .query_batch(5)
            .sampler(SamplerConfig {
                hops: 1,
                max_nodes: 10,
                neighbors_per_node: 5,
            })
            .try_build()
            .expect("valid tiny inference config")
    }

    fn tiny_model() -> ModelConfig {
        ModelConfig::builder()
            .embed_dim(16)
            .hidden_dim(24)
            .try_build()
            .expect("valid tiny model config")
    }

    #[test]
    fn builder_rejects_invalid_configs() {
        let err = Engine::builder()
            .model_config(ModelConfig {
                embed_dim: 0,
                ..ModelConfig::default()
            })
            .try_build()
            .err()
            .expect("zero embed_dim must fail");
        assert_eq!(err, ConfigError::ZeroField { field: "embed_dim" });

        assert!(Engine::builder()
            .inference_config(InferenceConfig {
                shots: 9,
                candidates_per_class: 3,
                ..InferenceConfig::default()
            })
            .try_build()
            .is_err());

        assert!(Engine::builder()
            .pretrain_config(PretrainConfig {
                steps: 0,
                ..PretrainConfig::default()
            })
            .try_build()
            .is_err());
    }

    #[test]
    fn engine_lifecycle_pretrain_then_evaluate() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let pre = PretrainConfig::builder()
            .steps(30)
            .ways(4)
            .shots(2)
            .queries(4)
            .nm_ways(3)
            .nm_shots(2)
            .nm_queries(3)
            .log_every(15)
            .sampler(SamplerConfig {
                hops: 1,
                max_nodes: 10,
                neighbors_per_node: 5,
            })
            .try_build()
            .expect("valid pretrain config");
        let mut engine = Engine::builder()
            .model_config(tiny_model())
            .pretrain_config(pre)
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let curve = engine.pretrain(&ds);
        assert!(!curve.loss.is_empty());
        let accs = engine.evaluate(&ds, 3, 8, 2);
        assert_eq!(accs.len(), 2);
        let stats = engine.embed_cache_stats().expect("cache on by default");
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn engine_cache_matches_cacheless_engine_bitwise() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let cached = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let plain = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .no_embedding_cache()
            .try_build()
            .expect("valid engine");
        let a = cached.evaluate(&ds, 3, 10, 3);
        let b = plain.evaluate(&ds, 3, 10, 3);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
        assert!(cached.embed_cache_stats().expect("cache on").misses > 0);
        assert_eq!(plain.embed_cache_stats(), None);
    }

    /// Enabling metrics must observe the pipeline, never perturb it:
    /// per-episode accuracies are bit-identical with collection on and
    /// off, and the per-stage inference histograms actually fill.
    #[test]
    fn metrics_collection_never_changes_predictions() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let engine = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .no_embedding_cache()
            .try_build()
            .expect("valid engine");
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();

        let off = engine.evaluate(&ds, 3, 8, 2);
        let selection_before = engine
            .metrics_snapshot()
            .histogram("infer.selection_micros")
            .map_or(0, |h| h.count);
        gp_obs::set_enabled(true);
        let on = engine.evaluate(&ds, 3, 8, 2);
        gp_obs::set_enabled(false);
        assert_eq!(bits(&off), bits(&on), "metrics must be read-only");

        // Delta assertions only: the registry is process-global and other
        // tests in this binary run concurrently.
        let snap = engine.metrics_snapshot();
        let selection_after = snap
            .histogram("infer.selection_micros")
            .map_or(0, |h| h.count);
        assert!(
            selection_after > selection_before,
            "selection span did not record ({selection_before} -> {selection_after})"
        );
        let again = engine.evaluate(&ds, 3, 8, 2);
        assert_eq!(bits(&off), bits(&again), "disabling must also be clean");
    }

    #[test]
    fn engine_adopts_existing_model() {
        let ds = CitationConfig::new("t", 300, 5, 31).generate();
        let model = GraphPrompterModel::new(tiny_model());
        let engine = Engine::builder()
            .model(model)
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let accs = engine.evaluate(&ds, 3, 6, 1);
        assert_eq!(accs.len(), 1);
        assert_eq!(engine.model().config().embed_dim, 16);
    }

    #[test]
    fn set_inference_config_validates() {
        let mut engine = Engine::builder()
            .model_config(tiny_model())
            .inference_config(tiny_infer())
            .try_build()
            .expect("valid engine");
        let mut bad = tiny_infer();
        bad.cache_size = 0;
        assert!(engine.set_inference_config(bad).is_err());
        let mut good = tiny_infer();
        good.pseudo_labels = PseudoLabelPolicy::UniformRandom;
        good.stages = StageConfig::without_knn();
        assert!(engine.set_inference_config(good).is_ok());
        assert_eq!(
            engine.inference_config().pseudo_labels,
            PseudoLabelPolicy::UniformRandom
        );
    }
}
